//! # LLAMA — Low-power Lattice of Actuated Metasurface Antennas
//!
//! A full-system Rust reproduction of *"Pushing the Physical Limits of IoT
//! Devices with Programmable Metasurfaces"* (NSDI 2021): a programmable
//! 2.4 GHz polarization-rotating metasurface, the microwave physics it is
//! built on, the propagation environment around it, the control plane
//! that tunes it in real time, and the IoT endpoints it serves — all as
//! deterministic, testable simulation substrates.
//!
//! This crate is a facade: it re-exports the workspace crates so that a
//! downstream user can depend on `llama` alone.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`rfmath`] | `llama-rfmath` | Complex math, Jones calculus, units, stats |
//! | [`microwave`] | `llama-microwave` | S-parameters, transmission lines, substrates, varactors |
//! | [`metasurface`] | `llama-metasurface` | The LLAMA surface: designs, bias→rotation, response |
//! | [`propagation`] | `llama-propagation` | Antennas, links, multipath environments, capacity |
//! | [`control`] | `llama-control` | PSU, Algorithm 1 sweeps, synchronization, estimation |
//! | [`devices`] | `llama-devices` | USRP / Wi-Fi / BLE endpoints, turntable, human target |
//! | [`core`] | `llama-core` | End-to-end scenarios, system loop, sensing, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use llama::core::scenario::Scenario;
//! use llama::core::system::LlamaSystem;
//!
//! // The paper's through-surface setup: orthogonal (mismatched) antennas
//! // 36 cm apart with the metasurface in between.
//! let scenario = Scenario::transmissive_default()
//!     .with_distance_cm(36.0)
//!     .with_seed(7);
//! let mut system = LlamaSystem::new(scenario);
//!
//! let baseline = system.baseline_power_dbm();
//! let outcome = system.optimize();
//! assert!(outcome.best_power_dbm.0 > baseline.0, "surface should help");
//! ```

pub use control;
pub use devices;
pub use llama_core as core;
pub use metasurface;
pub use microwave;
pub use propagation;
pub use rfmath;
