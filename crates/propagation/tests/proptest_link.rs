//! The arena-rebind contract: a [`PreparedLink`] driven through any
//! sequence of in-place rebinds — cheap moves (rotation, transmit
//! power), genuine moves (endpoint separation), and environment swaps
//! (new scatter seed) — must be *bitwise* indistinguishable from a
//! fresh [`PreparedLink::new`] of the final link. The mobility engine
//! leans on this to reuse one pooled handle per device across every
//! tick instead of reallocating paths, draws and projection terms.

use metasurface::stack::BiasState;
use propagation::antenna::{Antenna, OrientedAntenna};
use propagation::environment::Environment;
use propagation::link::{Link, LinkTuning, PreparedLink};
use propagation::rays::Deployment;
use proptest::prelude::*;
use rfmath::units::{Degrees, Hertz, Meters, Watts};

fn link(mismatch_deg: f64, tx_rx_cm: f64, env: Environment, power_mw: f64) -> Link {
    Link {
        tx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0)),
        rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0 - mismatch_deg)),
        frequency: Hertz::from_ghz(2.44),
        tx_power: Watts::from_mw(power_mw),
        deployment: Deployment::transmissive_cm(tx_rx_cm),
        environment: env,
        extra_paths: Vec::new(),
        tuning: LinkTuning::default(),
    }
}

/// One step of a device trajectory, as the mobility engine sees it.
#[derive(Clone, Debug)]
enum Move {
    /// Receive-mount rotation: the cached paths survive untouched.
    Rotate(f64),
    /// Transmit-power change: cached paths survive untouched.
    Power(f64),
    /// Genuine move: new separation, same environment — the cached
    /// scatter draws replay at the new distance.
    Walk(f64),
    /// Environment swap: a new scatter seed forces a full redraw.
    Reseed(u64),
}

fn moves() -> BoxedStrategy<Vec<Move>> {
    prop::collection::vec(
        prop_oneof![
            (-60.0f64..60.0).prop_map(Move::Rotate),
            (1.0f64..200.0).prop_map(Move::Power),
            (20.0f64..120.0).prop_map(Move::Walk),
            (0u64..32).prop_map(Move::Reseed),
        ],
        1..8,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every in-place rebind along a random trajectory, the
    /// pooled handle's surface-off and surface-on probes are bitwise
    /// equal to a freshly constructed handle of the same link.
    #[test]
    fn arena_rebind_is_bitwise_fresh_construction(
        mismatch in -45.0f64..45.0,
        tx_rx_cm in 20.0f64..120.0,
        seed in 0u64..32,
        steps in moves(),
    ) {
        let design = metasurface::designs::fr4_optimized();
        let f = Hertz::from_ghz(2.44);
        let surface = metasurface::response::SurfaceResponse::new(
            f,
            design.stack.response(f, BiasState::new(6.0, 6.0)),
        );
        let start = link(mismatch, tx_rx_cm, Environment::laboratory(seed), 50.0);
        let mut pooled = PreparedLink::new(start.clone());
        let mut current = start;
        let mut scratch = Vec::new();
        for step in steps {
            match step {
                Move::Rotate(deg) => {
                    current.rx =
                        OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0 - deg));
                }
                Move::Power(mw) => current.tx_power = Watts::from_mw(mw),
                Move::Walk(cm) => {
                    current.deployment = current
                        .deployment
                        .with_endpoint_separation(Meters(cm / 100.0));
                }
                Move::Reseed(s) => current.environment = Environment::laboratory(s),
            }
            pooled.rebind_in_place(current.clone());
            let fresh = PreparedLink::new(current.clone());
            for response in [None, Some(&surface)] {
                let a = pooled.received_dbm_scratch(response, &mut scratch).0;
                let b = fresh.received_dbm_with(response).0;
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "pooled {a} vs fresh {b} after {:?}",
                    response.map(|_| "surface")
                );
            }
        }
    }
}
