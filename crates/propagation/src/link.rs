//! The wireless link: coherent field summation over paths.
//!
//! A [`Link`] binds oriented antennas, a deployment geometry, an
//! environment and (optionally) a metasurface, and answers the question
//! every experiment in the paper asks: *what power does the receiver
//! see?* The receiver's port amplitude is the coherent sum of every
//! path's contribution projected onto the receive antenna's polarization
//! state:
//!
//! ```text
//! a_rx = √(Ptx·Gtx·Grx) · Σ_paths  t_path · ⟨rx_pol | J_path | tx_pol⟩
//! ```

use metasurface::response::{Metasurface, SurfaceResponse};
use rfmath::complex::Complex;
use rfmath::units::{Dbm, Hertz, Seconds, Watts};

use crate::antenna::OrientedAntenna;
use crate::environment::{Environment, ScatterDraw};
use crate::rays::{engineered_paths, engineered_paths_into, Deployment, Path, SurfaceMount};

/// Calibration knobs of the link model — the parameters the Figure 20
/// fidelity sweep (`expts --calibrate-fig20`) explores. Defaults
/// reproduce the uncalibrated model bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkTuning {
    /// Extra surface insertion loss per surface interaction, dB (applied
    /// to engineered paths on top of the circuit model's own loss;
    /// negative values model a *less* lossy physical prototype).
    pub surface_excess_loss_db: f64,
    /// Override for the environment scatterers' cross-polar
    /// discrimination, dB (`None` keeps the environment's built-in
    /// depolarization statistics). Higher XPD = purer scatter
    /// polarization = deeper mismatch fades.
    pub scatter_xpd_db: Option<f64>,
    /// Extra attenuation of near-axis scatter shadowed by a deployed
    /// transmissive panel, dB (on top of the panel's mean through-loss).
    pub shadow_extra_db: f64,
}

impl Default for LinkTuning {
    fn default() -> Self {
        Self {
            surface_excess_loss_db: 0.0,
            scatter_xpd_db: None,
            shadow_extra_db: 0.0,
        }
    }
}

impl LinkTuning {
    /// Amplitude factor the excess insertion loss applies to an
    /// engineered path, by how many times that path interacts with the
    /// surface (the bounce path crosses it twice).
    fn surface_loss_amp(&self, label: &str) -> f64 {
        if self.surface_excess_loss_db == 0.0 {
            return 1.0;
        }
        let interactions = match label {
            "through-surface" | "surface-reflection" => 1.0,
            "antenna-surface bounce" => 2.0,
            _ => 0.0,
        };
        10f64.powf(-self.surface_excess_loss_db * interactions / 20.0)
    }
}

/// A fully specified point-to-point link.
#[derive(Clone, Debug)]
pub struct Link {
    /// Transmit antenna and mount orientation.
    pub tx: OrientedAntenna,
    /// Receive antenna and mount orientation.
    pub rx: OrientedAntenna,
    /// Carrier frequency.
    pub frequency: Hertz,
    /// Transmit power at the TX antenna port.
    pub tx_power: Watts,
    /// Physical placement.
    pub deployment: Deployment,
    /// Propagation environment.
    pub environment: Environment,
    /// Additional scene paths beyond the engineered and environment ones
    /// (e.g. a breathing human target injected by the sensing layer).
    pub extra_paths: Vec<Path>,
    /// Calibration knobs (defaults = uncalibrated paper model).
    pub tuning: LinkTuning,
}

impl Link {
    /// All propagation paths for this link (engineered + environment +
    /// extras), with the surface's current bias state folded in when
    /// present.
    pub fn paths(&self, surface: Option<&Metasurface>) -> Vec<Path> {
        let response = surface.map(|s| s.response(self.frequency));
        self.paths_with(response.as_ref())
    }

    /// [`Link::paths`] against a precomputed surface response (one
    /// cascade evaluation shared by every consumer of this probe).
    pub fn paths_with(&self, surface: Option<&SurfaceResponse>) -> Vec<Path> {
        let mut paths = engineered_paths(self.deployment, surface, self.frequency);
        paths.extend(self.static_paths());
        paths
    }

    /// The bias-independent paths of this link: environment scatter plus
    /// caller-injected extras. These never change across a bias sweep,
    /// which is what [`PreparedLink`] exploits.
    fn static_paths(&self) -> Vec<Path> {
        let mut paths = self.environment.scatter_paths_with(
            self.deployment.tx_rx_distance(),
            self.frequency,
            self.tuning.scatter_xpd_db,
        );
        paths.extend(self.extra_paths.iter().cloned());
        paths
    }

    /// Complex receive-port amplitude at time `t` (√W units; |a|² is the
    /// received power in watts).
    ///
    /// Evaluates the surface cascade exactly once; grid sweeps that
    /// already hold a batched [`SurfaceResponse`] should call
    /// [`Link::received_amplitude_with`] instead.
    pub fn received_amplitude_at(&self, surface: Option<&Metasurface>, t: Seconds) -> Complex {
        let response = surface.map(|s| s.response(self.frequency));
        self.received_amplitude_with(response.as_ref(), t)
    }

    /// [`Link::received_amplitude_at`] against a precomputed surface
    /// response — the allocation-light inner loop of the heatmap and
    /// sweep engines.
    pub fn received_amplitude_with(
        &self,
        surface: Option<&SurfaceResponse>,
        t: Seconds,
    ) -> Complex {
        let paths = self.paths_with(surface);
        self.project_onto(&paths, surface, &self.rx, t)
    }

    /// Per-receiver amplitudes for several receive mounts sharing this
    /// link's transmitter, geometry and environment — the multi-device
    /// inner loop: the path set (engineered + scatter + extras) is built
    /// once per probe and only the polarization projection runs per
    /// receiver, instead of a full link rebuild per device.
    ///
    /// Element `i` equals `{rx = receivers[i], ..self}.
    /// received_amplitude_with(surface, t)` to within floating-point
    /// reassociation (≪ 1e-12 relative).
    pub fn received_amplitudes_for(
        &self,
        surface: Option<&SurfaceResponse>,
        receivers: &[OrientedAntenna],
        t: Seconds,
    ) -> Vec<Complex> {
        let paths = self.paths_with(surface);
        receivers
            .iter()
            .map(|rx| self.project_onto(&paths, surface, rx, t))
            .collect()
    }

    /// [`Link::received_amplitudes_for`] reduced to received powers in
    /// dBm at `t = 0`.
    pub fn received_dbm_for(
        &self,
        surface: Option<&SurfaceResponse>,
        receivers: &[OrientedAntenna],
    ) -> Vec<Dbm> {
        self.received_amplitudes_for(surface, receivers, Seconds(0.0))
            .into_iter()
            .map(|a| Watts(a.norm_sqr()).to_dbm())
            .collect()
    }

    /// The shared projection core: sums `paths` onto one receive mount.
    /// Every public power/amplitude accessor funnels through here, so
    /// single-receiver and batched evaluation stay in lockstep.
    fn project_onto(
        &self,
        paths: &[Path],
        surface: Option<&SurfaceResponse>,
        rx: &OrientedAntenna,
        t: Seconds,
    ) -> Complex {
        if let Some(surface) = surface {
            debug_assert!(
                surface.frequency().0.to_bits() == self.frequency.0.to_bits(),
                "surface response evaluated at {:?} but the link carrier is {:?}",
                surface.frequency(),
                self.frequency
            );
        }
        let shadow = self.shadow_factor(surface);
        let tx_state = self.tx.polarization();
        let rx_state = rx.polarization();
        let tx_rx = self.deployment.tx_rx_distance().0;
        let mut total = Complex::ZERO;
        for path in paths {
            total += self
                .path_term(path, rx, &tx_state, &rx_state, tx_rx, t.0)
                .contribution(shadow);
        }
        total * self.amp_scale(rx)
    }

    /// Boresight illumination scale: directional antennas apply their
    /// pattern to off-axis scatter per path, but the on-axis gain is a
    /// single factor on the summed amplitude.
    fn amp_scale(&self, rx: &OrientedAntenna) -> f64 {
        (self.tx_power.0 * self.tx.antenna.gain_linear() * rx.antenna.gain_linear()).sqrt()
    }

    /// A deployed transmissive panel shadows near-axis scatter: rays
    /// that would graze the link axis must now cross the panel and
    /// take its through-loss. This is the energy the surface *costs*
    /// an omni link in a rich environment (§5.1.2's low-power omni
    /// discussion). `1.0` when nothing shadows.
    fn shadow_factor(&self, surface: Option<&SurfaceResponse>) -> f64 {
        match (surface, self.deployment.surface) {
            (Some(surface), SurfaceMount::Transmissive { .. }) => {
                let eff_db = 0.5 * (surface.efficiency_x_db().0 + surface.efficiency_y_db().0)
                    - self.tuning.shadow_extra_db;
                10f64.powf(eff_db.max(-30.0 - self.tuning.shadow_extra_db) / 20.0)
            }
            _ => 1.0,
        }
    }

    /// One path's projection term onto `rx` at time `t`: the complex
    /// transfer × polarization coupling, the pattern/loss penalty, and
    /// whether the bias-dependent shadow applies. The polarization
    /// states are passed in precomputed (they are per-probe, not
    /// per-path, trigonometry). For bias-independent (static) paths at
    /// `t = 0` the term itself is bias-independent, which is what
    /// [`PreparedLink`] caches; summing [`ProjTerm::contribution`]s in
    /// path order reproduces the direct projection bit for bit.
    fn path_term(
        &self,
        path: &Path,
        rx: &OrientedAntenna,
        tx_state: &rfmath::jones::JonesVector,
        rx_state: &rfmath::jones::JonesVector,
        tx_rx: f64,
        t: f64,
    ) -> ProjTerm {
        let (pen, shadowed) = if path.label == "scatter" {
            // Scatter arrives off-axis: a directional antenna picks
            // it up through its average side response (−10 dB per
            // directional end), an omni at full gain. This is the
            // mechanism behind the Figure 18-vs-19 contrast.
            let tx_pen = match self.tx.antenna.pattern {
                crate::antenna::Pattern::Directional { .. } => 0.316,
                crate::antenna::Pattern::Omni => 1.0,
            };
            let rx_pen = match rx.antenna.pattern {
                crate::antenna::Pattern::Directional { .. } => 0.316,
                crate::antenna::Pattern::Omni => 1.0,
            };
            // Near-axis bounces (small excess length) pass through
            // the panel's aperture and take its loss.
            let near_axis = path.length.0 - tx_rx < 1.5;
            (tx_pen * rx_pen, near_axis)
        } else {
            (self.tuning.surface_loss_amp(path.label), false)
        };
        let out = path.jones.apply(*tx_state);
        let coupled = rx_state.0.dot(out.0);
        ProjTerm {
            k: path.transfer_at(self.frequency, t) * coupled,
            pen,
            shadowed,
        }
    }

    /// Received power in watts at `t = 0`.
    pub fn received_power(&self, surface: Option<&Metasurface>) -> Watts {
        Watts(self.received_amplitude_at(surface, Seconds(0.0)).norm_sqr())
    }

    /// Received power in dBm at `t = 0`.
    pub fn received_dbm(&self, surface: Option<&Metasurface>) -> Dbm {
        self.received_power(surface).to_dbm()
    }

    /// Received power in watts at `t = 0` against a precomputed surface
    /// response.
    pub fn received_power_with(&self, surface: Option<&SurfaceResponse>) -> Watts {
        Watts(
            self.received_amplitude_with(surface, Seconds(0.0))
                .norm_sqr(),
        )
    }

    /// Received power in dBm at `t = 0` against a precomputed surface
    /// response.
    pub fn received_dbm_with(&self, surface: Option<&SurfaceResponse>) -> Dbm {
        self.received_power_with(surface).to_dbm()
    }

    /// Received power time-series sampled at `rate_hz` for `duration`
    /// seconds (used by the sensing pipeline).
    pub fn received_dbm_series(
        &self,
        surface: Option<&Metasurface>,
        rate_hz: f64,
        duration: Seconds,
    ) -> Vec<(Seconds, Dbm)> {
        // The bias is fixed over the series, so one cascade evaluation
        // serves every time sample.
        let response = surface.map(|s| s.response(self.frequency));
        let n = (rate_hz * duration.0).ceil() as usize;
        (0..n)
            .map(|i| {
                let t = Seconds(i as f64 / rate_hz);
                let p = Watts(
                    self.received_amplitude_with(response.as_ref(), t)
                        .norm_sqr(),
                );
                (t, p.to_dbm())
            })
            .collect()
    }

    /// Polarization mismatch between the mounts, degrees.
    pub fn mismatch_deg(&self) -> f64 {
        self.tx.misalignment_with(&self.rx).0
    }
}

/// One path's precomputed projection onto a fixed receive mount: the
/// complex transfer × polarization coupling (`k`), the scalar
/// pattern/loss penalty (`pen`), and whether the bias-dependent
/// transmissive shadow multiplies in. Summing contributions in path
/// order is bit-identical to projecting the paths directly.
#[derive(Clone, Copy, Debug)]
struct ProjTerm {
    k: Complex,
    pen: f64,
    shadowed: bool,
}

impl ProjTerm {
    /// The term's amplitude contribution under the probe's shadow
    /// factor. Replicates the direct projection's operation order
    /// exactly: `(transfer × coupled) × ((tx_pen × rx_pen) × shadow)`.
    fn contribution(&self, shadow: f64) -> Complex {
        let factor = if self.shadowed {
            self.pen * shadow
        } else {
            self.pen
        };
        self.k * factor
    }
}

/// A link with its bias-independent paths precomputed: the fleet
/// engine's per-device probe handle.
///
/// Environment scatter and caller-injected extras never change across a
/// bias sweep, so a fleet scheduler probing hundreds of bias states pays
/// the scatter realization (RNG draws + allocation) once per device
/// instead of once per `(device, bias)` probe. Only the one or two
/// engineered paths are rebuilt per probe, against the surface response
/// the shared evaluation plan already produced. On top of the cached
/// paths, the `t = 0` projection *terms* of the static set are
/// precomputed too — only the bias-dependent shadow factor and the
/// engineered paths are evaluated per probe in the scratch fast path.
#[derive(Clone, Debug)]
pub struct PreparedLink {
    link: Link,
    static_paths: Vec<Path>,
    static_terms: Vec<ProjTerm>,
    scatter_draws: Vec<ScatterDraw>,
}

impl PreparedLink {
    /// Precomputes the bias-independent paths of `link`.
    pub fn new(link: Link) -> Self {
        let scatter_draws = link.environment.scatter_draws(link.tuning.scatter_xpd_db);
        let mut static_paths = Vec::with_capacity(scatter_draws.len() + link.extra_paths.len());
        link.environment.scatter_paths_from(
            &scatter_draws,
            link.deployment.tx_rx_distance(),
            link.frequency,
            &mut static_paths,
        );
        static_paths.extend(link.extra_paths.iter().cloned());
        let mut prepared = Self {
            link,
            static_paths,
            static_terms: Vec::new(),
            scatter_draws,
        };
        prepared.rebuild_static_terms();
        prepared
    }

    /// Re-derives the cached `t = 0` projection terms from the current
    /// link and static paths. Reuses the term vector's storage, so the
    /// steady-state rebind path stays allocation-free once the capacity
    /// has grown to the path-set size.
    fn rebuild_static_terms(&mut self) {
        let Self {
            link,
            static_paths,
            static_terms,
            ..
        } = self;
        let tx_state = link.tx.polarization();
        let rx_state = link.rx.polarization();
        let tx_rx = link.deployment.tx_rx_distance().0;
        static_terms.clear();
        static_terms.extend(
            static_paths
                .iter()
                .map(|path| link.path_term(path, &link.rx, &tx_state, &rx_state, tx_rx, 0.0)),
        );
    }

    /// The underlying link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Re-targets the engineered geometry at a panel's mounting position
    /// while *reusing* the precomputed bias-independent paths — the
    /// per-panel probe handle of a panel array. Valid because the static
    /// paths (environment scatter + extras) depend only on the endpoint
    /// separation, which panel re-mounting never changes; only the one
    /// or two engineered surface paths move, and those are rebuilt per
    /// probe anyway.
    ///
    /// # Panics
    /// Panics if `deployment` changes the endpoint separation — that
    /// would invalidate the cached scatter realization.
    pub fn with_surface_placement(&self, deployment: Deployment) -> Self {
        assert!(
            deployment.tx_rx_distance().0.to_bits()
                == self.link.deployment.tx_rx_distance().0.to_bits(),
            "panel re-mounting must keep the endpoints fixed: {:?} vs {:?}",
            deployment.tx_rx_distance(),
            self.link.deployment.tx_rx_distance(),
        );
        let mut link = self.link.clone();
        link.deployment = deployment;
        let mut prepared = Self {
            link,
            static_paths: self.static_paths.clone(),
            static_terms: Vec::new(),
            scatter_draws: self.scatter_draws.clone(),
        };
        prepared.rebuild_static_terms();
        prepared
    }

    /// True when `link`'s bias-independent paths are bit-identical to
    /// this prepared link's cached ones, so a rebind can skip the
    /// scatter re-realization. The cached paths depend only on the
    /// environment (its seed, scatterer count and power), the endpoint
    /// separation, the carrier, the scatter-XPD tuning knob, and any
    /// caller-injected extras — receive-mount rotation, transmit-power
    /// scaling and surface re-mounting all leave them untouched, which
    /// is what makes those the *cheap* mobility moves.
    pub fn static_paths_reusable(&self, link: &Link) -> bool {
        let old = &self.link;
        old.environment == link.environment
            && old.deployment.tx_rx_distance().0.to_bits()
                == link.deployment.tx_rx_distance().0.to_bits()
            && old.frequency.0.to_bits() == link.frequency.0.to_bits()
            && old.tuning.scatter_xpd_db == link.tuning.scatter_xpd_db
            && old.extra_paths.is_empty()
            && link.extra_paths.is_empty()
    }

    /// Re-prepares this handle for an updated link, reusing the cached
    /// bias-independent paths whenever [`PreparedLink::static_paths_reusable`]
    /// holds (a rotated mount, a power/blockage change, a re-mounted
    /// panel) and falling back to a full [`PreparedLink::new`] — fresh
    /// scatter realization included — when the device genuinely moved
    /// (endpoint separation, environment or carrier changed). The
    /// mobility simulator's per-device update path.
    pub fn rebind(&self, link: Link) -> Self {
        if self.static_paths_reusable(&link) {
            let mut prepared = Self {
                link,
                static_paths: self.static_paths.clone(),
                static_terms: Vec::new(),
                scatter_draws: self.scatter_draws.clone(),
            };
            prepared.rebuild_static_terms();
            prepared
        } else {
            Self::new(link)
        }
    }

    /// True when the cached scatter *draws* — the geometry-independent
    /// random realization — still describe `link`'s environment, so a
    /// genuine move (changed endpoint separation) can replay them at the
    /// new distance instead of re-running the RNG stream. Strictly
    /// weaker than [`PreparedLink::static_paths_reusable`]: the draws
    /// depend only on the environment (seed, scatterer count) and the
    /// scatter-XPD knob, not on the separation or the carrier.
    fn scatter_draws_reusable(&self, link: &Link) -> bool {
        let old = &self.link;
        old.environment == link.environment
            && old.tuning.scatter_xpd_db == link.tuning.scatter_xpd_db
            && old.extra_paths.is_empty()
            && link.extra_paths.is_empty()
    }

    /// [`PreparedLink::rebind`] without constructing a new handle: the
    /// mobility engine's pooled update path. When the cached scatter is
    /// reusable (rotation, power, blockage — the common dirty moves)
    /// this swaps the link in place and touches no heap at all, instead
    /// of cloning the static path vector per rebind; a genuine move
    /// re-realizes the scatter into this handle's storage.
    /// Result is bitwise equal to `*self = self.rebind(link)`.
    pub fn rebind_in_place(&mut self, link: Link) {
        if !self.static_paths_reusable(&link) {
            if self.scatter_draws_reusable(&link) {
                // Genuine move with an unchanged environment: replay the
                // cached draws at the new separation. No RNG, and the
                // path vector's storage is reused — the steady-state
                // mobility tick touches no heap even when devices roam.
                self.static_paths.clear();
                link.environment.scatter_paths_from(
                    &self.scatter_draws,
                    link.deployment.tx_rx_distance(),
                    link.frequency,
                    &mut self.static_paths,
                );
            } else {
                self.static_paths = link.static_paths();
                self.scatter_draws = link.environment.scatter_draws(link.tuning.scatter_xpd_db);
            }
        }
        self.link = link;
        // Rotation, power and re-mounting all perturb the projection
        // geometry even when the ray set survives, so the term table is
        // always re-derived (in place — its storage is reused).
        self.rebuild_static_terms();
    }

    /// Full path set against a precomputed surface response (engineered
    /// paths rebuilt, static paths reused). Same order as
    /// [`Link::paths_with`].
    fn paths_with(&self, surface: Option<&SurfaceResponse>) -> Vec<Path> {
        let mut paths = Vec::with_capacity(2 + self.static_paths.len());
        self.paths_into(surface, &mut paths);
        paths
    }

    /// [`PreparedLink::paths_with`] into a caller-owned scratch buffer
    /// (cleared first) — no allocation once the buffer has grown to the
    /// path-set size.
    fn paths_into(&self, surface: Option<&SurfaceResponse>, out: &mut Vec<Path>) {
        out.clear();
        engineered_paths_into(self.link.deployment, surface, self.link.frequency, out);
        out.extend_from_slice(&self.static_paths);
    }

    /// Receive-port amplitude at time `t`; equals
    /// [`Link::received_amplitude_with`] on the wrapped link.
    pub fn received_amplitude_with(
        &self,
        surface: Option<&SurfaceResponse>,
        t: Seconds,
    ) -> Complex {
        let paths = self.paths_with(surface);
        self.link.project_onto(&paths, surface, &self.link.rx, t)
    }

    /// [`PreparedLink::received_amplitude_with`] against a reusable
    /// scratch buffer — the allocation-free probe loop: a caller
    /// evaluating N devices × B biases keeps one `Vec<Path>` per worker
    /// and pays zero heap traffic per probe. Bitwise equal to the
    /// allocating variant.
    ///
    /// At `t = 0` (every power probe) only the engineered paths are
    /// projected in full; the static tail is summed from the cached
    /// [`ProjTerm`]s — same contributions in the same order, so the
    /// result is still bit-identical, at a fraction of the per-probe
    /// trigonometry.
    pub fn received_amplitude_scratch(
        &self,
        surface: Option<&SurfaceResponse>,
        t: Seconds,
        scratch: &mut Vec<Path>,
    ) -> Complex {
        if t.0 != 0.0 {
            // The term cache is a t = 0 snapshot; time-series callers
            // take the direct projection.
            self.paths_into(surface, scratch);
            return self.link.project_onto(scratch, surface, &self.link.rx, t);
        }
        scratch.clear();
        engineered_paths_into(self.link.deployment, surface, self.link.frequency, scratch);
        let shadow = self.link.shadow_factor(surface);
        let tx_state = self.link.tx.polarization();
        let rx_state = self.link.rx.polarization();
        let tx_rx = self.link.deployment.tx_rx_distance().0;
        let mut total = Complex::ZERO;
        for path in scratch.iter() {
            total += self
                .link
                .path_term(path, &self.link.rx, &tx_state, &rx_state, tx_rx, 0.0)
                .contribution(shadow);
        }
        for term in &self.static_terms {
            total += term.contribution(shadow);
        }
        total * self.link.amp_scale(&self.link.rx)
    }

    /// The *surface-scattered* part of the receive-port amplitude at
    /// `t = 0`: only the engineered paths that interact with the
    /// deployed surface are projected. The bias-independent static tail
    /// (environment scatter, caller extras) and a reflective
    /// deployment's direct free-space ray are excluded, and no
    /// transmissive shadow applies — the shadow models what the *home*
    /// panel costs the static field, which a multi-surface superposition
    /// counts exactly once.
    ///
    /// This is the field a *foreign* panel of a panel array leaks toward
    /// this receiver: a coupled sum
    /// ([`crate::coupling::MultiSurfaceField`]) superposes the home
    /// link's full amplitude with each extra panel's scattered term, so
    /// direct and environment energy are never double-counted. `None`
    /// (panel dark / no response) yields exactly `Complex::ZERO`.
    pub fn scattered_amplitude_scratch(
        &self,
        surface: Option<&SurfaceResponse>,
        scratch: &mut Vec<Path>,
    ) -> Complex {
        let Some(surface) = surface else {
            return Complex::ZERO;
        };
        scratch.clear();
        engineered_paths_into(
            self.link.deployment,
            Some(surface),
            self.link.frequency,
            scratch,
        );
        let tx_state = self.link.tx.polarization();
        let rx_state = self.link.rx.polarization();
        let tx_rx = self.link.deployment.tx_rx_distance().0;
        let mut total = Complex::ZERO;
        for path in scratch.iter() {
            if path.label == "direct" {
                // A reflective deployment's direct ray never touches the
                // surface; the home link already carries it.
                continue;
            }
            total += self
                .link
                .path_term(path, &self.link.rx, &tx_state, &rx_state, tx_rx, 0.0)
                .contribution(1.0);
        }
        total * self.link.amp_scale(&self.link.rx)
    }

    /// Received power in dBm at `t = 0` against a reusable scratch
    /// buffer; bitwise equal to [`PreparedLink::received_dbm_with`].
    pub fn received_dbm_scratch(
        &self,
        surface: Option<&SurfaceResponse>,
        scratch: &mut Vec<Path>,
    ) -> Dbm {
        Watts(
            self.received_amplitude_scratch(surface, Seconds(0.0), scratch)
                .norm_sqr(),
        )
        .to_dbm()
    }

    /// Received power in dBm at `t = 0`.
    pub fn received_dbm_with(&self, surface: Option<&SurfaceResponse>) -> Dbm {
        Watts(
            self.received_amplitude_with(surface, Seconds(0.0))
                .norm_sqr(),
        )
        .to_dbm()
    }

    /// Per-receiver powers for several mounts sharing this link's
    /// geometry — one path build, N polarization projections.
    pub fn received_dbm_for(
        &self,
        surface: Option<&SurfaceResponse>,
        receivers: &[OrientedAntenna],
    ) -> Vec<Dbm> {
        let paths = self.paths_with(surface);
        receivers
            .iter()
            .map(|rx| {
                Watts(
                    self.link
                        .project_onto(&paths, surface, rx, Seconds(0.0))
                        .norm_sqr(),
                )
                .to_dbm()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::Antenna;
    use metasurface::stack::BiasState;
    use rfmath::units::{Degrees, Meters};

    fn base_link(mismatch_deg: f64) -> Link {
        Link {
            tx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0)),
            rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0 - mismatch_deg)),
            frequency: Hertz::from_ghz(2.44),
            tx_power: Watts::from_mw(50.0),
            deployment: Deployment::transmissive_cm(36.0),
            environment: Environment::anechoic(),
            extra_paths: Vec::new(),
            tuning: LinkTuning::default(),
        }
    }

    #[test]
    fn matched_link_beats_mismatched_link() {
        let matched = base_link(0.0);
        let mismatched = base_link(90.0);
        let p_match = matched.received_dbm(None);
        let p_mis = mismatched.received_dbm(None);
        let gap = p_match.0 - p_mis.0;
        assert!(
            (10.0..30.0).contains(&gap),
            "match-vs-mismatch gap = {gap:.1} dB (XPD floor keeps it finite)"
        );
    }

    #[test]
    fn free_space_power_matches_friis() {
        // Matched antennas, no surface: the link budget must equal
        // Ptx + Gtx + Grx − FSPL within the XPD rounding.
        let link = base_link(0.0);
        let p = link.received_dbm(None).0;
        let expected = Watts::from_mw(50.0).to_dbm().0 + 10.0 + 10.0
            - crate::friis::path_loss_db(link.frequency, Meters(0.36)).0;
        assert!((p - expected).abs() < 0.2, "{p:.1} vs {expected:.1} dBm");
    }

    #[test]
    fn surface_rescues_mismatched_link() {
        // The headline result: with the surface biased for rotation, a
        // 90°-mismatched link gains >10 dB (Figure 16).
        let link = base_link(90.0);
        let baseline = link.received_dbm(None);
        let mut surface = Metasurface::llama();
        // Sweep coarsely for the best bias, like the controller would.
        let mut best = f64::NEG_INFINITY;
        for vx in [2.0, 4.0, 6.0, 10.0, 15.0, 30.0] {
            for vy in [2.0, 4.0, 6.0, 10.0, 15.0, 30.0] {
                surface.set_bias(BiasState::new(vx, vy));
                best = best.max(link.received_dbm(Some(&surface)).0);
            }
        }
        let gain = best - baseline.0;
        assert!(
            gain > 8.0,
            "surface should rescue the link: gain = {gain:.1} dB"
        );
    }

    #[test]
    fn surface_bias_changes_received_power() {
        let link = base_link(90.0);
        let mut surface = Metasurface::llama();
        surface.set_bias(BiasState::new(2.0, 2.0));
        let p1 = link.received_dbm(Some(&surface)).0;
        surface.set_bias(BiasState::new(15.0, 2.0));
        let p2 = link.received_dbm(Some(&surface)).0;
        assert!(
            (p1 - p2).abs() > 3.0,
            "bias must matter: {p1:.1} vs {p2:.1}"
        );
    }

    #[test]
    fn multipath_adds_variance_across_seeds() {
        // Omni endpoints pick up the full scatter field (directional
        // panels suppress it by ~20 dB), so per-realization fading is
        // clearly visible on a mismatched link.
        let mut powers = Vec::new();
        for seed in 0..20 {
            let mut link = base_link(90.0);
            link.tx = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(90.0));
            link.rx = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(0.0));
            link.environment = Environment::laboratory(seed);
            powers.push(link.received_dbm(None).0);
        }
        let spread = rfmath::stats::max(&powers) - rfmath::stats::min(&powers);
        assert!(spread > 3.0, "fading spread = {spread:.1} dB");
    }

    #[test]
    fn time_series_is_static_without_modulation() {
        let link = base_link(45.0);
        let series = link.received_dbm_series(None, 10.0, Seconds(1.0));
        assert_eq!(series.len(), 10);
        let first = series[0].1 .0;
        assert!(series.iter().all(|(_, p)| (p.0 - first).abs() < 1e-9));
    }

    #[test]
    fn batched_receivers_match_per_receiver_links() {
        // Mixed omni/directional mounts in a multipath room: the batched
        // projection must agree with N independent link evaluations.
        let mut link = base_link(90.0);
        link.environment = Environment::laboratory(5);
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        let receivers = vec![
            OrientedAntenna::new(Antenna::directional_panel(), Degrees(0.0)),
            OrientedAntenna::new(Antenna::directional_panel(), Degrees(55.0)),
            OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(120.0)),
        ];
        let batched = link.received_dbm_for(Some(&response), &receivers);
        for (rx, got) in receivers.iter().zip(&batched) {
            let mut solo = link.clone();
            solo.rx = rx.clone();
            let want = solo.received_dbm_with(Some(&response)).0;
            assert!(
                (got.0 - want).abs() < 1e-12,
                "{}: batched {} vs solo {}",
                rx.orientation.0,
                got.0,
                want
            );
        }
    }

    #[test]
    fn prepared_link_matches_fresh_link() {
        let mut link = base_link(35.0);
        link.environment = Environment::laboratory(9);
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        let prepared = PreparedLink::new(link.clone());
        assert!(
            (prepared.received_dbm_with(Some(&response)).0
                - link.received_dbm_with(Some(&response)).0)
                .abs()
                < 1e-12
        );
        assert!(
            (prepared.received_dbm_with(None).0 - link.received_dbm_with(None).0).abs() < 1e-12
        );
        let rxs = vec![link.rx.clone(), link.tx.clone()];
        let a = prepared.received_dbm_for(Some(&response), &rxs);
        let b = link.received_dbm_for(Some(&response), &rxs);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.0 - y.0).abs() < 1e-12);
        }
    }

    #[test]
    fn panel_placement_reuses_scatter_and_matches_fresh_prep() {
        // Re-mounting the surface for a panel must (a) keep the cached
        // scatter bit-identical (same room, same endpoints) and (b)
        // agree exactly with preparing the moved link from scratch.
        let mut link = base_link(60.0);
        link.deployment = Deployment::transmissive_cm(100.0);
        link.environment = Environment::laboratory(11);
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        let prepared = PreparedLink::new(link.clone());
        let moved = prepared.with_surface_placement(link.deployment.with_surface_fraction(0.2));
        let mut fresh_link = link.clone();
        fresh_link.deployment = link.deployment.with_surface_fraction(0.2);
        let fresh = PreparedLink::new(fresh_link);
        assert!(
            (moved.received_dbm_with(Some(&response)).0
                - fresh.received_dbm_with(Some(&response)).0)
                .abs()
                < 1e-12
        );
        // Moving the panel genuinely changes the physics (the bounce
        // path length tracks the mount point).
        assert!(
            (moved.received_dbm_with(Some(&response)).0
                - prepared.received_dbm_with(Some(&response)).0)
                .abs()
                > 1e-9
        );
    }

    #[test]
    fn rebind_reuses_scatter_for_rotation_and_power_only_changes() {
        let mut link = base_link(20.0);
        link.environment = Environment::laboratory(17);
        let prepared = PreparedLink::new(link.clone());
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);

        // Rotation + power scaling: static paths reusable, and the
        // rebound handle answers exactly like a fresh preparation (the
        // cached scatter IS the fresh scatter — same seed, same room).
        let mut turned = link.clone();
        turned.rx = OrientedAntenna::new(turned.rx.antenna.clone(), Degrees(47.0));
        turned.tx_power = Watts::from_mw(10.0);
        assert!(prepared.static_paths_reusable(&turned));
        let rebound = prepared.rebind(turned.clone());
        let fresh = PreparedLink::new(turned);
        assert_eq!(
            rebound.received_dbm_with(Some(&response)).0,
            fresh.received_dbm_with(Some(&response)).0
        );

        // Moving an endpoint invalidates the cached scatter: the rebind
        // must fall back to a full re-preparation (and still agree with
        // a fresh one).
        let mut walked = link.clone();
        walked.deployment = Deployment::transmissive_cm(50.0);
        assert!(!prepared.static_paths_reusable(&walked));
        let rebound = prepared.rebind(walked.clone());
        let fresh = PreparedLink::new(walked);
        assert_eq!(
            rebound.received_dbm_with(Some(&response)).0,
            fresh.received_dbm_with(Some(&response)).0
        );
    }

    #[test]
    fn rebind_in_place_is_bitwise_equal_to_rebind() {
        let mut link = base_link(20.0);
        link.environment = Environment::laboratory(23);
        let prepared = PreparedLink::new(link.clone());
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);

        // Reusable move (rotation) and a genuine move (endpoint walk):
        // the pooled path must match the allocating one bit for bit.
        let mut turned = link.clone();
        turned.rx = OrientedAntenna::new(turned.rx.antenna.clone(), Degrees(31.0));
        let mut walked = link.clone();
        walked.deployment = Deployment::transmissive_cm(44.0);
        for updated in [turned, walked] {
            let rebound = prepared.rebind(updated.clone());
            let mut pooled = prepared.clone();
            pooled.rebind_in_place(updated);
            assert_eq!(
                pooled.received_dbm_with(Some(&response)).0,
                rebound.received_dbm_with(Some(&response)).0
            );
            assert_eq!(
                pooled.received_dbm_with(None).0,
                rebound.received_dbm_with(None).0
            );
        }
    }

    #[test]
    fn scratch_probe_is_bitwise_equal_to_allocating_probe() {
        let mut link = base_link(25.0);
        link.environment = Environment::laboratory(29);
        let prepared = PreparedLink::new(link.clone());
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);

        // One scratch buffer across mixed probes (with and without a
        // surface) — reuse must not leak paths between probes.
        let mut scratch = Vec::new();
        for surface in [Some(&response), None] {
            assert_eq!(
                prepared.received_dbm_scratch(surface, &mut scratch).0,
                prepared.received_dbm_with(surface).0
            );
            assert_eq!(
                prepared
                    .received_amplitude_scratch(surface, Seconds(0.0), &mut scratch)
                    .norm_sqr(),
                prepared
                    .received_amplitude_with(surface, Seconds(0.0))
                    .norm_sqr()
            );
        }
    }

    #[test]
    fn scattered_amplitude_is_zero_without_a_surface() {
        let mut link = base_link(40.0);
        link.environment = Environment::laboratory(31);
        let prepared = PreparedLink::new(link);
        let mut scratch = Vec::new();
        let amp = prepared.scattered_amplitude_scratch(None, &mut scratch);
        assert_eq!(amp.re.to_bits(), 0.0f64.to_bits());
        assert_eq!(amp.im.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn scattered_amplitude_ignores_the_static_tail() {
        // The scattered term projects only the engineered paths, so two
        // links differing only in environment scatter answer bit for
        // bit the same.
        let clean = base_link(40.0);
        let mut busy = clean.clone();
        busy.environment = Environment::laboratory(13);
        let surface = Metasurface::llama();
        let response = surface.response(clean.frequency);
        let mut scratch = Vec::new();
        let a = PreparedLink::new(clean).scattered_amplitude_scratch(Some(&response), &mut scratch);
        let b = PreparedLink::new(busy).scattered_amplitude_scratch(Some(&response), &mut scratch);
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }

    #[test]
    fn reflective_scattered_term_is_the_full_field_minus_the_direct_ray() {
        // In absorber, a reflective link's field is direct + specular
        // reflection; the scattered term must recover exactly the
        // reflection's share (to reassociation).
        let mut link = base_link(30.0);
        link.deployment = Deployment::reflective_cm(36.0);
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        let prepared = PreparedLink::new(link.clone());
        let mut scratch = Vec::new();
        let full = prepared.received_amplitude_with(Some(&response), Seconds(0.0));
        let direct = prepared.received_amplitude_with(None, Seconds(0.0));
        let scattered = prepared.scattered_amplitude_scratch(Some(&response), &mut scratch);
        let resid = full - (direct + scattered);
        assert!(
            resid.abs() < 1e-15,
            "direct + scattered must reassemble the field: residual {resid:?}"
        );
        assert!(scattered.abs() > 0.0, "the surface contributes energy");
    }

    #[test]
    #[should_panic(expected = "endpoints fixed")]
    fn panel_placement_rejects_moved_endpoints() {
        let prepared = PreparedLink::new(base_link(0.0));
        let _ = prepared.with_surface_placement(Deployment::transmissive_cm(99.0));
    }

    #[test]
    fn default_tuning_is_identity() {
        let link = base_link(90.0);
        let mut tuned = link.clone();
        tuned.tuning = LinkTuning::default();
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        assert_eq!(
            link.received_dbm_with(Some(&response)).0,
            tuned.received_dbm_with(Some(&response)).0
        );
    }

    #[test]
    fn excess_loss_attenuates_surface_paths_only() {
        let mut link = base_link(90.0);
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        let base = link.received_dbm_with(Some(&response)).0;
        let free = link.received_dbm_with(None).0;
        link.tuning.surface_excess_loss_db = 3.0;
        let lossy = link.received_dbm_with(Some(&response)).0;
        // The dominant path crosses once: ≈3 dB down (bounce crosses
        // twice, nudging the exact figure).
        assert!(
            (base - lossy - 3.0).abs() < 1.0,
            "excess loss moved power by {:.2} dB",
            base - lossy
        );
        // No surface, no effect.
        assert_eq!(free, link.received_dbm_with(None).0);
    }

    #[test]
    fn extra_shadow_darkens_near_axis_scatter() {
        let mut link = base_link(90.0);
        link.tx = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(90.0));
        link.rx = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(0.0));
        link.environment = Environment::laboratory(3);
        let surface = Metasurface::llama();
        let response = surface.response(link.frequency);
        let base = link.received_dbm_with(Some(&response)).0;
        link.tuning.shadow_extra_db = 20.0;
        let shadowed = link.received_dbm_with(Some(&response)).0;
        assert!(
            (shadowed - base).abs() > 0.05,
            "shadow knob must move an omni multipath link: {base:.2} vs {shadowed:.2}"
        );
    }

    #[test]
    fn reflective_deployment_sees_surface() {
        let mut link = base_link(90.0);
        link.deployment = Deployment::reflective_cm(36.0);
        let without = link.received_dbm(None).0;
        let surface = Metasurface::llama();
        let with = link.received_dbm(Some(&surface)).0;
        // The folded specular path adds energy the direct mismatched path
        // lacks.
        assert!(
            with > without,
            "reflective surface should help: {with:.1} vs {without:.1} dBm"
        );
    }
}
