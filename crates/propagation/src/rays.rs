//! Deployment geometry and propagation paths.
//!
//! Mirrors the paper's two experimental setups (Figure 14), promoted
//! from scalar line distances to planar **room coordinates**: the
//! transmitter, receiver and surface mount are [`Point2`] positions, and
//! every path length and illumination angle is *derived* from them.
//!
//! * **Transmissive** — the surface sits between the endpoints; the
//!   dominant path crosses it and picks up the surface's transmission
//!   Jones matrix. A weak antenna↔surface multi-bounce term makes the
//!   optimal bias *distance-dependent*, which is why the paper steps
//!   Tx–Rx spacing in half-wavelength increments (Figure 15). Mounting
//!   the panel off the link axis foreshortens its aperture by the
//!   cosine of the illumination angle.
//! * **Reflective** — both endpoints face the surface from the same
//!   side; the dominant engineered path reflects specularly off the
//!   surface front (image theory over the full Tx→surface→Rx fold),
//!   while a weak direct endpoint-to-endpoint path persists.
//!
//! Each path carries a complex scalar transfer (Friis amplitude + phase)
//! and a Jones matrix describing what it does to polarization. The link
//! layer sums path field contributions coherently.
//!
//! ## Collinear compatibility
//!
//! The legacy scalar constructors ([`Deployment::transmissive_cm`],
//! [`Deployment::reflective_cm`], [`Deployment::with_surface_fraction`])
//! survive as thin wrappers that lay the room out on the x-axis. Their
//! derived path lengths reproduce the pre-coordinate scalar formulas
//! **bit for bit**: axis-aligned distances evaluate as `sqrt(x²) == x`
//! exactly, the reflective fold `|tx−s| + |s−rx|` equals
//! `2·√(d² + (sep/2)²)` exactly (both halves are the same rounded
//! square root, and `x + x` is exact), and the aperture obliquity is
//! exactly `1.0` whenever the mount lies on the link line. This is what
//! keeps [`crate::link::PreparedLink`]'s scatter cache — keyed on the
//! endpoint separation — and every equivalence proptest meaningful
//! across the refactor.

use metasurface::response::SurfaceResponse;
use rfmath::complex::Complex;
use rfmath::jones::JonesMatrix;
use rfmath::units::{Degrees, Hertz, Meters};
use rfmath::vec2::Point2;

use crate::friis::field_transfer;

/// Where (and how) the surface hangs in the room.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SurfaceMount {
    /// No surface deployed (baseline measurements).
    None,
    /// The surface intercepts the link between the endpoints (Figure 14,
    /// left); the dominant path crosses it.
    Transmissive {
        /// Mount position in room coordinates, meters.
        position: Point2,
    },
    /// The surface faces both endpoints from one side (Figure 14,
    /// right); the engineered path folds off it specularly.
    Reflective {
        /// Mount position in room coordinates, meters.
        position: Point2,
    },
}

/// Physical placement of endpoints and surface in room coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Deployment {
    /// Transmitter position, meters.
    pub tx: Point2,
    /// Receiver position, meters.
    pub rx: Point2,
    /// Surface mount (kind + position).
    pub surface: SurfaceMount,
}

impl Deployment {
    /// A general room placement from explicit coordinates.
    pub fn room(tx: Point2, rx: Point2, surface: SurfaceMount) -> Self {
        Self { tx, rx, surface }
    }

    /// A transmissive deployment laid out on the x-axis: Tx at the
    /// origin, Rx at `tx_rx`, surface on the line at `surface_fraction`
    /// of the way (clamped to the physical mount range `0.05..0.95`).
    pub fn transmissive(tx_rx: Meters, surface_fraction: f64) -> Self {
        let fraction = surface_fraction.clamp(0.05, 0.95);
        Self {
            tx: Point2::ORIGIN,
            rx: Point2::new(tx_rx.0, 0.0),
            surface: SurfaceMount::Transmissive {
                position: Point2::new(tx_rx.0 * fraction, 0.0),
            },
        }
    }

    /// The paper's default transmissive setup with the surface midway.
    pub fn transmissive_cm(tx_rx_cm: f64) -> Self {
        Self::transmissive(Meters::from_cm(tx_rx_cm), 0.5)
    }

    /// A reflective deployment laid out symmetrically: endpoints at
    /// `(±tx_rx/2, 0)`, surface at `(0, surface_distance)` facing them.
    pub fn reflective(tx_rx: Meters, surface_distance: Meters) -> Self {
        let half = tx_rx.0 / 2.0;
        Self {
            tx: Point2::new(-half, 0.0),
            rx: Point2::new(half, 0.0),
            surface: SurfaceMount::Reflective {
                position: Point2::new(0.0, surface_distance.0),
            },
        }
    }

    /// The paper's reflective setup: 70 cm endpoint separation.
    pub fn reflective_cm(surface_distance_cm: f64) -> Self {
        Self::reflective(Meters::from_cm(70.0), Meters::from_cm(surface_distance_cm))
    }

    /// A baseline (no surface) link on the x-axis.
    pub fn free(tx_rx: Meters) -> Self {
        Self {
            tx: Point2::ORIGIN,
            rx: Point2::new(tx_rx.0, 0.0),
            surface: SurfaceMount::None,
        }
    }

    /// Strips the surface while keeping the endpoints where they are
    /// (baseline measurements at the same spacing).
    pub fn without_surface(self) -> Self {
        Self {
            surface: SurfaceMount::None,
            ..self
        }
    }

    /// Endpoint separation along the direct line.
    pub fn tx_rx_distance(&self) -> Meters {
        Meters(self.tx.distance(self.rx))
    }

    /// Unit direction from Tx toward Rx (`(1, 0)` when the endpoints
    /// coincide).
    pub fn axis(&self) -> Point2 {
        (self.rx - self.tx).unit()
    }

    /// The surface's mount position, if one is deployed.
    pub fn surface_position(&self) -> Option<Point2> {
        match self.surface {
            SurfaceMount::None => None,
            SurfaceMount::Transmissive { position } | SurfaceMount::Reflective { position } => {
                Some(position)
            }
        }
    }

    /// Perpendicular distance from the surface mount to the endpoint
    /// line (the reflective "standoff"; zero for a mount on the link
    /// axis).
    pub fn surface_standoff(&self) -> Option<Meters> {
        let s = self.surface_position()?;
        let sep = self.tx_rx_distance().0;
        if sep == 0.0 {
            return Some(Meters(self.tx.distance(s)));
        }
        Some(Meters(((self.rx - self.tx).cross(s - self.tx) / sep).abs()))
    }

    /// Re-mounts the surface at a different position while keeping the
    /// endpoints fixed — the per-panel geometry adjustment of a panel
    /// array (each panel hangs at its own spot). Transmissive
    /// deployments move the surface to `fraction` of the link line;
    /// reflective ones re-standoff the surface to `fraction` of the
    /// endpoint separation, perpendicular to the link on the side it
    /// already occupies; `None` (no surface) is unchanged. Fractions are
    /// clamped to the physical range `0.05..0.95`.
    pub fn with_surface_fraction(self, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.05, 0.95);
        match self.surface {
            SurfaceMount::None => self,
            SurfaceMount::Transmissive { .. } => Self {
                surface: SurfaceMount::Transmissive {
                    position: self.tx + (self.rx - self.tx) * fraction,
                },
                ..self
            },
            SurfaceMount::Reflective { position } => {
                let foot = (self.tx + self.rx) * 0.5;
                let sep = self.tx_rx_distance().0;
                let side = (self.rx - self.tx).cross(position - foot);
                let n = if side < 0.0 {
                    -self.axis().perp()
                } else {
                    self.axis().perp()
                };
                Self {
                    surface: SurfaceMount::Reflective {
                        position: foot + n * (sep * fraction),
                    },
                    ..self
                }
            }
        }
    }

    /// Moves the surface mount to an absolute room position, keeping its
    /// kind and the endpoints (the 2-D panel re-mounting primitive; a
    /// surface-less deployment is unchanged).
    pub fn with_surface_at(self, position: Point2) -> Self {
        let surface = match self.surface {
            SurfaceMount::None => SurfaceMount::None,
            SurfaceMount::Transmissive { .. } => SurfaceMount::Transmissive { position },
            SurfaceMount::Reflective { .. } => SurfaceMount::Reflective { position },
        };
        Self { surface, ..self }
    }

    /// Moves the receiver to an absolute room position (a device walking
    /// through the room; the transmitter and surface stay put).
    pub fn with_rx_at(self, rx: Point2) -> Self {
        Self { rx, ..self }
    }

    /// Moves the transmitter to an absolute room position.
    pub fn with_tx_at(self, tx: Point2) -> Self {
        Self { tx, ..self }
    }

    /// Re-scales the endpoint separation to `d` along the current link
    /// axis, keeping Tx fixed. A transmissive surface keeps its
    /// *fractional* station along the link (and any perpendicular
    /// offset); other mounts stay at their absolute position. This is
    /// the legacy `with_distance_cm` semantics for line deployments.
    pub fn with_endpoint_separation(self, d: Meters) -> Self {
        let u = self.axis();
        let old = self.tx_rx_distance().0;
        let rx = self.tx + u * d.0;
        let surface = match self.surface {
            SurfaceMount::Transmissive { position } if old > 0.0 => {
                let rel = position - self.tx;
                let along = rel.dot(u);
                let perp = rel - u * along;
                SurfaceMount::Transmissive {
                    position: self.tx + u * ((along / old) * d.0) + perp,
                }
            }
            other => other,
        };
        Self {
            tx: self.tx,
            rx,
            surface,
        }
    }

    /// Re-standoffs a reflective surface to perpendicular distance `d`
    /// from the endpoint line (keeping its station along the link);
    /// other deployments are unchanged. This is the legacy
    /// `with_distance_cm` semantics for reflective setups, where the
    /// Figure 21/22 x-axis is the surface distance.
    pub fn with_surface_standoff(self, d: Meters) -> Self {
        match self.surface {
            SurfaceMount::Reflective { position } => {
                let u = self.axis();
                let rel = position - self.tx;
                let along = rel.dot(u);
                let side = (self.rx - self.tx).cross(position - self.tx);
                let n = if side < 0.0 { -u.perp() } else { u.perp() };
                Self {
                    surface: SurfaceMount::Reflective {
                        position: self.tx + u * along + n * d.0,
                    },
                    ..self
                }
            }
            _ => self,
        }
    }

    /// Illumination angle at the surface, degrees from boresight
    /// (`None` without a surface).
    ///
    /// * Transmissive: the panel hangs facing the link, so the angle is
    ///   between the Tx→surface ray and the Tx→Rx axis — `0°` for a
    ///   mount on the line.
    /// * Reflective: the panel faces the endpoints' midpoint, so the
    ///   angle is between the surface→Tx ray and that facing normal —
    ///   the half-fold angle `atan(sep / (2·standoff))` for the legacy
    ///   symmetric layout.
    pub fn incidence_deg(&self) -> Option<Degrees> {
        let s = self.surface_position()?;
        let cos = match self.surface {
            SurfaceMount::None => return None,
            SurfaceMount::Transmissive { .. } => cos_between(self.rx - self.tx, s - self.tx),
            SurfaceMount::Reflective { .. } => {
                let foot = (self.tx + self.rx) * 0.5;
                cos_between(foot - s, self.tx - s)
            }
        };
        Some(Degrees(cos.acos().to_degrees()))
    }

    /// Aperture-projection factor a transmissive panel applies to the
    /// wave crossing it: `cos` of the illumination angle, and **exactly
    /// `1.0`** whenever the mount lies on the link line (the collinear
    /// compatibility guarantee). Reflective and surface-less
    /// deployments return `1.0` — the legacy reflective model carries
    /// its obliquity in the fold length itself.
    pub fn aperture_obliquity(&self) -> f64 {
        match self.surface {
            SurfaceMount::Transmissive { position } => {
                cos_between(self.rx - self.tx, position - self.tx)
            }
            _ => 1.0,
        }
    }
}

/// Cosine of the angle between two displacements, clamped to `[−1, 1]`,
/// returning **exactly** `1.0` for same-direction parallel vectors (and
/// for degenerate zero vectors) so collinear layouts stay bit-compatible
/// with the scalar geometry.
fn cos_between(u: Point2, v: Point2) -> f64 {
    if u.cross(v) == 0.0 {
        let d = u.dot(v);
        return if d >= 0.0 { 1.0 } else { -1.0 };
    }
    (u.dot(v) / (u.norm() * v.norm())).clamp(-1.0, 1.0)
}

/// One propagation path: a complex scalar transfer and a polarization
/// transform, plus an optional sinusoidal length modulation (breathing
/// targets).
#[derive(Clone, Debug)]
pub struct Path {
    /// Scalar field transfer (Friis amplitude, propagation phase, and
    /// any reflection losses).
    pub transfer: Complex,
    /// Polarization transform along the path.
    pub jones: JonesMatrix,
    /// Geometric length (for diagnostics).
    pub length: Meters,
    /// Optional sinusoidal path-length modulation: `(amplitude_m, rate_hz,
    /// phase_rad)`. The link layer turns this into a time-varying phase.
    pub modulation: Option<(f64, f64, f64)>,
    /// Debug label.
    pub label: &'static str,
}

impl Path {
    /// Transfer evaluated at time `t`, including length modulation.
    pub fn transfer_at(&self, f: Hertz, t: f64) -> Complex {
        match self.modulation {
            None => self.transfer,
            Some((amp_m, rate_hz, phase)) => {
                let dl = amp_m * (std::f64::consts::TAU * rate_hz * t + phase).sin();
                // Extra path length → extra propagation phase and a tiny
                // amplitude change (negligible; phase dominates).
                self.transfer * Complex::cis(-f.wavenumber() * dl)
            }
        }
    }
}

/// Fraction of the antenna-facing wave re-scattered back toward the
/// surface by the antenna fixture (sets the strength of the
/// surface↔antenna standing-wave term). Empirically small.
pub const ANTENNA_RESCATTER: f64 = 0.35;

/// Enumerates the engineered (deterministic) paths for a deployment,
/// with every length and angle derived from the room coordinates.
///
/// Takes the surface's precomputed [`SurfaceResponse`] at the carrier
/// (one cascade evaluation serves both the transmissive and reflective
/// Jones blocks), so grid sweeps can evaluate the surface once per bias
/// state and rebuild paths cheaply. Environment scattering (multipath)
/// is added separately by [`crate::environment`].
pub fn engineered_paths(
    deployment: Deployment,
    surface: Option<&SurfaceResponse>,
    f: Hertz,
) -> Vec<Path> {
    let mut paths = Vec::with_capacity(2);
    engineered_paths_into(deployment, surface, f, &mut paths);
    paths
}

/// [`engineered_paths`] appending into a caller-owned buffer — the
/// allocation-free variant for probe loops that reuse one scratch `Vec`
/// across thousands of `(device, bias)` evaluations. Does not clear
/// `out`; pushes the same paths in the same order as
/// [`engineered_paths`].
pub fn engineered_paths_into(
    deployment: Deployment,
    surface: Option<&SurfaceResponse>,
    f: Hertz,
    out: &mut Vec<Path>,
) {
    if let Some(surface) = surface {
        debug_assert!(
            surface.frequency().0.to_bits() == f.0.to_bits(),
            "surface response evaluated at {:?} but paths requested at {f:?}",
            surface.frequency()
        );
    }
    let tx_rx = deployment.tx_rx_distance();
    match (deployment.surface, surface) {
        (SurfaceMount::None, _)
        | (SurfaceMount::Transmissive { .. }, None)
        | (SurfaceMount::Reflective { .. }, None) => {
            out.push(Path {
                transfer: field_transfer(f, tx_rx),
                jones: JonesMatrix::identity(),
                length: tx_rx,
                modulation: None,
                label: "direct",
            });
        }
        (SurfaceMount::Transmissive { position }, Some(surface)) => {
            // Tx→surface leg: sets the standing-wave round trip. For an
            // off-axis mount the panel aperture is foreshortened by the
            // illumination cosine (exactly 1 on the link line).
            let d1 = Meters(deployment.tx.distance(position));
            let obliquity = deployment.aperture_obliquity();
            let trans = surface.transmission();
            let refl = surface.reflection();
            // Main through-surface path.
            let main = Path {
                transfer: field_transfer(f, tx_rx) * obliquity,
                jones: trans,
                length: tx_rx,
                modulation: None,
                label: "through-surface",
            };
            // One surface→antenna→surface bounce: the wave reflected from
            // the surface front travels back 2·d1 (picking up the
            // antenna's re-scatter) and crosses again. This is the term
            // that drags the optimum bias with distance.
            let bounce_scalar =
                field_transfer(f, Meters(tx_rx.0 + 2.0 * d1.0)) * ANTENNA_RESCATTER * obliquity;
            let bounce = Path {
                transfer: bounce_scalar,
                jones: trans * refl,
                length: Meters(tx_rx.0 + 2.0 * d1.0),
                modulation: None,
                label: "antenna-surface bounce",
            };
            out.push(main);
            out.push(bounce);
        }
        (SurfaceMount::Reflective { position }, Some(surface)) => {
            // Direct endpoint-to-endpoint path (no surface interaction).
            let direct = Path {
                transfer: field_transfer(f, tx_rx),
                jones: JonesMatrix::identity(),
                length: tx_rx,
                modulation: None,
                label: "direct",
            };
            // Specular fold: Tx → surface → Rx, image theory over the
            // coordinate-derived legs (for the legacy symmetric layout
            // this is exactly 2·√(d² + (sep/2)²)); the reflection
            // applies the surface's S11 Jones block expressed in the
            // incident frame (mirror conjugation: the reflected wave's
            // frame flips handedness, which is the §5.2
            // rotation-cancellation mechanism as seen by the receiver).
            let fold = deployment.tx.distance(position) + position.distance(deployment.rx);
            let mirror = JonesMatrix::mirror_x();
            let refl_in_rx_frame = mirror * surface.reflection();
            let reflected = Path {
                transfer: field_transfer(f, Meters(fold)),
                jones: refl_in_rx_frame,
                length: Meters(fold),
                modulation: None,
                label: "surface-reflection",
            };
            out.push(direct);
            out.push(reflected);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasurface::response::Metasurface;
    use metasurface::stack::BiasState;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn free_deployment_has_single_identity_path() {
        let paths = engineered_paths(Deployment::free(Meters(0.36)), None, F);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].label, "direct");
        assert!((paths[0].jones.0.max_abs_diff(rfmath::Mat2::IDENTITY)) < 1e-12);
    }

    #[test]
    fn transmissive_paths_include_bounce() {
        let surface = Metasurface::llama();
        let paths = engineered_paths(
            Deployment::transmissive_cm(36.0),
            Some(&surface.response(F)),
            F,
        );
        assert_eq!(paths.len(), 2);
        // The bounce is substantially weaker than the main path.
        assert!(paths[1].transfer.abs() < paths[0].transfer.abs());
    }

    #[test]
    fn bounce_length_tracks_surface_position() {
        let surface = Metasurface::llama();
        let response = surface.response(F);
        let near = engineered_paths(
            Deployment::transmissive(Meters(0.6), 0.2),
            Some(&response),
            F,
        );
        let far = engineered_paths(
            Deployment::transmissive(Meters(0.6), 0.8),
            Some(&response),
            F,
        );
        assert!(near[1].length.0 < far[1].length.0);
    }

    #[test]
    fn collinear_lengths_reproduce_the_scalar_formulas_exactly() {
        // The bit-compatibility contract: legacy constructors must
        // derive the pre-coordinate scalar path lengths exactly.
        let surface = Metasurface::llama();
        let response = surface.response(F);
        for (d, frac) in [(0.36, 0.5), (0.6, 0.2), (1.07, 0.83), (3.0, 0.5)] {
            let paths = engineered_paths(
                Deployment::transmissive(Meters(d), frac),
                Some(&response),
                F,
            );
            let d1 = d * frac.clamp(0.05, 0.95);
            assert_eq!(paths[0].length.0.to_bits(), d.to_bits());
            assert_eq!(paths[1].length.0.to_bits(), (d + 2.0 * d1).to_bits());
            // The obliquity of an on-axis mount is exactly 1.
            assert_eq!(
                Deployment::transmissive(Meters(d), frac).aperture_obliquity(),
                1.0
            );
        }
        for (sep, sd) in [(0.70, 0.30), (0.70, 0.36), (1.4, 0.9)] {
            let paths = engineered_paths(
                Deployment::reflective(Meters(sep), Meters(sd)),
                Some(&response),
                F,
            );
            let half = sep / 2.0;
            let fold = 2.0 * (sd * sd + half * half).sqrt();
            assert_eq!(paths[1].length.0.to_bits(), fold.to_bits());
            assert_eq!(paths[0].length.0.to_bits(), sep.to_bits());
        }
    }

    #[test]
    fn reflective_fold_length_is_geometric() {
        let surface = Metasurface::llama();
        let paths = engineered_paths(
            Deployment::reflective_cm(30.0),
            Some(&surface.response(F)),
            F,
        );
        let expected = 2.0 * (0.30f64 * 0.30 + 0.35 * 0.35).sqrt();
        assert!((paths[1].length.0 - expected).abs() < 1e-12);
    }

    #[test]
    fn surface_fraction_moves_the_panel_not_the_endpoints() {
        let d = Deployment::transmissive_cm(60.0).with_surface_fraction(0.25);
        assert_eq!(d.tx_rx_distance(), Meters(0.60));
        let s = d.surface_position().expect("transmissive keeps its mount");
        assert!((s.x - 0.15).abs() < 1e-12 && s.y == 0.0);
        // Fractions are clamped into the physical mount range.
        let clamped = Deployment::transmissive_cm(60.0).with_surface_fraction(2.0);
        let s = clamped.surface_position().unwrap();
        assert!((s.x - 0.57).abs() < 1e-12, "clamped to 0.95 of the line");
        // Free deployments have no surface to move.
        let free = Deployment::free(Meters(1.0)).with_surface_fraction(0.3);
        assert_eq!(free, Deployment::free(Meters(1.0)));
    }

    #[test]
    fn without_surface_strips_surface() {
        let d = Deployment::reflective_cm(30.0).without_surface();
        assert_eq!(d.surface, SurfaceMount::None);
        assert_eq!(d.tx_rx_distance(), Meters(0.70));
    }

    #[test]
    fn off_axis_mount_foreshortens_the_aperture() {
        // Hang the panel 30° off the link line: the obliquity drops to
        // cos(30°) and the through path weakens accordingly.
        let on_axis = Deployment::transmissive_cm(100.0);
        let off_axis = on_axis.with_surface_at(Point2::new(0.5, 0.5 / 3f64.sqrt()));
        let angle = off_axis.incidence_deg().unwrap().0;
        assert!((angle - 30.0).abs() < 1e-6, "angle = {angle}");
        assert!((off_axis.aperture_obliquity() - (30f64.to_radians()).cos()).abs() < 1e-9);
        let surface = Metasurface::llama();
        let response = surface.response(F);
        let p_on = engineered_paths(on_axis, Some(&response), F);
        let p_off = engineered_paths(off_axis, Some(&response), F);
        assert!(p_off[0].transfer.abs() < p_on[0].transfer.abs());
        // And the bounce leg is longer (the mount is farther from Tx).
        assert!(p_off[1].length.0 > p_on[1].length.0);
    }

    #[test]
    fn incidence_is_boresight_on_the_line_and_half_fold_reflectively() {
        let t = Deployment::transmissive_cm(36.0);
        assert_eq!(t.incidence_deg().unwrap().0, 0.0);
        let r = Deployment::reflective(Meters(0.70), Meters(0.35));
        // Half-fold angle: atan(sep / (2·standoff)) = atan(1) = 45°.
        assert!((r.incidence_deg().unwrap().0 - 45.0).abs() < 1e-9);
        assert_eq!(Deployment::free(Meters(1.0)).incidence_deg(), None);
    }

    #[test]
    fn endpoint_separation_rescale_keeps_the_surface_fraction() {
        let d = Deployment::transmissive(Meters(0.6), 0.25).with_endpoint_separation(Meters(1.2));
        assert_eq!(d.tx_rx_distance().0.to_bits(), 1.2f64.to_bits());
        let s = d.surface_position().unwrap();
        assert!((s.x - 0.3).abs() < 1e-12, "fraction preserved: {}", s.x);
    }

    #[test]
    fn surface_standoff_roundtrips() {
        let d = Deployment::reflective_cm(30.0).with_surface_standoff(Meters(0.48));
        assert!((d.surface_standoff().unwrap().0 - 0.48).abs() < 1e-12);
        assert_eq!(d.tx_rx_distance(), Meters(0.70));
        // The mount stays on its original side of the link line.
        assert!(d.surface_position().unwrap().y > 0.0);
    }

    #[test]
    fn reflective_bias_changes_reflection_less_than_transmission() {
        // §5.2: voltage dependence is much flatter reflectively.
        // What matters is the power a *mismatched receiver* collects:
        // project the path output onto the orthogonal receive state.
        let probe = rfmath::jones::JonesVector::vertical();
        let rx = rfmath::jones::JonesVector::horizontal();
        let spread = |dep: Deployment, idx: usize| {
            let mut surface = Metasurface::llama();
            let mut powers = Vec::new();
            for (vx, vy) in [(2.0, 2.0), (2.0, 15.0), (15.0, 2.0)] {
                surface.set_bias(BiasState::new(vx, vy));
                let paths = engineered_paths(dep, Some(&surface.response(F)), F);
                let out = paths[idx].jones.apply(probe);
                let coupled = rx.0.dot(out.0).norm_sqr();
                powers.push(coupled * paths[idx].transfer.norm_sqr());
            }
            let hi = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min);
            hi / lo.max(1e-30)
        };
        let trans_spread = spread(Deployment::transmissive_cm(36.0), 0);
        let refl_spread = spread(Deployment::reflective_cm(36.0), 1);
        assert!(
            trans_spread > refl_spread,
            "transmissive spread {trans_spread:.2}× vs reflective {refl_spread:.2}×"
        );
    }

    #[test]
    fn modulated_path_phase_oscillates() {
        let mut p = engineered_paths(Deployment::free(Meters(2.0)), None, F)
            .pop()
            .unwrap();
        p.modulation = Some((0.005, 0.25, 0.0));
        let t0 = p.transfer_at(F, 0.0);
        let t1 = p.transfer_at(F, 1.0); // quarter period: max displacement
        assert!((t0 - t1).abs() > 1e-6, "breathing must modulate the phase");
        // Magnitude is untouched.
        assert!((t0.abs() - t1.abs()).abs() < 1e-12);
    }
}
