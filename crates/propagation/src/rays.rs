//! Deployment geometry and propagation paths.
//!
//! Mirrors the paper's two experimental setups (Figure 14):
//!
//! * **Transmissive** — the surface sits between the endpoints; the
//!   dominant path crosses it and picks up the surface's transmission
//!   Jones matrix. A weak antenna↔surface multi-bounce term makes the
//!   optimal bias *distance-dependent*, which is why the paper steps
//!   Tx–Rx spacing in half-wavelength increments (Figure 15).
//! * **Reflective** — both endpoints face the surface from the same
//!   side; the dominant engineered path reflects specularly off the
//!   surface front (image theory over the full fold length), while a
//!   weak direct endpoint-to-endpoint path persists.
//!
//! Each path carries a complex scalar transfer (Friis amplitude + phase)
//! and a Jones matrix describing what it does to polarization. The link
//! layer sums path field contributions coherently.

use metasurface::response::SurfaceResponse;
use rfmath::complex::Complex;
use rfmath::jones::JonesMatrix;
use rfmath::units::{Hertz, Meters};

use crate::friis::field_transfer;

/// Physical placement of endpoints and surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Deployment {
    /// Endpoints facing each other with the surface between them
    /// (Figure 14, left). `surface_fraction` places the surface along
    /// the line (0 = at the transmitter, 1 = at the receiver).
    Transmissive {
        /// Total Tx–Rx separation.
        tx_rx: Meters,
        /// Fractional surface position along the link line.
        surface_fraction: f64,
    },
    /// Endpoints side by side facing the surface (Figure 14, right).
    Reflective {
        /// Lateral Tx–Rx separation (the paper uses 70 cm).
        tx_rx: Meters,
        /// Perpendicular distance from the endpoints' line to the
        /// surface.
        surface_distance: Meters,
    },
    /// No surface deployed (baseline measurements).
    Free {
        /// Tx–Rx separation.
        tx_rx: Meters,
    },
}

impl Deployment {
    /// The paper's default transmissive setup with the surface midway.
    pub fn transmissive_cm(tx_rx_cm: f64) -> Self {
        Deployment::Transmissive {
            tx_rx: Meters::from_cm(tx_rx_cm),
            surface_fraction: 0.5,
        }
    }

    /// The paper's reflective setup: 70 cm endpoint separation.
    pub fn reflective_cm(surface_distance_cm: f64) -> Self {
        Deployment::Reflective {
            tx_rx: Meters::from_cm(70.0),
            surface_distance: Meters::from_cm(surface_distance_cm),
        }
    }

    /// Baseline (no surface) at the same endpoint spacing.
    pub fn without_surface(self) -> Self {
        match self {
            Deployment::Transmissive { tx_rx, .. } => Deployment::Free { tx_rx },
            Deployment::Reflective { tx_rx, .. } => Deployment::Free { tx_rx },
            free => free,
        }
    }

    /// Re-mounts the surface at a different position while keeping the
    /// endpoints fixed — the per-panel geometry adjustment of a panel
    /// array (each panel hangs at its own spot along the link).
    /// Transmissive deployments move the surface to `fraction` of the
    /// link line; reflective ones scale the standoff by `fraction` of
    /// the endpoint separation; `Free` (no surface) is unchanged.
    pub fn with_surface_fraction(self, fraction: f64) -> Self {
        match self {
            Deployment::Transmissive { tx_rx, .. } => Deployment::Transmissive {
                tx_rx,
                surface_fraction: fraction.clamp(0.05, 0.95),
            },
            Deployment::Reflective { tx_rx, .. } => Deployment::Reflective {
                tx_rx,
                surface_distance: Meters(tx_rx.0 * fraction.clamp(0.05, 0.95)),
            },
            free => free,
        }
    }

    /// Endpoint separation along the direct line.
    pub fn tx_rx_distance(&self) -> Meters {
        match *self {
            Deployment::Transmissive { tx_rx, .. } => tx_rx,
            Deployment::Reflective { tx_rx, .. } => tx_rx,
            Deployment::Free { tx_rx } => tx_rx,
        }
    }
}

/// One propagation path: a complex scalar transfer and a polarization
/// transform, plus an optional sinusoidal length modulation (breathing
/// targets).
#[derive(Clone, Debug)]
pub struct Path {
    /// Scalar field transfer (Friis amplitude, propagation phase, and
    /// any reflection losses).
    pub transfer: Complex,
    /// Polarization transform along the path.
    pub jones: JonesMatrix,
    /// Geometric length (for diagnostics).
    pub length: Meters,
    /// Optional sinusoidal path-length modulation: `(amplitude_m, rate_hz,
    /// phase_rad)`. The link layer turns this into a time-varying phase.
    pub modulation: Option<(f64, f64, f64)>,
    /// Debug label.
    pub label: &'static str,
}

impl Path {
    /// Transfer evaluated at time `t`, including length modulation.
    pub fn transfer_at(&self, f: Hertz, t: f64) -> Complex {
        match self.modulation {
            None => self.transfer,
            Some((amp_m, rate_hz, phase)) => {
                let dl = amp_m * (std::f64::consts::TAU * rate_hz * t + phase).sin();
                // Extra path length → extra propagation phase and a tiny
                // amplitude change (negligible; phase dominates).
                self.transfer * Complex::cis(-f.wavenumber() * dl)
            }
        }
    }
}

/// Fraction of the antenna-facing wave re-scattered back toward the
/// surface by the antenna fixture (sets the strength of the
/// surface↔antenna standing-wave term). Empirically small.
pub const ANTENNA_RESCATTER: f64 = 0.35;

/// Enumerates the engineered (deterministic) paths for a deployment.
///
/// Takes the surface's precomputed [`SurfaceResponse`] at the carrier
/// (one cascade evaluation serves both the transmissive and reflective
/// Jones blocks), so grid sweeps can evaluate the surface once per bias
/// state and rebuild paths cheaply. Environment scattering (multipath)
/// is added separately by [`crate::environment`].
pub fn engineered_paths(
    deployment: Deployment,
    surface: Option<&SurfaceResponse>,
    f: Hertz,
) -> Vec<Path> {
    if let Some(surface) = surface {
        debug_assert!(
            surface.frequency().0.to_bits() == f.0.to_bits(),
            "surface response evaluated at {:?} but paths requested at {f:?}",
            surface.frequency()
        );
    }
    match (deployment, surface) {
        (Deployment::Free { tx_rx }, _) | (Deployment::Transmissive { tx_rx, .. }, None) => {
            vec![Path {
                transfer: field_transfer(f, tx_rx),
                jones: JonesMatrix::identity(),
                length: tx_rx,
                modulation: None,
                label: "direct",
            }]
        }
        (
            Deployment::Transmissive {
                tx_rx,
                surface_fraction,
            },
            Some(surface),
        ) => {
            let d1 = Meters(tx_rx.0 * surface_fraction.clamp(0.05, 0.95));
            let trans = surface.transmission();
            let refl = surface.reflection();
            // Main through-surface path.
            let main = Path {
                transfer: field_transfer(f, tx_rx),
                jones: trans,
                length: tx_rx,
                modulation: None,
                label: "through-surface",
            };
            // One surface→antenna→surface bounce: the wave reflected from
            // the surface front travels back 2·d1 (picking up the
            // antenna's re-scatter) and crosses again. This is the term
            // that drags the optimum bias with distance.
            let bounce_scalar = field_transfer(f, Meters(tx_rx.0 + 2.0 * d1.0)) * ANTENNA_RESCATTER;
            let bounce = Path {
                transfer: bounce_scalar,
                jones: trans * refl,
                length: Meters(tx_rx.0 + 2.0 * d1.0),
                modulation: None,
                label: "antenna-surface bounce",
            };
            vec![main, bounce]
        }
        (Deployment::Reflective { tx_rx, .. }, None) => {
            vec![Path {
                transfer: field_transfer(f, tx_rx),
                jones: JonesMatrix::identity(),
                length: tx_rx,
                modulation: None,
                label: "direct",
            }]
        }
        (
            Deployment::Reflective {
                tx_rx,
                surface_distance,
            },
            Some(surface),
        ) => {
            // Direct endpoint-to-endpoint path (no surface interaction).
            let direct = Path {
                transfer: field_transfer(f, tx_rx),
                jones: JonesMatrix::identity(),
                length: tx_rx,
                modulation: None,
                label: "direct",
            };
            // Specular fold: Tx → surface → Rx. Image theory: total fold
            // length 2·√(d² + (sep/2)²); the reflection applies the
            // surface's S11 Jones block expressed in the incident frame
            // (mirror conjugation: the reflected wave's frame flips
            // handedness, which is the §5.2 rotation-cancellation
            // mechanism as seen by the receiver).
            let half = tx_rx.0 / 2.0;
            let fold = 2.0 * (surface_distance.0 * surface_distance.0 + half * half).sqrt();
            let mirror = JonesMatrix::mirror_x();
            let refl_in_rx_frame = mirror * surface.reflection();
            let reflected = Path {
                transfer: field_transfer(f, Meters(fold)),
                jones: refl_in_rx_frame,
                length: Meters(fold),
                modulation: None,
                label: "surface-reflection",
            };
            vec![direct, reflected]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasurface::response::Metasurface;
    use metasurface::stack::BiasState;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn free_deployment_has_single_identity_path() {
        let paths = engineered_paths(
            Deployment::Free {
                tx_rx: Meters(0.36),
            },
            None,
            F,
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].label, "direct");
        assert!((paths[0].jones.0.max_abs_diff(rfmath::Mat2::IDENTITY)) < 1e-12);
    }

    #[test]
    fn transmissive_paths_include_bounce() {
        let surface = Metasurface::llama();
        let paths = engineered_paths(
            Deployment::transmissive_cm(36.0),
            Some(&surface.response(F)),
            F,
        );
        assert_eq!(paths.len(), 2);
        // The bounce is substantially weaker than the main path.
        assert!(paths[1].transfer.abs() < paths[0].transfer.abs());
    }

    #[test]
    fn bounce_length_tracks_surface_position() {
        let surface = Metasurface::llama();
        let response = surface.response(F);
        let near = engineered_paths(
            Deployment::Transmissive {
                tx_rx: Meters(0.6),
                surface_fraction: 0.2,
            },
            Some(&response),
            F,
        );
        let far = engineered_paths(
            Deployment::Transmissive {
                tx_rx: Meters(0.6),
                surface_fraction: 0.8,
            },
            Some(&response),
            F,
        );
        assert!(near[1].length.0 < far[1].length.0);
    }

    #[test]
    fn reflective_fold_length_is_geometric() {
        let surface = Metasurface::llama();
        let paths = engineered_paths(
            Deployment::reflective_cm(30.0),
            Some(&surface.response(F)),
            F,
        );
        let expected = 2.0 * (0.30f64 * 0.30 + 0.35 * 0.35).sqrt();
        assert!((paths[1].length.0 - expected).abs() < 1e-12);
    }

    #[test]
    fn surface_fraction_moves_the_panel_not_the_endpoints() {
        let d = Deployment::transmissive_cm(60.0).with_surface_fraction(0.25);
        assert_eq!(d.tx_rx_distance(), Meters(0.60));
        match d {
            Deployment::Transmissive {
                surface_fraction, ..
            } => assert_eq!(surface_fraction, 0.25),
            other => panic!("unexpected deployment {other:?}"),
        }
        // Fractions are clamped into the physical mount range.
        let clamped = Deployment::transmissive_cm(60.0).with_surface_fraction(2.0);
        match clamped {
            Deployment::Transmissive {
                surface_fraction, ..
            } => assert_eq!(surface_fraction, 0.95),
            other => panic!("unexpected deployment {other:?}"),
        }
        // Free deployments have no surface to move.
        let free = Deployment::Free { tx_rx: Meters(1.0) }.with_surface_fraction(0.3);
        assert_eq!(free, Deployment::Free { tx_rx: Meters(1.0) });
    }

    #[test]
    fn without_surface_strips_surface() {
        let d = Deployment::reflective_cm(30.0).without_surface();
        assert_eq!(
            d,
            Deployment::Free {
                tx_rx: Meters(0.70)
            }
        );
    }

    #[test]
    fn reflective_bias_changes_reflection_less_than_transmission() {
        // §5.2: voltage dependence is much flatter reflectively.
        // What matters is the power a *mismatched receiver* collects:
        // project the path output onto the orthogonal receive state.
        let probe = rfmath::jones::JonesVector::vertical();
        let rx = rfmath::jones::JonesVector::horizontal();
        let spread = |dep: Deployment, idx: usize| {
            let mut surface = Metasurface::llama();
            let mut powers = Vec::new();
            for (vx, vy) in [(2.0, 2.0), (2.0, 15.0), (15.0, 2.0)] {
                surface.set_bias(BiasState::new(vx, vy));
                let paths = engineered_paths(dep, Some(&surface.response(F)), F);
                let out = paths[idx].jones.apply(probe);
                let coupled = rx.0.dot(out.0).norm_sqr();
                powers.push(coupled * paths[idx].transfer.norm_sqr());
            }
            let hi = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min);
            hi / lo.max(1e-30)
        };
        let trans_spread = spread(Deployment::transmissive_cm(36.0), 0);
        let refl_spread = spread(Deployment::reflective_cm(36.0), 1);
        assert!(
            trans_spread > refl_spread,
            "transmissive spread {trans_spread:.2}× vs reflective {refl_spread:.2}×"
        );
    }

    #[test]
    fn modulated_path_phase_oscillates() {
        let mut p = engineered_paths(Deployment::Free { tx_rx: Meters(2.0) }, None, F)
            .pop()
            .unwrap();
        p.modulation = Some((0.005, 0.25, 0.0));
        let t0 = p.transfer_at(F, 0.0);
        let t1 = p.transfer_at(F, 1.0); // quarter period: max displacement
        assert!((t0 - t1).abs() > 1e-6, "breathing must modulate the phase");
        // Magnitude is untouched.
        assert!((t0.abs() - t1.abs()).abs() < 1e-12);
    }
}
