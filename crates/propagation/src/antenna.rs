//! Antenna models.
//!
//! Every endpoint in the paper carries a linearly polarized antenna whose
//! *orientation* is the crux of the problem: rotating a dipole rotates
//! its polarization plane, and a 90° relative rotation between endpoints
//! costs 10–15 dB (Figure 2). Antennas here have a gain, a polarization
//! state derived from their roll orientation, and a finite cross-pol
//! discrimination (XPD) — real antennas leak a little energy into the
//! orthogonal polarization, which is what keeps a "fully mismatched" link
//! measurable rather than infinitely attenuated.

use rfmath::c64;
use rfmath::jones::JonesVector;
use rfmath::matrix::Vec2;
use rfmath::units::{Db, Degrees};

/// Radiation pattern class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Omni-directional in azimuth (dipole-like).
    Omni,
    /// Directional with the given half-power beamwidth.
    Directional {
        /// −3 dB beamwidth in degrees.
        beamwidth_deg: f64,
    },
}

/// An antenna model: gain, pattern, and polarization quality.
#[derive(Clone, Debug, PartialEq)]
pub struct Antenna {
    /// Display name.
    pub name: &'static str,
    /// Boresight gain over isotropic, dBi.
    pub gain_dbi: f64,
    /// Cross-polarization discrimination: how far below the co-polarized
    /// component the orthogonal leakage sits, dB (larger = purer).
    pub xpd_db: f64,
    /// Radiation pattern.
    pub pattern: Pattern,
}

impl Antenna {
    /// The Alfa APA-M25 directional panel used in the paper's controlled
    /// experiments (≈10 dBi).
    pub fn directional_panel() -> Self {
        Self {
            name: "APA-M25 directional panel",
            gain_dbi: 10.0,
            xpd_db: 22.0,
            pattern: Pattern::Directional {
                beamwidth_deg: 60.0,
            },
        }
    }

    /// The Highfine 6 dBi indoor omni used in the omni experiments.
    pub fn omni_6dbi() -> Self {
        Self {
            name: "Highfine 6 dBi omni",
            gain_dbi: 6.0,
            xpd_db: 18.0,
            pattern: Pattern::Omni,
        }
    }

    /// A Wi-Fi AP's external dipole (Netgear N300 class).
    pub fn ap_dipole() -> Self {
        Self {
            name: "AP dipole",
            gain_dbi: 3.0,
            xpd_db: 18.0,
            pattern: Pattern::Omni,
        }
    }

    /// The ESP8266 module's PCB trace antenna: low gain, poor
    /// polarization purity.
    pub fn esp8266_pcb() -> Self {
        Self {
            name: "ESP8266 PCB antenna",
            gain_dbi: 1.5,
            xpd_db: 15.0,
            pattern: Pattern::Omni,
        }
    }

    /// A BLE wearable's chip antenna (MetaMotionR class).
    pub fn wearable_chip() -> Self {
        Self {
            name: "wearable chip antenna",
            gain_dbi: 0.0,
            xpd_db: 14.0,
            pattern: Pattern::Omni,
        }
    }

    /// Raspberry Pi 3 on-board antenna.
    pub fn rpi_onboard() -> Self {
        Self {
            name: "RPi3 on-board antenna",
            gain_dbi: 1.0,
            xpd_db: 15.0,
            pattern: Pattern::Omni,
        }
    }

    /// Boresight gain as a linear power ratio.
    pub fn gain_linear(&self) -> f64 {
        Db(self.gain_dbi).to_linear()
    }

    /// Gain toward a direction `off_boresight_deg` away from boresight,
    /// linear. Omni antennas are flat; directional ones follow a
    /// Gaussian-beam roll-off with a −20 dB floor (side lobes).
    pub fn gain_toward(&self, off_boresight_deg: f64) -> f64 {
        match self.pattern {
            Pattern::Omni => self.gain_linear(),
            Pattern::Directional { beamwidth_deg } => {
                // Gaussian main lobe: −3 dB at ±beamwidth/2.
                let x = off_boresight_deg / (beamwidth_deg / 2.0);
                let rolloff_db = -3.0 * x * x;
                let floor_db = self.gain_dbi - 20.0;
                Db((self.gain_dbi + rolloff_db).max(floor_db)).to_linear()
            }
        }
    }
}

/// An antenna mounted at a roll orientation (rotation of the element
/// about its boresight axis, which rotates the polarization plane).
#[derive(Clone, Debug, PartialEq)]
pub struct OrientedAntenna {
    /// The antenna hardware.
    pub antenna: Antenna,
    /// Roll orientation: 0° = horizontal (X) polarization.
    pub orientation: Degrees,
}

impl OrientedAntenna {
    /// Mounts an antenna at the given roll orientation.
    pub fn new(antenna: Antenna, orientation: Degrees) -> Self {
        Self {
            antenna,
            orientation,
        }
    }

    /// Horizontal mounting shorthand.
    pub fn horizontal(antenna: Antenna) -> Self {
        Self::new(antenna, Degrees(0.0))
    }

    /// Vertical mounting shorthand.
    pub fn vertical(antenna: Antenna) -> Self {
        Self::new(antenna, Degrees(90.0))
    }

    /// Effective polarization state: the ideal linear state at the mount
    /// orientation plus orthogonal leakage at the antenna's XPD level
    /// (in quadrature, the typical leakage character), renormalized.
    pub fn polarization(&self) -> JonesVector {
        let theta = self.orientation.to_radians().0;
        let (s, c) = theta.sin_cos();
        let leak = Db(-self.antenna.xpd_db).to_amplitude();
        // Co-polarized (c, s) plus j·leak·(−s, c).
        let v = Vec2::new(c64(c, -leak * s), c64(s, leak * c));
        JonesVector(v)
            .normalized()
            .expect("polarization state is non-zero")
    }

    /// Rotates the mount by `delta` degrees (turntable actuation).
    pub fn rotated_by(&self, delta: Degrees) -> Self {
        Self {
            antenna: self.antenna.clone(),
            orientation: Degrees(self.orientation.0 + delta.0),
        }
    }

    /// Relative polarization misalignment with another mount, `[0°, 90°]`.
    pub fn misalignment_with(&self, other: &OrientedAntenna) -> Degrees {
        let d = (self.orientation.0 - other.orientation.0).rem_euclid(180.0);
        Degrees(d.min(180.0 - d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarization_follows_orientation() {
        let a = OrientedAntenna::new(Antenna::directional_panel(), Degrees(30.0));
        let ori = a.polarization().orientation().to_degrees().0;
        assert!((ori - 30.0).abs() < 1.0, "orientation = {ori}");
    }

    #[test]
    fn orthogonal_mounts_leak_at_xpd_level() {
        let h = OrientedAntenna::horizontal(Antenna::directional_panel());
        let v = OrientedAntenna::vertical(Antenna::directional_panel());
        let plf = h.polarization().polarization_loss_factor(v.polarization());
        let plf_db = 10.0 * plf.log10();
        // Two antennas at 22 dB XPD leak ≈ 2× (−22 dB) power ≈ −19 dB.
        assert!(
            (-26.0..=-14.0).contains(&plf_db),
            "cross-pol floor = {plf_db:.1} dB"
        );
    }

    #[test]
    fn matched_mounts_couple_fully() {
        let a = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(25.0));
        let b = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(25.0));
        let plf = a.polarization().polarization_loss_factor(b.polarization());
        assert!(plf > 0.99, "PLF = {plf}");
    }

    #[test]
    fn cheap_antennas_have_worse_purity() {
        let esp = OrientedAntenna::horizontal(Antenna::esp8266_pcb());
        let panel = OrientedAntenna::horizontal(Antenna::directional_panel());
        let esp_v = esp.polarization().polarization_loss_factor(
            OrientedAntenna::vertical(Antenna::esp8266_pcb()).polarization(),
        );
        let panel_v = panel.polarization().polarization_loss_factor(
            OrientedAntenna::vertical(Antenna::directional_panel()).polarization(),
        );
        assert!(
            esp_v > panel_v,
            "cheap antenna leaks more: {esp_v} vs {panel_v}"
        );
    }

    #[test]
    fn misalignment_wraps_mod_180() {
        let a = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(10.0));
        let b = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(190.0));
        assert!(a.misalignment_with(&b).0 < 1e-9);
        let c = OrientedAntenna::new(Antenna::omni_6dbi(), Degrees(100.0));
        assert!((a.misalignment_with(&c).0 - 90.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_by_accumulates() {
        let a = OrientedAntenna::horizontal(Antenna::omni_6dbi());
        let b = a.rotated_by(Degrees(45.0)).rotated_by(Degrees(45.0));
        assert!((b.orientation.0 - 90.0).abs() < 1e-12);
    }

    #[test]
    fn directional_gain_rolls_off() {
        let d = Antenna::directional_panel();
        let g0 = d.gain_toward(0.0);
        let g30 = d.gain_toward(30.0);
        let g90 = d.gain_toward(90.0);
        assert!((10.0 * g0.log10() - 10.0).abs() < 1e-9);
        // −3 dB at half the beamwidth.
        assert!((10.0 * (g30 / g0).log10() + 3.0).abs() < 0.1);
        // Far out: clamped at the −20 dB floor.
        assert!((10.0 * g90.log10() - (-10.0)).abs() < 0.5);
    }

    #[test]
    fn omni_gain_is_flat() {
        let o = Antenna::omni_6dbi();
        assert_eq!(o.gain_toward(0.0), o.gain_toward(77.0));
    }
}
