//! Receiver noise: thermal floor, noise figure, and SNR.

use rfmath::units::{thermal_noise_dbm, Db, Dbm, Hertz, Watts};

/// A receiver's noise description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Noise-equivalent bandwidth.
    pub bandwidth: Hertz,
}

impl NoiseModel {
    /// A USRP N210 + UBX-40 class front end over a 1 MHz sample band.
    pub fn usrp_1mhz() -> Self {
        Self {
            noise_figure_db: 6.0,
            bandwidth: Hertz::from_mhz(1.0),
        }
    }

    /// A Wi-Fi receiver over a 20 MHz channel.
    pub fn wifi_20mhz() -> Self {
        Self {
            noise_figure_db: 7.0,
            bandwidth: Hertz::from_mhz(20.0),
        }
    }

    /// A BLE receiver over a 2 MHz channel.
    pub fn ble_2mhz() -> Self {
        Self {
            noise_figure_db: 9.0,
            bandwidth: Hertz::from_mhz(2.0),
        }
    }

    /// Total noise power referred to the antenna port, dBm:
    /// `kTB + NF`.
    pub fn noise_floor_dbm(&self) -> Dbm {
        thermal_noise_dbm(self.bandwidth).gain(Db(self.noise_figure_db))
    }

    /// Noise power in watts.
    pub fn noise_watts(&self) -> Watts {
        self.noise_floor_dbm().to_watts()
    }

    /// SNR for a given received signal power, dB.
    pub fn snr_db(&self, signal: Dbm) -> Db {
        signal.minus(self.noise_floor_dbm())
    }

    /// Linear SNR for a given received power.
    pub fn snr_linear(&self, signal: Dbm) -> f64 {
        self.snr_db(signal).to_linear().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usrp_noise_floor() {
        // kTB(1 MHz) ≈ −114 dBm; +6 dB NF ≈ −108 dBm.
        let n = NoiseModel::usrp_1mhz().noise_floor_dbm();
        assert!((n.0 + 108.0).abs() < 0.3, "floor = {n}");
    }

    #[test]
    fn wider_band_raises_floor() {
        let narrow = NoiseModel::usrp_1mhz().noise_floor_dbm();
        let wide = NoiseModel::wifi_20mhz().noise_floor_dbm();
        assert!(wide.0 > narrow.0 + 10.0);
    }

    #[test]
    fn snr_is_signal_minus_floor() {
        let n = NoiseModel::usrp_1mhz();
        let snr = n.snr_db(Dbm(-78.0));
        assert!((snr.0 - (n.noise_floor_dbm().0.abs() - 78.0)).abs() < 1e-9);
        assert!(n.snr_linear(Dbm(-200.0)) < 1e-6);
    }
}
