//! # propagation — the radio environment around the surface
//!
//! Everything between the endpoint antennas: antenna models with finite
//! cross-polarization purity, Friis free-space budgets, the paper's two
//! deployment geometries (through-surface and surface-reflective,
//! Figure 14), anechoic and laboratory environments, receiver noise,
//! Shannon capacity, and the USRP-style complex-baseband measurement
//! chain.
//!
//! The core abstraction is the [`link::Link`]: a coherent sum of
//! propagation [`rays::Path`]s, each carrying a complex transfer and a
//! Jones polarization transform. The metasurface enters as just another
//! element along a path — exactly how the physical world composes.
//!
//! ```
//! use propagation::antenna::{Antenna, OrientedAntenna};
//! use propagation::environment::Environment;
//! use propagation::link::Link;
//! use propagation::rays::Deployment;
//! use rfmath::units::{Degrees, Hertz, Watts};
//!
//! // The paper's mismatched USRP link, 36 cm apart, in absorber.
//! let mismatched = Link {
//!     tx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0)),
//!     rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(0.0)),
//!     frequency: Hertz::from_ghz(2.44),
//!     tx_power: Watts::from_mw(50.0),
//!     deployment: Deployment::transmissive_cm(36.0),
//!     environment: Environment::anechoic(),
//!     extra_paths: Vec::new(),
//!     tuning: Default::default(),
//! };
//! let mut matched = mismatched.clone();
//! matched.rx = OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0));
//!
//! // Polarization mismatch costs 10-20 dB (the Figure 2 effect).
//! let gap = matched.received_dbm(None).0 - mismatched.received_dbm(None).0;
//! assert!(gap > 10.0, "mismatch penalty = {gap:.1} dB");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod antenna;
pub mod capacity;
pub mod coupling;
pub mod environment;
pub mod friis;
pub mod link;
pub mod noise;
pub mod rays;
pub mod signal;

pub use antenna::{Antenna, OrientedAntenna, Pattern};
pub use coupling::{CouplingConfig, MultiSurfaceField};
pub use environment::Environment;
pub use link::{Link, LinkTuning, PreparedLink};
pub use noise::NoiseModel;
pub use rays::{Deployment, Path};
pub use signal::{rssi_reading, Capture};
