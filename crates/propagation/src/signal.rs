//! Complex-baseband signals: the USRP experiment's data plane.
//!
//! The paper's controlled experiments transmit a 500 kHz cosine and
//! sample the receiver at 1 MHz; received power is estimated from the
//! samples. This module provides tone generation, AWGN corruption at a
//! given noise floor, and tone-power extraction with a Goertzel
//! single-bin DFT — the same measurement chain GNU Radio provides the
//! authors.

use rand::Rng;
use rfmath::complex::{c64, Complex};
use rfmath::units::{Dbm, Hertz, Seconds, Watts};

/// A sampled complex-baseband capture.
#[derive(Clone, Debug)]
pub struct Capture {
    /// Sample rate.
    pub sample_rate: Hertz,
    /// IQ samples (√W scaling: |s|² is instantaneous power in watts).
    pub samples: Vec<Complex>,
}

impl Capture {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the capture holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Capture duration.
    pub fn duration(&self) -> Seconds {
        Seconds(self.samples.len() as f64 / self.sample_rate.0)
    }

    /// Mean power over the capture, watts.
    pub fn mean_power(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts(0.0);
        }
        Watts(self.samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / self.samples.len() as f64)
    }

    /// Mean power in dBm.
    pub fn mean_power_dbm(&self) -> Dbm {
        self.mean_power().to_dbm()
    }

    /// Single-bin DFT power at `tone` (Goertzel): the tone's power in
    /// watts, robust against broadband noise.
    pub fn tone_power(&self, tone: Hertz) -> Watts {
        if self.samples.is_empty() {
            return Watts(0.0);
        }
        let n = self.samples.len() as f64;
        let w = std::f64::consts::TAU * tone.0 / self.sample_rate.0;
        let mut acc = Complex::ZERO;
        for (k, s) in self.samples.iter().enumerate() {
            acc += *s * Complex::cis(-w * k as f64);
        }
        // Normalized DFT bin: |X/N|² estimates the tone power.
        Watts((acc / n).norm_sqr())
    }

    /// Tone power in dBm.
    pub fn tone_power_dbm(&self, tone: Hertz) -> Dbm {
        self.tone_power(tone).to_dbm()
    }
}

/// Generates a complex tone capture of amplitude `amplitude_w_sqrt`
/// (√W; tone power is its square), frequency `tone`, with optional
/// initial phase.
pub fn tone(
    sample_rate: Hertz,
    tone_freq: Hertz,
    amplitude_sqrt_w: f64,
    phase: f64,
    samples: usize,
) -> Capture {
    let w = std::f64::consts::TAU * tone_freq.0 / sample_rate.0;
    Capture {
        sample_rate,
        samples: (0..samples)
            .map(|k| Complex::from_polar(amplitude_sqrt_w, w * k as f64 + phase))
            .collect(),
    }
}

/// Adds circularly symmetric white Gaussian noise of total power
/// `noise_power` to a capture (in place), using the caller's RNG.
pub fn add_awgn<R: Rng + ?Sized>(capture: &mut Capture, noise_power: Watts, rng: &mut R) {
    for s in &mut capture.samples {
        *s += rfmath::rng::complex_gaussian(rng, noise_power.0);
    }
}

/// Builds the received capture for a link amplitude: a tone at
/// `tone_freq` whose complex amplitude is the link's receive-port
/// amplitude, plus AWGN at the receiver's noise floor.
pub fn received_tone<R: Rng + ?Sized>(
    rx_amplitude: Complex,
    sample_rate: Hertz,
    tone_freq: Hertz,
    noise_power: Watts,
    samples: usize,
    rng: &mut R,
) -> Capture {
    let mut cap = tone(
        sample_rate,
        tone_freq,
        rx_amplitude.abs(),
        rx_amplitude.arg(),
        samples,
    );
    add_awgn(&mut cap, noise_power, rng);
    cap
}

/// A single-shot RSSI-style power reading: the receiver reports
/// `|signal + noise|²` where the noise draw has the given *effective*
/// floor power (thermal + implementation + co-channel interference).
/// This is the measurement real IoT chips hand the controller — unlike
/// the Goertzel chain it does not integrate the noise away, so readings
/// of weak signals fluctuate by several dB. That fluctuation is the
/// mechanism behind the paper's low-power behaviour (Figures 19 and 23).
pub fn rssi_reading<R: Rng + ?Sized>(
    rx_amplitude: Complex,
    effective_noise: Watts,
    rng: &mut R,
) -> Dbm {
    let n = rfmath::rng::complex_gaussian(rng, effective_noise.0);
    Watts((rx_amplitude + n).norm_sqr()).to_dbm()
}

/// Estimates power (dBm) from repeated short captures, averaging in the
/// linear domain — the "average 30 seconds of received samples" recipe
/// of §4.
pub fn average_power_dbm(captures: &[Capture]) -> Dbm {
    if captures.is_empty() {
        return Dbm(f64::NEG_INFINITY);
    }
    let mean_w = captures.iter().map(|c| c.mean_power().0).sum::<f64>() / captures.len() as f64;
    Watts(mean_w).to_dbm()
}

/// Simple DC-block: subtracts the capture mean (used before respiration
/// rate analysis).
pub fn remove_dc(series: &[f64]) -> Vec<f64> {
    let m = rfmath::stats::mean(series);
    series.iter().map(|x| x - m).collect()
}

/// Goertzel power of a *real* series at a normalized frequency
/// (cycles per sample) — used on RSS time-series for respiration-band
/// analysis.
pub fn real_series_tone_power(series: &[f64], cycles_per_sample: f64) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let w = std::f64::consts::TAU * cycles_per_sample;
    let mut acc = c64(0.0, 0.0);
    for (k, &x) in series.iter().enumerate() {
        acc += Complex::real(x) * Complex::cis(-w * k as f64);
    }
    (acc / series.len() as f64).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfmath::rng::SeedSplitter;

    #[test]
    fn tone_power_matches_amplitude() {
        // A tone of amplitude a has power a² (complex baseband).
        let cap = tone(
            Hertz::from_mhz(1.0),
            Hertz::from_khz(500.0),
            1e-3,
            0.0,
            4096,
        );
        let p = cap.mean_power().0;
        assert!((p - 1e-6).abs() / 1e-6 < 1e-12, "P = {p}");
        // Goertzel at the tone bin recovers the same power.
        let tp = cap.tone_power(Hertz::from_khz(500.0)).0;
        assert!((tp - 1e-6).abs() / 1e-6 < 1e-6, "tone P = {tp}");
    }

    #[test]
    fn goertzel_rejects_off_bin_noise() {
        let mut rng = SeedSplitter::new(1).stream("awgn");
        let mut cap = tone(
            Hertz::from_mhz(1.0),
            Hertz::from_khz(500.0),
            1e-3,
            0.3,
            8192,
        );
        add_awgn(&mut cap, Watts(1e-6), &mut rng);
        // Mean power includes all the noise…
        assert!(cap.mean_power().0 > 1.5e-6);
        // …but the tone bin sees the tone plus only noise/N.
        let tp = cap.tone_power(Hertz::from_khz(500.0)).0;
        assert!((tp - 1e-6).abs() / 1e-6 < 0.2, "tone P = {tp}");
    }

    #[test]
    fn snr_improves_with_capture_length() {
        let mut rng = SeedSplitter::new(2).stream("awgn");
        let measure = |n: usize, rng: &mut rand::rngs::StdRng| {
            let mut errs = 0.0;
            for _ in 0..20 {
                let mut cap = tone(Hertz::from_mhz(1.0), Hertz::from_khz(500.0), 1e-4, 0.0, n);
                add_awgn(&mut cap, Watts(1e-7), rng);
                let est = cap.tone_power(Hertz::from_khz(500.0)).0;
                errs += ((est - 1e-8) / 1e-8).abs();
            }
            errs / 20.0
        };
        let short = measure(256, &mut rng);
        let long = measure(8192, &mut rng);
        assert!(
            long < short,
            "longer captures estimate better: {long} vs {short}"
        );
    }

    #[test]
    fn received_tone_reflects_link_amplitude() {
        let mut rng = SeedSplitter::new(3).stream("awgn");
        let amp = Complex::from_polar(2e-5, 1.0); // −64 dBm-ish
        let cap = received_tone(
            amp,
            Hertz::from_mhz(1.0),
            Hertz::from_khz(500.0),
            Watts(1e-12),
            4096,
            &mut rng,
        );
        let est = cap.tone_power_dbm(Hertz::from_khz(500.0)).0;
        let expected = Watts(amp.norm_sqr()).to_dbm().0;
        assert!(
            (est - expected).abs() < 0.2,
            "{est:.2} vs {expected:.2} dBm"
        );
    }

    #[test]
    fn average_power_pools_captures() {
        let c1 = tone(Hertz::from_mhz(1.0), Hertz::from_khz(500.0), 1e-3, 0.0, 100);
        let c2 = tone(Hertz::from_mhz(1.0), Hertz::from_khz(500.0), 2e-3, 0.0, 100);
        let avg = average_power_dbm(&[c1, c2]);
        // Mean of 1 µW and 4 µW = 2.5 µW = −26.02 dBm.
        assert!((avg.0 - (-26.02)).abs() < 0.01, "avg = {avg}");
        assert_eq!(average_power_dbm(&[]).0, f64::NEG_INFINITY);
    }

    #[test]
    fn dc_removal_centers_series() {
        let xs = [1.0, 2.0, 3.0];
        let out = remove_dc(&xs);
        assert!((rfmath::stats::mean(&out)).abs() < 1e-12);
    }

    #[test]
    fn real_series_goertzel_finds_respiration_rate() {
        // A 0.25 Hz oscillation sampled at 10 Hz: 0.025 cycles/sample.
        let n = 600;
        let series: Vec<f64> = (0..n)
            .map(|k| (std::f64::consts::TAU * 0.025 * k as f64).sin())
            .collect();
        let on_bin = real_series_tone_power(&series, 0.025);
        let off_bin = real_series_tone_power(&series, 0.06);
        assert!(on_bin > 20.0 * off_bin, "on {on_bin} vs off {off_bin}");
    }
}
