//! Channel capacity: the Shannon-limit metric the paper plots in
//! Figures 18, 19 and 22 ("Capacity (Mbps/Hz)" — spectral efficiency).

use rfmath::units::{Db, Dbm};

use crate::noise::NoiseModel;

/// Shannon spectral efficiency `log2(1 + SNR)` in bit/s/Hz.
pub fn spectral_efficiency(snr_linear: f64) -> f64 {
    (1.0 + snr_linear.max(0.0)).log2()
}

/// Spectral efficiency from received power and a receiver noise model,
/// bit/s/Hz. The paper's "Mbps/Hz" axis is this quantity scaled by 1e-6
/// per the figure labeling; [`capacity_paper_units`] matches the axes.
pub fn capacity_bits(rx: Dbm, noise: &NoiseModel) -> f64 {
    spectral_efficiency(noise.snr_linear(rx))
}

/// Capacity in the paper's figure units (Mbit/s/Hz): `log2(1+SNR)/10`
/// would be wrong — the paper's curves saturate near 0.6 "Mbps/Hz" at
/// SNR ≈ 60 dB, which corresponds to `log2(1+SNR)` ≈ 20 bit/s/Hz scaled
/// by ≈ 1/33. We interpret the axis as bit/s/Hz × 10⁻¹·⁵ (a plotting
/// scale); for reproduction we report plain `log2(1+SNR)` and compare
/// *shape* (who wins, where curves flatten), as DESIGN.md records.
pub fn capacity_paper_units(rx: Dbm, noise: &NoiseModel) -> f64 {
    capacity_bits(rx, noise) / 33.0
}

/// Capacity improvement between two received powers, bit/s/Hz.
pub fn capacity_gain(rx_with: Dbm, rx_without: Dbm, noise: &NoiseModel) -> f64 {
    capacity_bits(rx_with, noise) - capacity_bits(rx_without, noise)
}

/// Duty-cycled throughput of a time-shared link, bit/s/Hz: the Shannon
/// efficiency at the device's received power scaled by the fraction of
/// airtime the scheduler grants it. This is the per-device metric of the
/// fleet engine's `TimeDivision` policy: each device enjoys its own
/// optimal bias, but only for `duty` of every frame.
///
/// A non-finite duty fraction (NaN from a degenerate frame model, ±∞
/// from a zero-length slot) is treated as 0.0 — `clamp` propagates NaN,
/// and one poisoned device would otherwise turn every fleet throughput
/// total into NaN.
pub fn duty_cycled_throughput(rx: Dbm, noise: &NoiseModel, duty: f64) -> f64 {
    if !duty.is_finite() {
        return 0.0;
    }
    duty.clamp(0.0, 1.0) * capacity_bits(rx, noise)
}

/// Batched capacity over per-receiver powers (one noise model per
/// receiver, paired positionally).
pub fn capacity_bits_many(rx_dbm: &[Dbm], noise: &[NoiseModel]) -> Vec<f64> {
    assert_eq!(
        rx_dbm.len(),
        noise.len(),
        "one noise model per receiver power"
    );
    rx_dbm
        .iter()
        .zip(noise)
        .map(|(&p, n)| capacity_bits(p, n))
        .collect()
}

/// SNR (dB) required to reach a given spectral efficiency.
pub fn required_snr_db(bits_per_hz: f64) -> Db {
    Db(10.0 * (2f64.powf(bits_per_hz) - 1.0).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_reference_points() {
        assert!((spectral_efficiency(1.0) - 1.0).abs() < 1e-12);
        assert!((spectral_efficiency(3.0) - 2.0).abs() < 1e-12);
        assert_eq!(spectral_efficiency(0.0), 0.0);
        assert_eq!(spectral_efficiency(-5.0), 0.0);
    }

    #[test]
    fn capacity_grows_with_power() {
        let n = NoiseModel::usrp_1mhz();
        let lo = capacity_bits(Dbm(-90.0), &n);
        let hi = capacity_bits(Dbm(-60.0), &n);
        assert!(hi > lo + 5.0, "30 dB more power ≈ 10 bit/s/Hz more");
    }

    #[test]
    fn capacity_gain_matches_difference() {
        let n = NoiseModel::usrp_1mhz();
        let g = capacity_gain(Dbm(-60.0), Dbm(-75.0), &n);
        assert!(g > 0.0);
        assert!(
            (g - (capacity_bits(Dbm(-60.0), &n) - capacity_bits(Dbm(-75.0), &n))).abs() < 1e-12
        );
    }

    #[test]
    fn required_snr_inverts_capacity() {
        for b in [0.5, 2.0, 6.0] {
            let snr = required_snr_db(b).to_linear();
            assert!((spectral_efficiency(snr) - b).abs() < 1e-9);
        }
    }

    #[test]
    fn duty_cycle_scales_capacity_linearly() {
        let n = NoiseModel::usrp_1mhz();
        let full = capacity_bits(Dbm(-60.0), &n);
        assert!((duty_cycled_throughput(Dbm(-60.0), &n, 0.25) - full / 4.0).abs() < 1e-12);
        assert_eq!(duty_cycled_throughput(Dbm(-60.0), &n, 0.0), 0.0);
        // Duty is clamped to physical airtime fractions.
        assert!((duty_cycled_throughput(Dbm(-60.0), &n, 7.0) - full).abs() < 1e-12);
    }

    #[test]
    fn non_finite_duty_is_zero_airtime() {
        // NaN must not leak through the clamp and poison fleet totals;
        // infinities are equally unphysical.
        let n = NoiseModel::usrp_1mhz();
        assert_eq!(duty_cycled_throughput(Dbm(-60.0), &n, f64::NAN), 0.0);
        assert_eq!(duty_cycled_throughput(Dbm(-60.0), &n, f64::INFINITY), 0.0);
        assert_eq!(
            duty_cycled_throughput(Dbm(-60.0), &n, f64::NEG_INFINITY),
            0.0
        );
        // A fleet total including the poisoned device stays finite.
        let total: f64 = [0.5, f64::NAN]
            .iter()
            .map(|&d| duty_cycled_throughput(Dbm(-60.0), &n, d))
            .sum();
        assert!(total.is_finite());
    }

    #[test]
    fn batched_capacity_pairs_positionally() {
        let noises = [NoiseModel::wifi_20mhz(), NoiseModel::ble_2mhz()];
        let powers = [Dbm(-55.0), Dbm(-80.0)];
        let got = capacity_bits_many(&powers, &noises);
        assert_eq!(got.len(), 2);
        assert!((got[0] - capacity_bits(powers[0], &noises[0])).abs() < 1e-12);
        assert!((got[1] - capacity_bits(powers[1], &noises[1])).abs() < 1e-12);
    }

    #[test]
    fn high_snr_slope_is_logarithmic() {
        // Above ~10 dB SNR, +10 dB buys ≈ 3.32 bit/s/Hz.
        let n = NoiseModel::usrp_1mhz();
        let c1 = capacity_bits(Dbm(-70.0), &n);
        let c2 = capacity_bits(Dbm(-60.0), &n);
        assert!((c2 - c1 - 3.32).abs() < 0.05);
    }
}
