//! Multi-surface coupling: superposed per-panel fields at one receiver.
//!
//! A panel array serves each device from its *home* panel, but the other
//! panels are not silent: every biased surface scatters part of the
//! transmit field toward every receiver in the room. This module models
//! that leakage as a coherent superposition,
//!
//! ```text
//! a_rx = a_home(bias_home) + Σ_{k≠home} γ · s_k(bias_k)
//!                          + Σ_{k≠home} γ₂ · h_k · s_k(bias_k)
//! ```
//!
//! where `a_home` is the full single-surface amplitude the independent
//! scheduler already optimizes, `s_k` is panel k's engineered *scattered*
//! amplitude toward this receiver
//! ([`PreparedLink::scattered_amplitude_scratch`] — the surface-dependent
//! paths minus the static direct ray and environment tail, so the direct
//! field is never double counted), `γ` ([`CouplingConfig::gain`]) is the
//! fraction of a foreign panel's scattered field that reaches a receiver
//! outside its sector (aperture intercept — foreign panels sit off the
//! receiver's boresight), and the optional `γ₂ · h_k` term is a cascaded
//! two-hop route (foreign surface → home surface → device) with `h_k` the
//! free-space transfer over the inter-panel separation.
//!
//! **Zero-coupling guarantee:** when [`CouplingConfig::is_disabled`] the
//! superposition returns the home amplitude *unchanged* — cross terms are
//! skipped entirely, never added as zeros (adding `+0.0` can flip the
//! sign bit of `-0.0`), so a disabled coupled evaluation is bit-identical
//! to the single-surface path. `core::panels` property-tests this.

use metasurface::response::SurfaceResponse;
use rfmath::complex::Complex;
use rfmath::units::{Dbm, Meters, Seconds, Watts};

use crate::friis;
use crate::link::PreparedLink;
use crate::rays::Path;

/// Strength of inter-panel coupling in a [`MultiSurfaceField`].
///
/// Both gains are linear amplitude fractions. The defaults model an
/// indoor deployment where a foreign panel's scattered lobe is well off
/// the receiver's boresight: a modest direct-leakage intercept and no
/// cascaded hop unless explicitly requested.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CouplingConfig {
    /// Amplitude fraction of a foreign panel's scattered field that
    /// reaches the receiver directly (aperture-intercept factor).
    pub gain: f64,
    /// Amplitude gain of the cascaded two-hop route (foreign surface →
    /// home surface → device), applied on top of the free-space
    /// inter-panel transfer. Zero disables the cascade term.
    pub cascade_gain: f64,
}

impl CouplingConfig {
    /// No coupling at all: the superposed field *is* the home field,
    /// bit for bit.
    pub fn disabled() -> Self {
        CouplingConfig {
            gain: 0.0,
            cascade_gain: 0.0,
        }
    }

    /// Representative indoor leakage: 20% amplitude intercept of foreign
    /// scattered lobes, no cascaded hop.
    pub fn indoor_default() -> Self {
        CouplingConfig {
            gain: 0.2,
            cascade_gain: 0.0,
        }
    }

    /// True when every cross term vanishes and the coupled evaluation
    /// must short-circuit to the home amplitude.
    pub fn is_disabled(&self) -> bool {
        self.gain == 0.0 && self.cascade_gain == 0.0
    }
}

impl Default for CouplingConfig {
    fn default() -> Self {
        CouplingConfig::disabled()
    }
}

/// One receiver's view of a whole panel array: the home-panel link plus
/// one re-mounted [`PreparedLink`] per foreign panel, ready to superpose
/// per-panel amplitudes under a [`CouplingConfig`].
///
/// Index `k` everywhere refers to the panel order passed to
/// [`MultiSurfaceField::new`]; all links must target the *same* physical
/// receiver (same endpoints, different surface mounts — the
/// [`PreparedLink::with_surface_placement`] contract).
#[derive(Clone, Debug)]
pub struct MultiSurfaceField {
    home: usize,
    links: Vec<PreparedLink>,
    /// Free-space inter-panel transfer for the cascaded hop, per panel:
    /// `hops[k]` carries foreign panel k's field to the home panel.
    /// Zero for the home panel itself and for mounts without positions.
    hops: Vec<Complex>,
}

impl MultiSurfaceField {
    /// Builds the superposition view. `links[home]` is the device's
    /// serving panel; the rest contribute cross terms only.
    ///
    /// # Panics
    /// When `home` is out of range.
    pub fn new(home: usize, links: Vec<PreparedLink>) -> Self {
        assert!(
            home < links.len(),
            "home panel {home} out of range for {} links",
            links.len()
        );
        let home_pos = links[home].link().deployment.surface_position();
        let f = links[home].link().frequency;
        let hops = links
            .iter()
            .enumerate()
            .map(|(k, prepared)| {
                if k == home {
                    return Complex::ZERO;
                }
                let (Some(a), Some(b)) = (prepared.link().deployment.surface_position(), home_pos)
                else {
                    return Complex::ZERO;
                };
                let d = a.distance(b);
                if d == 0.0 {
                    return Complex::ZERO;
                }
                friis::field_transfer(f, Meters(d))
            })
            .collect();
        MultiSurfaceField { home, links, hops }
    }

    /// Index of the serving panel within [`MultiSurfaceField::link`].
    pub fn home_index(&self) -> usize {
        self.home
    }

    /// Number of panels in the superposition (home included).
    pub fn panel_count(&self) -> usize {
        self.links.len()
    }

    /// Panel k's re-mounted link handle.
    pub fn link(&self, k: usize) -> &PreparedLink {
        &self.links[k]
    }

    /// The serving panel's link handle.
    pub fn home_link(&self) -> &PreparedLink {
        &self.links[self.home]
    }

    /// The full single-surface amplitude from the serving panel — exactly
    /// what [`PreparedLink::received_amplitude_scratch`] returns at t = 0.
    pub fn home_amplitude(
        &self,
        response: Option<&SurfaceResponse>,
        scratch: &mut Vec<Path>,
    ) -> Complex {
        self.links[self.home].received_amplitude_scratch(response, Seconds(0.0), scratch)
    }

    /// Foreign panel k's cross-term contribution: scattered leakage plus
    /// the optional cascaded hop. Exactly zero for the home panel or when
    /// coupling is disabled.
    pub fn cross_amplitude(
        &self,
        k: usize,
        response: Option<&SurfaceResponse>,
        coupling: &CouplingConfig,
        scratch: &mut Vec<Path>,
    ) -> Complex {
        if k == self.home || coupling.is_disabled() {
            return Complex::ZERO;
        }
        let scattered = self.links[k].scattered_amplitude_scratch(response, scratch);
        let mut term = scattered * coupling.gain;
        if coupling.cascade_gain != 0.0 {
            term += self.hops[k] * scattered * coupling.cascade_gain;
        }
        term
    }

    /// The superposed receiver amplitude. `responses[k]` is panel k's
    /// bias response (None = panel off). When coupling is disabled this
    /// returns the home amplitude *without touching the cross terms* —
    /// the bitwise zero-coupling guarantee.
    pub fn amplitude(
        &self,
        responses: &[Option<&SurfaceResponse>],
        coupling: &CouplingConfig,
        scratch: &mut Vec<Path>,
    ) -> Complex {
        debug_assert_eq!(responses.len(), self.links.len());
        let home = self.home_amplitude(responses[self.home], scratch);
        if coupling.is_disabled() {
            return home;
        }
        let mut total = home;
        for (k, response) in responses.iter().enumerate() {
            if k == self.home {
                continue;
            }
            total += self.cross_amplitude(k, *response, coupling, scratch);
        }
        total
    }

    /// Superposed received power in dBm.
    pub fn power_dbm(
        &self,
        responses: &[Option<&SurfaceResponse>],
        coupling: &CouplingConfig,
        scratch: &mut Vec<Path>,
    ) -> Dbm {
        Watts(self.amplitude(responses, coupling, scratch).norm_sqr()).to_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::{Antenna, OrientedAntenna};
    use crate::environment::Environment;
    use crate::link::Link;
    use crate::rays::Deployment;
    use metasurface::response::Metasurface;
    use metasurface::stack::BiasState;
    use rfmath::units::{Degrees, Hertz};

    fn base_link() -> Link {
        Link {
            tx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0)),
            rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(0.0)),
            frequency: Hertz::from_ghz(2.44),
            tx_power: rfmath::units::Watts::from_mw(50.0),
            deployment: Deployment::reflective_cm(60.0),
            environment: Environment::laboratory(9),
            extra_paths: Vec::new(),
            tuning: Default::default(),
        }
    }

    fn response(bias: BiasState) -> SurfaceResponse {
        let mut surface = Metasurface::llama();
        surface.set_bias(bias);
        surface.response(Hertz::from_ghz(2.44))
    }

    fn two_panel_field() -> MultiSurfaceField {
        let home = PreparedLink::new(base_link());
        let foreign =
            home.with_surface_placement(base_link().deployment.with_surface_fraction(0.8));
        MultiSurfaceField::new(0, vec![home, foreign])
    }

    #[test]
    fn disabled_coupling_is_bitwise_the_home_amplitude() {
        let field = two_panel_field();
        let ra = response(BiasState::new(9.0, 3.0));
        let rb = response(BiasState::new(21.0, 27.0));
        let mut scratch = Vec::new();
        let home = field.home_amplitude(Some(&ra), &mut scratch);
        let coupled = field.amplitude(
            &[Some(&ra), Some(&rb)],
            &CouplingConfig::disabled(),
            &mut scratch,
        );
        assert_eq!(home.re.to_bits(), coupled.re.to_bits());
        assert_eq!(home.im.to_bits(), coupled.im.to_bits());
    }

    #[test]
    fn coupling_shifts_the_superposed_amplitude() {
        let field = two_panel_field();
        let ra = response(BiasState::new(9.0, 3.0));
        let rb = response(BiasState::new(21.0, 27.0));
        let mut scratch = Vec::new();
        let home = field.home_amplitude(Some(&ra), &mut scratch);
        let coupled = field.amplitude(
            &[Some(&ra), Some(&rb)],
            &CouplingConfig::indoor_default(),
            &mut scratch,
        );
        assert!(
            (coupled - home).abs() > 1e-12,
            "a biased foreign panel must perturb the field"
        );
        // And the foreign bias matters: a different foreign response
        // lands at a different superposed amplitude.
        let rc = response(BiasState::new(3.0, 15.0));
        let other = field.amplitude(
            &[Some(&ra), Some(&rc)],
            &CouplingConfig::indoor_default(),
            &mut scratch,
        );
        assert!((coupled - other).abs() > 1e-12);
    }

    #[test]
    fn single_panel_superposition_is_the_home_field() {
        let home = PreparedLink::new(base_link());
        let field = MultiSurfaceField::new(0, vec![home]);
        let r = response(BiasState::new(9.0, 3.0));
        let mut scratch = Vec::new();
        let alone = field.home_amplitude(Some(&r), &mut scratch);
        let coupled = field.amplitude(&[Some(&r)], &CouplingConfig::indoor_default(), &mut scratch);
        assert_eq!(alone.re.to_bits(), coupled.re.to_bits());
        assert_eq!(alone.im.to_bits(), coupled.im.to_bits());
    }

    #[test]
    fn cascade_hop_uses_the_inter_panel_separation() {
        let field = two_panel_field();
        let rb = response(BiasState::new(21.0, 27.0));
        let mut scratch = Vec::new();
        let direct_only = field.cross_amplitude(
            1,
            Some(&rb),
            &CouplingConfig {
                gain: 0.2,
                cascade_gain: 0.0,
            },
            &mut scratch,
        );
        let with_cascade = field.cross_amplitude(
            1,
            Some(&rb),
            &CouplingConfig {
                gain: 0.2,
                cascade_gain: 0.5,
            },
            &mut scratch,
        );
        assert!(
            (with_cascade - direct_only).abs() > 1e-15,
            "cascade term must add a hop contribution"
        );
        // The home panel never contributes a cross term.
        let home_cross = field.cross_amplitude(
            0,
            Some(&rb),
            &CouplingConfig::indoor_default(),
            &mut scratch,
        );
        assert_eq!(home_cross.re.to_bits(), 0.0f64.to_bits());
        assert_eq!(home_cross.im.to_bits(), 0.0f64.to_bits());
    }
}
