//! Propagation environments: anechoic vs laboratory multipath.
//!
//! The paper runs its controlled experiments inside absorber material
//! ("to avoid background multipath effects") and then deliberately
//! repeats the capacity study in a rich laboratory (Figure 19) where
//! omni endpoints lose the surface's benefit below ≈2 mW transmit power.
//! We model the difference as a set of deterministic, seeded scatter
//! paths: each scatterer contributes a Rayleigh-amplitude, randomly
//! polarized arrival, independent of the engineered paths.

use rand::Rng;
use rfmath::complex::Complex;
use rfmath::jones::JonesMatrix;
use rfmath::matrix::Mat2;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Hertz, Meters, Radians};

use crate::rays::Path;

/// Environment classes from the paper's evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Environment {
    /// Absorber-lined test volume: only engineered paths survive.
    Anechoic,
    /// Indoor laboratory: engineered paths plus seeded scatterers.
    Laboratory {
        /// Deterministic seed for the scatter realization.
        seed: u64,
        /// Number of discrete scatter paths.
        scatterers: usize,
        /// Total scattered power relative to a free-space path of the
        /// same endpoint separation (linear; e.g. 0.5 = −3 dB).
        relative_power: f64,
    },
}

/// One scatterer's random realization, decoupled from endpoint
/// geometry: the raw Gaussian tap normals, the excess wander length,
/// and the polarization mix. See [`Environment::scatter_draws`].
#[derive(Clone, Copy, Debug)]
pub struct ScatterDraw {
    n1: f64,
    n2: f64,
    excess: f64,
    jones: JonesMatrix,
}

impl Environment {
    /// The paper's absorber-covered test area.
    pub fn anechoic() -> Self {
        Environment::Anechoic
    }

    /// A representative busy laboratory (the Figure 19 environment).
    pub fn laboratory(seed: u64) -> Self {
        Environment::Laboratory {
            seed,
            scatterers: 8,
            relative_power: 0.3,
        }
    }

    /// Scatter paths for a link of endpoint separation `tx_rx` at
    /// frequency `f`. Deterministic in the seed.
    pub fn scatter_paths(&self, tx_rx: Meters, f: Hertz) -> Vec<Path> {
        self.scatter_paths_with(tx_rx, f, None)
    }

    /// [`Environment::scatter_paths`] with an optional override of the
    /// scatterers' cross-polar discrimination. `Some(xpd_db)` draws each
    /// path's depolarizing mix so the mean cross-to-co amplitude ratio is
    /// `10^(-xpd/20)`; `None` keeps the built-in statistics (and the
    /// exact historical draw sequence) — the Figure 20 calibration knob.
    pub fn scatter_paths_with(&self, tx_rx: Meters, f: Hertz, xpd_db: Option<f64>) -> Vec<Path> {
        let draws = self.scatter_draws(xpd_db);
        let mut out = Vec::with_capacity(draws.len());
        self.scatter_paths_from(&draws, tx_rx, f, &mut out);
        out
    }

    /// The random part of a scatter realization, independent of the
    /// endpoint geometry. Drawing once and replaying via
    /// [`Environment::scatter_paths_from`] reproduces
    /// [`Environment::scatter_paths_with`] bit-for-bit at any endpoint
    /// separation — only the per-path power scale and total length
    /// depend on `tx_rx`, and both are applied at replay time in the
    /// original operation order.
    pub fn scatter_draws(&self, xpd_db: Option<f64>) -> Vec<ScatterDraw> {
        let Environment::Laboratory {
            seed, scatterers, ..
        } = self
        else {
            return Vec::new();
        };
        let splitter = SeedSplitter::new(*seed);
        let mut rng = splitter.stream("scatterers");
        (0..*scatterers)
            .map(|_| {
                // Rayleigh amplitude: complex Gaussian tap, drawn as raw
                // standard normals (the power scale is applied at replay
                // time, in the same operation order as `complex_gaussian`).
                let n1 = rfmath::rng::standard_normal(&mut rng);
                let n2 = rfmath::rng::standard_normal(&mut rng);
                // Excess path length: 0.5–4 m of wander.
                let excess: f64 = rng.gen_range(0.5..4.0);
                // Indoor bounces mostly preserve polarization
                // orientation (channel XPD of 6-12 dB): a modest
                // random rotation plus weak depolarizing mixing.
                let rot: f64 = rng.gen_range(-0.45..0.45);
                let mix: f64 = match xpd_db {
                    // Mean cross/co amplitude ratio 10^(-xpd/20)
                    // under a uniform draw (mean = half the max),
                    // capped at full mixing so a very low XPD
                    // request cannot synthesize an amplifying
                    // (non-passive) scatterer.
                    Some(xpd) => (rng.gen_range(0.0..1.0) * 2.0 * 10f64.powf(-xpd / 20.0)).min(1.0),
                    None => rng.gen_range(0.0..0.3),
                };
                let jones = JonesMatrix(
                    Mat2::rotation(rot)
                        * Mat2::new(
                            Complex::ONE,
                            Complex::imag(mix),
                            Complex::imag(mix),
                            Complex::ONE,
                        )
                        .scale(Complex::real(1.0 / (1.0 + mix * mix).sqrt())),
                );
                ScatterDraw {
                    n1,
                    n2,
                    excess,
                    jones,
                }
            })
            .collect()
    }

    /// Replay cached [`ScatterDraw`]s into `out` for a link of endpoint
    /// separation `tx_rx` at frequency `f`, appending one path per draw.
    /// No RNG is consulted: a mobility engine can move a device every
    /// tick while paying the stream setup and random draws exactly once.
    pub fn scatter_paths_from(
        &self,
        draws: &[ScatterDraw],
        tx_rx: Meters,
        f: Hertz,
        out: &mut Vec<Path>,
    ) {
        let Environment::Laboratory { relative_power, .. } = self else {
            return;
        };
        let direct_amp = crate::friis::field_transfer(f, tx_rx).abs();
        let per_path_power =
            relative_power * direct_amp * direct_amp / (draws.len() as f64).max(1.0);
        let s = (per_path_power / 2.0).sqrt();
        out.extend(draws.iter().map(|draw| {
            let tap = rfmath::complex::c64(draw.n1 * s, draw.n2 * s);
            Path {
                transfer: tap * Complex::cis(-f.wavenumber() * draw.excess),
                jones: draw.jones,
                length: Meters(tx_rx.0 + draw.excess),
                modulation: None,
                label: "scatter",
            }
        }));
    }

    /// True when this environment contributes multipath.
    pub fn has_multipath(&self) -> bool {
        !matches!(self, Environment::Anechoic)
    }
}

/// A rotation applied by the environment to express scatterer Jones
/// matrices in a rotated frame (used when composing with a surface path).
pub fn frame_rotation(theta: Radians) -> JonesMatrix {
    JonesMatrix::rotation(theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn anechoic_is_clean() {
        let env = Environment::anechoic();
        assert!(env.scatter_paths(Meters(0.5), F).is_empty());
        assert!(!env.has_multipath());
    }

    #[test]
    fn laboratory_is_deterministic_in_seed() {
        let a = Environment::laboratory(7).scatter_paths(Meters(0.5), F);
        let b = Environment::laboratory(7).scatter_paths(Meters(0.5), F);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert!((pa.transfer - pb.transfer).abs() < 1e-15);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Environment::laboratory(7).scatter_paths(Meters(0.5), F);
        let b = Environment::laboratory(8).scatter_paths(Meters(0.5), F);
        assert!((a[0].transfer - b[0].transfer).abs() > 1e-12);
    }

    #[test]
    fn scattered_power_is_near_requested_fraction() {
        // Average over many seeds: total scatter power ≈ relative_power ×
        // direct-path power.
        let direct = crate::friis::field_transfer(F, Meters(0.5)).norm_sqr();
        let mut total = 0.0;
        let n = 300;
        for seed in 0..n {
            let env = Environment::laboratory(seed);
            total += env
                .scatter_paths(Meters(0.5), F)
                .iter()
                .map(|p| p.transfer.norm_sqr())
                .sum::<f64>();
        }
        let mean = total / n as f64;
        let ratio = mean / direct;
        assert!(
            (ratio - 0.3).abs() < 0.08,
            "scatter/direct power ratio = {ratio:.3}"
        );
    }

    #[test]
    fn xpd_override_none_reproduces_default_sequence() {
        let env = Environment::laboratory(11);
        let a = env.scatter_paths(Meters(0.5), F);
        let b = env.scatter_paths_with(Meters(0.5), F, None);
        for (pa, pb) in a.iter().zip(&b) {
            assert!((pa.transfer - pb.transfer).abs() < 1e-15);
            assert!(pa.jones.0.max_abs_diff(pb.jones.0) < 1e-15);
        }
    }

    #[test]
    fn higher_xpd_means_purer_scatter_polarization() {
        // Average cross-polar leakage of the scatter Jones matrices must
        // shrink as the override XPD rises.
        let cross = |xpd: f64| {
            let mut total = 0.0;
            let mut n = 0usize;
            for seed in 0..40 {
                for p in Environment::laboratory(seed).scatter_paths_with(Meters(0.5), F, Some(xpd))
                {
                    let out = p.jones.apply(rfmath::jones::JonesVector::horizontal());
                    total += out.0.y.norm_sqr() / out.0.x.norm_sqr().max(1e-30);
                    n += 1;
                }
            }
            total / n as f64
        };
        // The random scatter rotation (±0.45 rad) leaks regardless of
        // the depolarizing mix, so the XPD knob separates the means by
        // a finite factor rather than the full 18 dB.
        let leaky = cross(6.0);
        let pure = cross(24.0);
        assert!(
            pure < leaky / 3.0,
            "24 dB XPD leakage {pure:.4} should be well below 6 dB XPD {leaky:.4}"
        );
    }

    #[test]
    fn extreme_xpd_override_stays_passive() {
        // xpd = 0 dB requests full depolarization; the drawn mix must
        // clamp at 1 so no scatterer amplifies.
        for seed in 0..10 {
            for p in Environment::laboratory(seed).scatter_paths_with(Meters(0.5), F, Some(0.0)) {
                let g = p
                    .jones
                    .transmittance(rfmath::jones::JonesVector::linear_deg(30.0));
                assert!(g <= 1.6, "xpd-0 scatter path gain {g}");
            }
        }
    }

    #[test]
    fn scatter_jones_is_not_amplifying() {
        for seed in 0..20 {
            for p in Environment::laboratory(seed).scatter_paths(Meters(0.5), F) {
                let g = p
                    .jones
                    .transmittance(rfmath::jones::JonesVector::linear_deg(30.0));
                assert!(g <= 1.6, "scatter path gain {g}");
            }
        }
    }
}
