//! Free-space propagation: the Friis transmission equation and its
//! corollaries.
//!
//! The paper uses Friis twice: to convert received-power gains into range
//! extension ("+15 dB extends the potential transmission distance by up
//! to 5.6×", §5.1.1) and as the backbone of every link-budget number in
//! the evaluation.

use rfmath::complex::Complex;
use rfmath::units::{Db, Hertz, Meters};

/// Free-space path loss (power ratio ≤ 1) over distance `d` at
/// frequency `f`: `(λ / 4πd)²`.
pub fn path_gain_linear(f: Hertz, d: Meters) -> f64 {
    let lambda = f.wavelength().0;
    let x = lambda / (4.0 * std::f64::consts::PI * d.0);
    x * x
}

/// Free-space path loss in (positive) dB.
pub fn path_loss_db(f: Hertz, d: Meters) -> Db {
    Db(-10.0 * path_gain_linear(f, d).log10())
}

/// Complex field transfer over a free-space path: amplitude `λ/(4πd)`
/// with propagation phase `e^{−jkd}`.
pub fn field_transfer(f: Hertz, d: Meters) -> Complex {
    let lambda = f.wavelength().0;
    let amp = lambda / (4.0 * std::f64::consts::PI * d.0);
    Complex::from_polar(amp, -f.wavenumber() * d.0)
}

/// Range-extension factor implied by a link-budget gain: free-space
/// power falls as `1/d²`, so `+G dB` of margin extends range by
/// `10^(G/20)`.
pub fn range_extension(gain: Db) -> f64 {
    10f64.powf(gain.0 / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_at_reference_points() {
        // 2.44 GHz at 1 m ≈ 40.2 dB.
        let pl = path_loss_db(Hertz::from_ghz(2.44), Meters(1.0));
        assert!((pl.0 - 40.2).abs() < 0.3, "PL = {pl}");
    }

    #[test]
    fn inverse_square_law() {
        let f = Hertz::from_ghz(2.44);
        let g1 = path_gain_linear(f, Meters(1.0));
        let g2 = path_gain_linear(f, Meters(2.0));
        assert!((g1 / g2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_distance_costs_6db() {
        let f = Hertz::from_ghz(2.44);
        let d1 = path_loss_db(f, Meters(0.24));
        let d2 = path_loss_db(f, Meters(0.48));
        assert!((d2.0 - d1.0 - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn field_transfer_magnitude_squared_is_path_gain() {
        let f = Hertz::from_ghz(2.44);
        let d = Meters(0.36);
        let t = field_transfer(f, d);
        assert!((t.norm_sqr() - path_gain_linear(f, d)).abs() < 1e-15);
    }

    #[test]
    fn field_phase_advances_with_distance() {
        let f = Hertz::from_ghz(2.44);
        let quarter = f.wavelength().0 / 4.0;
        let t1 = field_transfer(f, Meters(0.30));
        let t2 = field_transfer(f, Meters(0.30 + quarter));
        let dphi = (t1.arg() - t2.arg()).rem_euclid(std::f64::consts::TAU);
        assert!(
            (dphi - std::f64::consts::FRAC_PI_2).abs() < 1e-9,
            "Δφ = {dphi}"
        );
    }

    #[test]
    fn paper_range_extension_claim() {
        // +15 dB → 5.6× range (the §5.1.1 number).
        let x = range_extension(Db(15.0));
        assert!((x - 5.623).abs() < 0.01, "extension = {x}");
    }
}
