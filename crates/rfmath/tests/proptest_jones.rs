//! Property-based tests for the Jones-calculus core.
//!
//! These pin the algebraic identities the rest of the system leans on:
//! unitarity of lossless elements, the Eq. (8) rotator equivalence for all
//! bias-induced phase differences, PLF bounds, and Jones↔Stokes agreement.

use proptest::prelude::*;
use rfmath::jones::{JonesMatrix, JonesVector};
use rfmath::matrix::Mat2;
use rfmath::stokes::Stokes;
use rfmath::units::Radians;

fn angle() -> impl Strategy<Value = f64> {
    -std::f64::consts::PI..std::f64::consts::PI
}

fn small_amp() -> impl Strategy<Value = f64> {
    0.01f64..10.0
}

proptest! {
    #[test]
    fn rotations_are_unitary(theta in angle()) {
        let r = JonesMatrix::rotation(Radians(theta));
        prop_assert!(r.0.is_unitary(1e-9));
    }

    #[test]
    fn wave_plates_are_unitary(alpha in angle(), theta in angle()) {
        let m = JonesMatrix::wave_plate(Radians(alpha)).rotated(Radians(theta));
        prop_assert!(m.0.is_unitary(1e-9));
    }

    #[test]
    fn birefringent_structures_are_unitary(beta in angle(), delta in angle()) {
        let b = JonesMatrix::birefringent(Radians(beta), Radians(delta));
        prop_assert!(b.0.is_unitary(1e-9));
    }

    /// Eq. (8): the QWP–BFS–QWP sandwich is a rotation by δ/2 for *every*
    /// δ and arbitrary common phases.
    #[test]
    fn rotator_always_rotates_by_half_delta(
        alpha in angle(),
        beta in angle(),
        delta in -3.0f64..3.0,
    ) {
        let p = JonesMatrix::rotator(Radians(alpha), Radians(beta), Radians(delta));
        let got = p.rotation_angle(1e-7);
        prop_assert!(got.is_some(), "rotator not recognized as rotation, δ={delta}");
        let got = got.unwrap().0;
        prop_assert!((got - delta / 2.0).abs() < 1e-7,
            "δ={delta}: expected {} got {got}", delta / 2.0);
    }

    /// The rotator matrix itself equals R(δ/2) up to global phase.
    #[test]
    fn rotator_matches_rotation_matrix(delta in -3.0f64..3.0) {
        let p = JonesMatrix::rotator(Radians(0.1), Radians(0.2), Radians(delta));
        let r = Mat2::rotation(delta / 2.0);
        prop_assert!(p.0.approx_eq_up_to_phase(r, 1e-8));
    }

    /// PLF is always in [0, 1] and symmetric for unit states.
    #[test]
    fn plf_bounds_and_symmetry(a in angle(), b in angle()) {
        let u = JonesVector::linear(Radians(a));
        let v = JonesVector::linear(Radians(b));
        let p1 = u.polarization_loss_factor(v);
        let p2 = v.polarization_loss_factor(u);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        prop_assert!((p1 - p2).abs() < 1e-10);
    }

    /// Malus' law: linear-linear PLF equals cos² of the orientation gap.
    #[test]
    fn plf_is_cos_squared(a in angle(), b in angle()) {
        let u = JonesVector::linear(Radians(a));
        let v = JonesVector::linear(Radians(b));
        let expected = (a - b).cos().powi(2);
        prop_assert!((u.polarization_loss_factor(v) - expected).abs() < 1e-9);
    }

    /// A unitary transform never changes total intensity.
    #[test]
    fn unitary_preserves_intensity(
        theta in angle(), delta in angle(),
        ax in small_amp(), ay in small_amp(), ph in angle(),
    ) {
        let v = JonesVector(rfmath::Vec2::new(
            rfmath::c64(ax, 0.0),
            rfmath::Complex::from_polar(ay, ph),
        ));
        let m = JonesMatrix::rotator(Radians(0.0), Radians(0.0), Radians(delta))
            * JonesMatrix::rotation(Radians(theta));
        let out = m.apply(v);
        prop_assert!((out.intensity() - v.intensity()).abs() < 1e-9 * v.intensity().max(1.0));
    }

    /// Rotating a linear state rotates its orientation (mod π).
    #[test]
    fn rotation_moves_orientation(a in -1.4f64..1.4, theta in -0.7f64..0.7) {
        let v = JonesVector::linear(Radians(a));
        let out = JonesMatrix::rotation(Radians(theta)).apply(v);
        let got = out.orientation().0;
        let expected = a + theta;
        // Compare modulo π (orientation is a line, not a vector).
        let diff = (got - expected).rem_euclid(std::f64::consts::PI);
        let diff = diff.min(std::f64::consts::PI - diff);
        prop_assert!(diff < 1e-9, "a={a} θ={theta} got={got}");
    }

    /// Jones→Stokes preserves intensity and full polarization.
    #[test]
    fn stokes_consistency(ax in small_amp(), ay in small_amp(), ph in angle()) {
        let v = JonesVector(rfmath::Vec2::new(
            rfmath::c64(ax, 0.0),
            rfmath::Complex::from_polar(ay, ph),
        ));
        let s = Stokes::from_jones(v);
        prop_assert!((s.s0 - v.intensity()).abs() < 1e-9 * v.intensity());
        prop_assert!((s.degree_of_polarization() - 1.0).abs() < 1e-9);
        // Orientation agrees between the two representations.
        prop_assert!((s.orientation().0 - v.orientation().0).abs() < 1e-9);
    }

    /// Stokes projective measurement agrees with Jones PLF on pure states.
    #[test]
    fn stokes_measurement_matches_plf(a in angle(), b in angle()) {
        let tx = JonesVector::linear(Radians(a));
        let rx = JonesVector::linear(Radians(b));
        let plf = tx.polarization_loss_factor(rx);
        let frac = Stokes::from_jones(tx).received_fraction(rx);
        prop_assert!((plf - frac).abs() < 1e-9);
    }

    /// Cascading is associative (Eq. 2 chains arbitrarily).
    #[test]
    fn cascade_associativity(d1 in angle(), d2 in angle(), t in angle()) {
        let m1 = JonesMatrix::birefringent(Radians(0.0), Radians(d1));
        let m2 = JonesMatrix::rotation(Radians(t));
        let m3 = JonesMatrix::birefringent(Radians(0.0), Radians(d2));
        let left = (m1 * m2) * m3;
        let right = m1 * (m2 * m3);
        prop_assert!(left.0.max_abs_diff(right.0) < 1e-10);
    }
}

proptest! {
    /// Mat2 inverse round-trips whenever the determinant is well
    /// conditioned.
    #[test]
    fn mat2_inverse_round_trip(
        ar in -3.0f64..3.0, ai in -3.0f64..3.0,
        br in -3.0f64..3.0, bi in -3.0f64..3.0,
        cr in -3.0f64..3.0, ci in -3.0f64..3.0,
        dr in -3.0f64..3.0, di in -3.0f64..3.0,
    ) {
        let m = Mat2::new(
            rfmath::c64(ar, ai), rfmath::c64(br, bi),
            rfmath::c64(cr, ci), rfmath::c64(dr, di),
        );
        prop_assume!(m.det().abs() > 1e-3);
        let inv = m.inverse().unwrap();
        prop_assert!((m * inv).max_abs_diff(Mat2::IDENTITY) < 1e-7);
    }

    /// Complex square root squares back.
    #[test]
    fn complex_sqrt_round_trip(re in -100.0f64..100.0, im in -100.0f64..100.0) {
        let z = rfmath::c64(re, im);
        let s = z.sqrt();
        prop_assert!((s * s - z).abs() < 1e-9 * z.abs().max(1.0));
        prop_assert!(s.re >= -1e-12);
    }

    /// dBm↔mW round trip.
    #[test]
    fn dbm_round_trip(mw in 1e-6f64..1e6) {
        let dbm = rfmath::Watts::from_mw(mw).to_dbm();
        prop_assert!((dbm.to_mw() - mw).abs() / mw < 1e-10);
    }
}
