//! Descriptive statistics and histogram/PDF utilities.
//!
//! The paper's Figures 2 and 20 are empirical PDFs of received signal
//! strength; Figure 12 fits a linear power-vs-angle slope. This module
//! provides the summary statistics, histogramming and least-squares
//! fitting used by those experiments and by the test-suite.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum; +∞ for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; −∞ for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated percentile (`p ∈ [0, 100]`); NaN for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = rank - lo as f64;
        sorted[lo] + t * (sorted[hi] - sorted[lo])
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// An equal-width histogram over `[lo, hi)` with `bins` buckets, plus
/// underflow/overflow counters. Normalizes to an empirical PDF in percent
/// (the unit of the paper's Figure 2/20 y-axis).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "lo must be below hi");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every sample from a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Bin count.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples outside `[lo, hi)`.
    pub fn outliers(&self) -> u64 {
        self.underflow + self.overflow
    }

    /// Total samples added (including outliers).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical PDF in percent per bin (sums to ≤ 100, the remainder
    /// being outliers) — matches the paper's PDF(%) axes.
    pub fn pdf_percent(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / self.total as f64)
            .collect()
    }

    /// The bin center with the highest count (mode of the PDF). Count
    /// ties break toward the *lower-center* bin, so the reported mode is
    /// deterministic in the distribution rather than in bin order
    /// (`max_by_key` would keep the last tied bin, silently shifting the
    /// mode up by a bin width per tie).
    pub fn mode(&self) -> f64 {
        let mut idx = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[idx] {
                idx = i;
            }
        }
        self.centers()[idx]
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept, r²)`. Degenerate inputs (fewer than two
/// points or zero x-variance) return a flat fit with `r² = 0`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "input lengths must match");
    let n = xs.len();
    if n < 2 {
        return (0.0, ys.first().copied().unwrap_or(0.0), 0.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return (0.0, my, 0.0);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy <= 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

/// Pearson correlation coefficient; 0 for degenerate input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let (slope, _, r2) = linear_fit(xs, ys);
    r2.sqrt().copysign(slope)
}

/// Spearman rank correlation — used to compare our simulated Table 1
/// rotation grid against the paper's (shape agreement, not absolute
/// equality).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Simple moving average with window `w` (centered output has the same
/// length as the input; edges use the available partial window). Used to
/// smooth sensing traces before rate extraction.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || xs.is_empty() {
        return xs.to_vec();
    }
    let half = w / 2;
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            mean(&xs[lo..hi])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(median(&xs), 3.0);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_pdf_sums_to_100() {
        let mut h = Histogram::new(-50.0, -20.0, 30);
        for i in 0..1000 {
            h.add(-50.0 + 30.0 * (i as f64 / 1000.0));
        }
        let sum: f64 = h.pdf_percent().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn histogram_outliers_counted() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(-1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_mode() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[1.1, 5.5, 5.6, 5.4, 9.0]);
        assert!((h.mode() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_mode_ties_break_toward_lower_bin() {
        // Two bins with equal counts: the mode must be the lower center,
        // independent of bin order (regression for the max_by_key
        // last-wins tie-break, which reported 8.5 here).
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[2.2, 2.4, 8.5, 8.6]);
        assert!((h.mode() - 2.5).abs() < 1e-9, "mode = {}", h.mode());
        // A strict winner later in the range still wins.
        h.add(8.7);
        assert!((h.mode() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let (m, b, r2) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b + 7.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        let (m, b, r2) = linear_fit(&[1.0], &[5.0]);
        assert_eq!((m, b, r2), (0.0, 5.0, 0.0));
        let (m, _, r2) = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(m, 0.0);
        assert_eq!(r2, 0.0);
    }

    #[test]
    fn pearson_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [1.0, 2.0, 2.9, 4.2];
        let down = [4.0, 3.1, 2.0, 0.9];
        assert!(pearson(&xs, &up) > 0.99);
        assert!(pearson(&xs, &down) < -0.99);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone nonlinear relation has perfect rank correlation.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let sm = moving_average(&xs, 3);
        assert_eq!(sm.len(), xs.len());
        // Interior points become ~ the local mean.
        for v in &sm[1..5] {
            assert!((*v - 20.0 / 3.0).abs() < 3.4);
        }
        // Window of 1 is identity.
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
    }
}
