//! Strongly typed RF units.
//!
//! Thin `f64` newtypes for the physical quantities the simulator passes
//! around, with the conversions that matter (dBm ↔ mW ↔ W, Hz ↔
//! wavelength, degrees ↔ radians). Keeping these as distinct types stops
//! the classic unit bugs — passing a dBm where a watt is expected, or a
//! frequency in GHz where Hz is expected — at compile time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard reference temperature for thermal noise, kelvin.
pub const T0_KELVIN: f64 = 290.0;

macro_rules! linear_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero value.
            pub const ZERO: $name = $name(0.0);

            /// Raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Smaller of two values.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Larger of two values.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// True when the value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, r: $name) -> $name {
                $name(self.0 + r.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, r: $name) -> $name {
                $name(self.0 - r.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, k: f64) -> $name {
                $name(self.0 * k)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, k: f64) -> $name {
                $name(self.0 / k)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, r: $name) -> f64 {
                self.0 / r.0
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, r: $name) {
                self.0 += r.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, r: $name) {
                self.0 -= r.0;
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(p) = f.precision() {
                    write!(f, "{:.*}{}", p, self.0, $suffix)
                } else {
                    write!(f, "{}{}", self.0, $suffix)
                }
            }
        }
    };
}

linear_unit!(
    /// Frequency in hertz.
    Hertz,
    " Hz"
);
linear_unit!(
    /// Length / distance in meters.
    Meters,
    " m"
);
linear_unit!(
    /// Time in seconds.
    Seconds,
    " s"
);
linear_unit!(
    /// Electric potential in volts.
    Volts,
    " V"
);
linear_unit!(
    /// Capacitance in farads.
    Farads,
    " F"
);
linear_unit!(
    /// Inductance in henries.
    Henries,
    " H"
);
linear_unit!(
    /// Resistance in ohms.
    Ohms,
    " Ω"
);
linear_unit!(
    /// Current in amperes.
    Amperes,
    " A"
);
linear_unit!(
    /// Power in watts (linear scale).
    Watts,
    " W"
);
linear_unit!(
    /// Power ratio / gain in decibels (relative, logarithmic).
    Db,
    " dB"
);
linear_unit!(
    /// Absolute power in dB-milliwatts (logarithmic).
    Dbm,
    " dBm"
);
linear_unit!(
    /// Angle in degrees.
    Degrees,
    "°"
);
linear_unit!(
    /// Angle in radians.
    Radians,
    " rad"
);

impl Hertz {
    /// Constructs from a GHz value.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Constructs from a MHz value.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Constructs from a kHz value.
    #[inline]
    pub fn from_khz(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }

    /// Value in GHz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Value in MHz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Free-space wavelength `λ = c / f`.
    #[inline]
    pub fn wavelength(self) -> Meters {
        Meters(SPEED_OF_LIGHT / self.0)
    }

    /// Angular frequency `ω = 2πf` in rad/s.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }

    /// Free-space wavenumber `k = 2π/λ` in rad/m.
    #[inline]
    pub fn wavenumber(self) -> f64 {
        self.angular() / SPEED_OF_LIGHT
    }
}

impl Meters {
    /// Constructs from centimeters.
    #[inline]
    pub fn from_cm(cm: f64) -> Self {
        Meters(cm / 100.0)
    }

    /// Constructs from millimeters.
    #[inline]
    pub fn from_mm(mm: f64) -> Self {
        Meters(mm / 1000.0)
    }

    /// Value in centimeters.
    #[inline]
    pub fn cm(self) -> f64 {
        self.0 * 100.0
    }

    /// Value in millimeters.
    #[inline]
    pub fn mm(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Seconds {
    /// Constructs from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Seconds(ms / 1e3)
    }

    /// Constructs from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Seconds(us / 1e6)
    }

    /// Value in milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 * 1e3
    }
}

impl Farads {
    /// Constructs from picofarads.
    #[inline]
    pub fn from_pf(pf: f64) -> Self {
        Farads(pf * 1e-12)
    }

    /// Value in picofarads.
    #[inline]
    pub fn pf(self) -> f64 {
        self.0 * 1e12
    }
}

impl Henries {
    /// Constructs from nanohenries.
    #[inline]
    pub fn from_nh(nh: f64) -> Self {
        Henries(nh * 1e-9)
    }

    /// Value in nanohenries.
    #[inline]
    pub fn nh(self) -> f64 {
        self.0 * 1e9
    }
}

impl Watts {
    /// Constructs from milliwatts.
    #[inline]
    pub fn from_mw(mw: f64) -> Self {
        Watts(mw / 1e3)
    }

    /// Value in milliwatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }

    /// Converts to absolute dBm. Non-positive power maps to −∞ dBm.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm(f64::NEG_INFINITY)
        } else {
            Dbm(10.0 * self.mw().log10())
        }
    }
}

impl Dbm {
    /// Converts to linear watts.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts(10f64.powf(self.0 / 10.0) / 1e3)
    }

    /// Converts to linear milliwatts.
    #[inline]
    pub fn to_mw(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Adds a relative gain/loss in dB.
    #[inline]
    pub fn gain(self, db: Db) -> Dbm {
        Dbm(self.0 + db.0)
    }

    /// Difference of two absolute levels, as a relative dB value.
    #[inline]
    pub fn minus(self, other: Dbm) -> Db {
        Db(self.0 - other.0)
    }
}

impl Db {
    /// Converts a linear power *ratio* to dB. Non-positive ratios map to −∞.
    #[inline]
    pub fn from_linear(ratio: f64) -> Db {
        if ratio <= 0.0 {
            Db(f64::NEG_INFINITY)
        } else {
            Db(10.0 * ratio.log10())
        }
    }

    /// Converts to a linear power ratio.
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts an *amplitude* (field/voltage) ratio to dB (20·log10).
    #[inline]
    pub fn from_amplitude(ratio: f64) -> Db {
        if ratio <= 0.0 {
            Db(f64::NEG_INFINITY)
        } else {
            Db(20.0 * ratio.log10())
        }
    }

    /// Converts to an amplitude ratio.
    #[inline]
    pub fn to_amplitude(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

impl Degrees {
    /// Converts to radians.
    #[inline]
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }

    /// Normalizes to `[0, 360)`.
    #[inline]
    pub fn normalized(self) -> Degrees {
        Degrees(self.0.rem_euclid(360.0))
    }

    /// Normalizes to `(-180, 180]`.
    pub fn wrapped(self) -> Degrees {
        let mut d = self.0.rem_euclid(360.0);
        if d > 180.0 {
            d -= 360.0;
        }
        Degrees(d)
    }
}

impl Radians {
    /// Converts to degrees.
    #[inline]
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Normalizes to `(-π, π]`.
    pub fn wrapped(self) -> Radians {
        let tau = std::f64::consts::TAU;
        let mut r = self.0.rem_euclid(tau);
        if r > std::f64::consts::PI {
            r -= tau;
        }
        Radians(r)
    }
}

/// Thermal noise power `kTB` at the standard temperature, as dBm.
///
/// At 290 K this is the familiar −174 dBm/Hz plus `10·log10(bandwidth)`.
pub fn thermal_noise_dbm(bandwidth: Hertz) -> Dbm {
    Watts(BOLTZMANN * T0_KELVIN * bandwidth.0).to_dbm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for &mw in &[0.002, 1.0, 5.0, 100.0, 1000.0] {
            let p = Watts::from_mw(mw);
            let back = p.to_dbm().to_watts();
            assert!((back.mw() - mw).abs() / mw < 1e-12);
        }
    }

    #[test]
    fn known_dbm_values() {
        assert!((Watts::from_mw(1.0).to_dbm().0 - 0.0).abs() < 1e-12);
        assert!((Watts::from_mw(100.0).to_dbm().0 - 20.0).abs() < 1e-12);
        assert!((Watts(1.0).to_dbm().0 - 30.0).abs() < 1e-12);
        assert!((Dbm(-30.0).to_mw() - 0.001).abs() < 1e-15);
    }

    #[test]
    fn zero_power_is_negative_infinity_dbm() {
        assert_eq!(Watts(0.0).to_dbm().0, f64::NEG_INFINITY);
        assert_eq!(Db::from_linear(0.0).0, f64::NEG_INFINITY);
    }

    #[test]
    fn db_linear_round_trip() {
        for &db in &[-40.0, -3.0, 0.0, 10.0, 17.0] {
            assert!((Db(db).to_linear().log10() * 10.0 - db).abs() < 1e-12);
            assert!((Db::from_linear(Db(db).to_linear()).0 - db).abs() < 1e-12);
        }
    }

    #[test]
    fn amplitude_vs_power_db() {
        // An amplitude ratio of 10 is 20 dB.
        assert!((Db::from_amplitude(10.0).0 - 20.0).abs() < 1e-12);
        assert!((Db(6.0).to_amplitude() - 1.9952623).abs() < 1e-6);
    }

    #[test]
    fn wavelength_at_2_44_ghz() {
        let wl = Hertz::from_ghz(2.44).wavelength();
        assert!((wl.cm() - 12.286).abs() < 0.01, "λ = {} cm", wl.cm());
    }

    #[test]
    fn frequency_constructors() {
        assert_eq!(Hertz::from_ghz(2.4).0, 2.4e9);
        assert_eq!(Hertz::from_mhz(500.0).0, 5e8);
        assert_eq!(Hertz::from_khz(500.0).0, 5e5);
        assert!((Hertz::from_ghz(2.4).mhz() - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn meters_conversions() {
        assert_eq!(Meters::from_cm(24.0).0, 0.24);
        assert_eq!(Meters::from_mm(5.0).0, 0.005);
        assert!((Meters(0.48).mm() - 480.0).abs() < 1e-9);
    }

    #[test]
    fn angle_wrapping() {
        assert!((Degrees(370.0).normalized().0 - 10.0).abs() < 1e-12);
        assert!((Degrees(190.0).wrapped().0 + 170.0).abs() < 1e-12);
        assert!((Degrees(-190.0).wrapped().0 - 170.0).abs() < 1e-12);
        let r = Radians(3.0 * std::f64::consts::PI).wrapped();
        assert!((r.0 - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn degree_radian_round_trip() {
        let d = Degrees(48.7);
        assert!((d.to_radians().to_degrees().0 - 48.7).abs() < 1e-12);
    }

    #[test]
    fn thermal_noise_1mhz() {
        // kTB for 1 MHz ≈ −114 dBm.
        let n = thermal_noise_dbm(Hertz::from_mhz(1.0));
        assert!((n.0 + 113.97).abs() < 0.05, "noise = {n}");
    }

    #[test]
    fn gain_arithmetic() {
        let p = Dbm(-30.0).gain(Db(15.0));
        assert!((p.0 + 15.0).abs() < 1e-12);
        assert!((Dbm(-25.0).minus(Dbm(-40.0)).0 - 15.0).abs() < 1e-12);
    }

    #[test]
    fn unit_ordering_and_clamp() {
        assert!(Dbm(-30.0) > Dbm(-45.0));
        assert_eq!(Volts(35.0).clamp(Volts(0.0), Volts(30.0)), Volts(30.0));
        assert_eq!(Hertz(5.0).max(Hertz(3.0)), Hertz(5.0));
    }

    #[test]
    fn farads_picofarads() {
        let c = Farads::from_pf(2.41);
        assert!((c.pf() - 2.41).abs() < 1e-12);
        assert!((c.0 - 2.41e-12).abs() < 1e-24);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{:.1}", Dbm(-32.55)), "-32.5 dBm");
        assert_eq!(format!("{:.2}", Degrees(45.125)), "45.12°");
    }
}
