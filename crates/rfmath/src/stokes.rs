//! Stokes parameters and the Poincaré-sphere view of polarization.
//!
//! Jones vectors describe fully polarized fields; Stokes parameters
//! additionally describe *partially* polarized fields (e.g. after rich
//! multipath mixes orientations). The controller never needs Stokes
//! algebra, but the propagation substrate uses it to reason about
//! depolarization in the laboratory environment, and the test-suite uses
//! the Jones↔Stokes mapping as an independent cross-check of the Jones
//! implementation.

use crate::jones::JonesVector;
use crate::units::Radians;

/// Stokes parameters `(S0, S1, S2, S3)` of a (possibly partially
/// polarized) wave. `S0` is total intensity; `S1` H/V balance; `S2`
/// ±45° balance; `S3` circular balance.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Stokes {
    /// Total intensity.
    pub s0: f64,
    /// Linear horizontal (+) vs vertical (−) power balance.
    pub s1: f64,
    /// Linear +45° (+) vs −45° (−) power balance.
    pub s2: f64,
    /// Right (−) vs left (+) circular balance (convention follows our
    /// `exp(+jωt)` phasor sign).
    pub s3: f64,
}

impl Stokes {
    /// Unpolarized wave of intensity `s0`.
    pub fn unpolarized(s0: f64) -> Self {
        Self {
            s0,
            s1: 0.0,
            s2: 0.0,
            s3: 0.0,
        }
    }

    /// Stokes parameters of a fully polarized Jones state.
    pub fn from_jones(j: JonesVector) -> Self {
        let (ex, ey) = j.components();
        Self {
            s0: ex.norm_sqr() + ey.norm_sqr(),
            s1: ex.norm_sqr() - ey.norm_sqr(),
            s2: 2.0 * (ex * ey.conj()).re,
            s3: 2.0 * (ex.conj() * ey).im,
        }
    }

    /// Degree of polarization `√(S1²+S2²+S3²)/S0 ∈ [0, 1]`.
    pub fn degree_of_polarization(self) -> f64 {
        if self.s0 <= 0.0 {
            return 0.0;
        }
        ((self.s1 * self.s1 + self.s2 * self.s2 + self.s3 * self.s3).sqrt() / self.s0)
            .clamp(0.0, 1.0)
    }

    /// Orientation ψ of the polarization ellipse, `(-π/2, π/2]`.
    pub fn orientation(self) -> Radians {
        let mut psi = 0.5 * self.s2.atan2(self.s1);
        if psi <= -std::f64::consts::FRAC_PI_2 {
            psi += std::f64::consts::PI;
        } else if psi > std::f64::consts::FRAC_PI_2 {
            psi -= std::f64::consts::PI;
        }
        Radians(psi)
    }

    /// Ellipticity angle χ, `[-π/4, π/4]`.
    pub fn ellipticity(self) -> Radians {
        let p = (self.s1 * self.s1 + self.s2 * self.s2 + self.s3 * self.s3).sqrt();
        if p <= 0.0 {
            return Radians(0.0);
        }
        Radians(0.5 * (self.s3 / p).clamp(-1.0, 1.0).asin())
    }

    /// Incoherent superposition (adds component-wise): models summing
    /// mutually incoherent multipath arrivals.
    pub fn add_incoherent(self, other: Stokes) -> Stokes {
        Stokes {
            s0: self.s0 + other.s0,
            s1: self.s1 + other.s1,
            s2: self.s2 + other.s2,
            s3: self.s3 + other.s3,
        }
    }

    /// Splits into fully polarized + unpolarized parts, returning
    /// `(polarized, unpolarized)` with `polarized + unpolarized == self`.
    pub fn decompose(self) -> (Stokes, Stokes) {
        let p = self.degree_of_polarization();
        let pol = Stokes {
            s0: self.s0 * p,
            s1: self.s1,
            s2: self.s2,
            s3: self.s3,
        };
        let unpol = Stokes::unpolarized(self.s0 * (1.0 - p));
        (pol, unpol)
    }

    /// Received power fraction through a polarizing receive antenna whose
    /// co-polarized Jones state is `rx` (projective measurement on the
    /// Poincaré sphere). The unpolarized component couples at 1/2.
    pub fn received_fraction(self, rx: JonesVector) -> f64 {
        if self.s0 <= 0.0 {
            return 0.0;
        }
        let rx_stokes = Stokes::from_jones(rx.normalized().unwrap_or(rx));
        // ½·(1 + ŝ·r̂·p) combining polarized and unpolarized parts:
        let p = self.degree_of_polarization();
        let smag = (self.s1 * self.s1 + self.s2 * self.s2 + self.s3 * self.s3).sqrt();
        let dot = if smag > 0.0 {
            (self.s1 * rx_stokes.s1 + self.s2 * rx_stokes.s2 + self.s3 * rx_stokes.s3) / smag
        } else {
            0.0
        };
        0.5 * (1.0 + p * dot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jones::JonesVector;

    const TOL: f64 = 1e-10;

    #[test]
    fn jones_round_trip_orientation() {
        for deg in [0.0, 20.0, 45.0, 75.0] {
            let j = JonesVector::linear_deg(deg);
            let s = Stokes::from_jones(j);
            assert!(
                (s.orientation().to_degrees().0 - deg).abs() < 1e-9,
                "deg={deg}"
            );
            assert!((s.degree_of_polarization() - 1.0).abs() < TOL);
            assert!(s.ellipticity().0.abs() < TOL);
        }
    }

    #[test]
    fn circular_states_sit_at_poles() {
        let l = Stokes::from_jones(JonesVector::circular_left());
        let r = Stokes::from_jones(JonesVector::circular_right());
        assert!((l.s3 - 1.0).abs() < TOL);
        assert!((r.s3 + 1.0).abs() < TOL);
        assert!(l.s1.abs() < TOL && l.s2.abs() < TOL);
    }

    #[test]
    fn incoherent_sum_of_orthogonal_depolarizes() {
        let h = Stokes::from_jones(JonesVector::horizontal());
        let v = Stokes::from_jones(JonesVector::vertical());
        let sum = h.add_incoherent(v);
        assert!(sum.degree_of_polarization() < TOL);
        assert!((sum.s0 - 2.0).abs() < TOL);
    }

    #[test]
    fn decompose_reconstructs() {
        let mixed = Stokes {
            s0: 2.0,
            s1: 0.8,
            s2: 0.3,
            s3: -0.1,
        };
        let (pol, unpol) = mixed.decompose();
        assert!((pol.s0 + unpol.s0 - mixed.s0).abs() < TOL);
        assert!((pol.degree_of_polarization() - 1.0).abs() < 1e-9);
        assert!(unpol.degree_of_polarization() < TOL);
    }

    #[test]
    fn received_fraction_matches_plf_for_pure_states() {
        // For fully polarized input, the Stokes projective measurement must
        // agree with the Jones PLF — a strong cross-check of both modules.
        let rx = JonesVector::linear_deg(25.0);
        for deg in [0.0, 10.0, 55.0, 90.0, 115.0] {
            let tx = JonesVector::linear_deg(deg);
            let via_jones = tx.polarization_loss_factor(rx);
            let via_stokes = Stokes::from_jones(tx).received_fraction(rx);
            assert!(
                (via_jones - via_stokes).abs() < 1e-9,
                "deg={deg}: {via_jones} vs {via_stokes}"
            );
        }
    }

    #[test]
    fn unpolarized_couples_at_half() {
        let u = Stokes::unpolarized(1.0);
        assert!((u.received_fraction(JonesVector::horizontal()) - 0.5).abs() < TOL);
        assert!((u.received_fraction(JonesVector::circular_left()) - 0.5).abs() < TOL);
    }
}
