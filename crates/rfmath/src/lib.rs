//! # rfmath — mathematical substrate for the LLAMA metasurface simulator
//!
//! Self-contained complex arithmetic, 2×2 complex linear algebra, Jones
//! calculus (the polarization algebra of the paper's §2), Stokes
//! parameters, strongly-typed RF units, interpolation grids, descriptive
//! statistics, deterministic RNG streams and the unified telemetry
//! plane (recorders, histograms, span timing) the serving stack
//! reports into.
//!
//! Everything downstream — the microwave network models, the metasurface,
//! the propagation environment and the control plane — is expressed in
//! terms of these types.
//!
//! ## Quick example
//!
//! ```
//! use rfmath::jones::{JonesMatrix, JonesVector};
//! use rfmath::units::Radians;
//! use std::f64::consts::PI;
//!
//! // A vertically polarized transmitter facing a horizontally polarized
//! // receiver couples no power…
//! let tx = JonesVector::vertical();
//! let rx = JonesVector::horizontal();
//! assert!(tx.polarization_loss_factor(rx) < 1e-12);
//!
//! // …until a δ = π polarization rotator (Eq. 8 of the paper) turns the
//! // wave by 90° in flight.
//! let rotator = JonesMatrix::rotator(Radians(0.0), Radians(0.0), Radians(PI));
//! let rotated = rotator.apply(tx);
//! assert!((rotated.polarization_loss_factor(rx) - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod complex;
pub mod interp;
pub mod jones;
pub mod matrix;
pub mod par;
pub mod rng;
pub mod stats;
pub mod stokes;
pub mod telemetry;
pub mod units;
pub mod vec2;

pub use complex::{c64, Complex};
pub use jones::{JonesMatrix, JonesVector};
pub use matrix::{Mat2, Vec2};
pub use stokes::Stokes;
pub use units::{
    Db, Dbm, Degrees, Farads, Henries, Hertz, Meters, Ohms, Radians, Seconds, Volts, Watts,
};
pub use vec2::Point2;
