//! Complex arithmetic for RF field quantities.
//!
//! A small, self-contained `f64` complex type. The simulator represents
//! phasors (field amplitudes, S-parameters, impedances, propagation
//! constants) as [`Complex`] values; implementing it here keeps the
//! workspace dependency-free and lets us expose exactly the operations
//! microwave theory needs (polar forms, principal arguments, square roots
//! on the physical branch).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` with `f64` components.
///
/// RF engineering convention: the imaginary unit is written `j` and time
/// dependence is `exp(+jωt)`, so a *lossy* wave attenuates as
/// `exp(-jγz)` with `Im(γ) < 0` for passive media.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex = c64(1.0, 0.0);
    /// The imaginary unit `j`.
    pub const J: Complex = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates `r·exp(jθ)` from polar magnitude `r` and angle `theta` (radians).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `exp(jθ)` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (power of a unit-impedance phasor).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self {
            re: self.abs().ln(),
            im: self.arg(),
        }
    }

    /// Principal square root (branch cut on the negative real axis, result
    /// in the right half-plane) — the branch that keeps passive impedances
    /// passive (`Re √z ≥ 0`).
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Complex power `z^w = exp(w · ln z)` on principal branches.
    pub fn powc(self, w: Self) -> Self {
        if self == Self::ZERO {
            return Self::ZERO;
        }
        (w * self.ln()).exp()
    }

    /// Real power `z^p`.
    pub fn powf(self, p: f64) -> Self {
        if self == Self::ZERO {
            return Self::ZERO;
        }
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.powf(p), theta * p)
    }

    /// Complex hyperbolic cosine (line-section ABCD entries).
    pub fn cosh(self) -> Self {
        // cosh(a + jb) = cosh a cos b + j sinh a sin b
        Self {
            re: self.re.cosh() * self.im.cos(),
            im: self.re.sinh() * self.im.sin(),
        }
    }

    /// Complex hyperbolic sine (line-section ABCD entries).
    pub fn sinh(self) -> Self {
        // sinh(a + jb) = sinh a cos b + j cosh a sin b
        Self {
            re: self.re.sinh() * self.im.cos(),
            im: self.re.cosh() * self.im.sin(),
        }
    }

    /// Complex tangent.
    pub fn tan(self) -> Self {
        // tan z = sin z / cos z ; computed via the real/hyperbolic split.
        let (s2, c2) = ((2.0 * self.re).sin(), (2.0 * self.re).cos());
        let (sh2, ch2) = ((2.0 * self.im).sinh(), (2.0 * self.im).cosh());
        let d = c2 + ch2;
        Self {
            re: s2 / d,
            im: sh2 / d,
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        c64(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl Sub<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        c64(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        Complex::real(self) / rhs
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}{:+.6}j)", self.re, self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}{:+.*}j", p, self.re, p, self.im)
        } else {
            write!(f, "{}{:+}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex::ONE, c64(1.0, 0.0));
        assert_eq!(Complex::J * Complex::J, -Complex::ONE);
        assert_eq!(Complex::real(3.0), c64(3.0, 0.0));
        assert_eq!(Complex::imag(-2.0), c64(0.0, -2.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn field_arithmetic() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert!(((a + b) - c64(-2.0, 2.5)).abs() < TOL);
        assert!(((a - b) - c64(4.0, 1.5)).abs() < TOL);
        // (1+2j)(-3+0.5j) = -3 + 0.5j - 6j + j² = -4 - 5.5j
        assert!(((a * b) - c64(-4.0, -5.5)).abs() < TOL);
        assert!(((a / b) * b - a).abs() < TOL);
    }

    #[test]
    fn inverse_is_reciprocal() {
        let z = c64(0.3, -1.7);
        assert!((z * z.inv() - Complex::ONE).abs() < TOL);
    }

    #[test]
    fn conj_properties() {
        let z = c64(1.2, -0.8);
        assert!((z * z.conj()).im.abs() < TOL);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < TOL);
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = c64(0.4, 1.1);
        assert!((z.exp().ln() - z).abs() < 1e-10);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = Complex::imag(std::f64::consts::PI).exp();
        assert!((z - c64(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn sqrt_principal_branch() {
        // √(-1) = +j on the principal branch.
        let z = Complex::real(-1.0).sqrt();
        assert!((z - Complex::J).abs() < TOL);
        // √z stays in the right half-plane.
        for &(re, im) in &[(3.0, 4.0), (-3.0, 4.0), (-3.0, -4.0), (3.0, -4.0)] {
            let s = c64(re, im).sqrt();
            assert!(s.re >= -TOL, "sqrt({re},{im}) left half plane: {s:?}");
            assert!((s * s - c64(re, im)).abs() < 1e-10);
        }
    }

    #[test]
    fn sqrt_of_zero() {
        assert_eq!(Complex::ZERO.sqrt(), Complex::ZERO);
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = c64(1.1, -0.3);
        let z3 = z * z * z;
        assert!((z.powf(3.0) - z3).abs() < 1e-10);
    }

    #[test]
    fn powc_real_exponent_consistency() {
        let z = c64(0.8, 0.4);
        assert!((z.powc(Complex::real(2.0)) - z * z).abs() < 1e-10);
    }

    #[test]
    fn hyperbolic_identity() {
        // cosh² − sinh² = 1 for complex arguments too.
        let z = c64(0.3, 0.9);
        let id = z.cosh() * z.cosh() - z.sinh() * z.sinh();
        assert!((id - Complex::ONE).abs() < 1e-10);
    }

    #[test]
    fn tan_matches_real_tan_on_real_axis() {
        let z = Complex::real(0.6);
        assert!((z.tan().re - 0.6_f64.tan()).abs() < 1e-12);
        assert!(z.tan().im.abs() < 1e-12);
    }

    #[test]
    fn scalar_mixed_ops() {
        let z = c64(2.0, -1.0);
        assert_eq!(z + 1.0, c64(3.0, -1.0));
        assert_eq!(1.0 + z, c64(3.0, -1.0));
        assert_eq!(z * 2.0, c64(4.0, -2.0));
        assert_eq!(2.0 * z, c64(4.0, -2.0));
        assert!((1.0 / z * z - Complex::ONE).abs() < TOL);
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..10).map(|k| c64(k as f64, -(k as f64))).sum();
        assert_eq!(total, c64(45.0, -45.0));
    }

    #[test]
    fn display_formats() {
        let z = c64(1.25, -0.5);
        assert_eq!(format!("{z:.2}"), "1.25-0.50j");
    }
}
