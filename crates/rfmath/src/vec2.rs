//! Planar points and vectors — the room-coordinate substrate.
//!
//! Every deployment in the paper is a *room*: AP, surface and devices at
//! planar positions. [`Point2`] is the small value type the geometry
//! layers build on — used both as a position (a point in the room, in
//! meters) and as a displacement (the difference of two points). It is
//! deliberately minimal: `f64` components, value semantics, and the
//! handful of operations ray geometry needs (norms, dots, crosses,
//! interpolation, point-to-segment distance for line-of-sight tests).
//!
//! Not to be confused with [`crate::matrix::Vec2`], the *complex*
//! two-vector of the Jones/polarization algebra.
//!
//! ## Numerical contract
//!
//! [`Point2::distance`] is `sqrt(dx² + dy²)`. For axis-aligned
//! displacements (`dy == 0`) this is `sqrt(dx²)`, which IEEE-754
//! round-to-nearest evaluates to exactly `|dx|` — the identity the
//! collinear compatibility layer of `propagation::rays` relies on to
//! reproduce the legacy scalar-distance geometry bit for bit.

use std::ops::{Add, Mul, Neg, Sub};

/// A point (or displacement) in the room plane, meters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point2 {
    /// X coordinate (meters).
    pub x: f64,
    /// Y coordinate (meters).
    pub y: f64,
}

impl Point2 {
    /// The origin.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// A point from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// A point from coordinates in centimeters.
    pub fn from_cm(x_cm: f64, y_cm: f64) -> Self {
        Self {
            x: x_cm / 100.0,
            y: y_cm / 100.0,
        }
    }

    /// Dot product.
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z component of the 3-D cross): zero iff
    /// the two displacements are parallel.
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        (other - self).norm()
    }

    /// Unit vector in this displacement's direction; `(1, 0)` for the
    /// zero vector (a stable convention for degenerate geometry).
    pub fn unit(self) -> Point2 {
        let n = self.norm();
        if n == 0.0 {
            Point2::new(1.0, 0.0)
        } else {
            Point2::new(self.x / n, self.y / n)
        }
    }

    /// This displacement rotated +90° (counter-clockwise): `(-y, x)`.
    pub fn perp(self) -> Point2 {
        Point2::new(-self.y, self.x)
    }

    /// Linear interpolation toward `other`: `self + (other − self)·t`,
    /// evaluated per axis with the same arithmetic the legacy 1-D
    /// waypoint interpolator used (`a + (b − a)·t`).
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Distance from this point to the closed segment `a`→`b` (the
    /// line-of-sight occlusion test: a body whose center passes within
    /// its radius of the segment blocks the link).
    pub fn segment_distance(self, a: Point2, b: Point2) -> f64 {
        let ab = b - a;
        let len_sq = ab.dot(ab);
        if len_sq == 0.0 {
            return self.distance(a);
        }
        let t = ((self - a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.distance(a + ab * t)
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_aligned_distance_is_exact() {
        // The collinear-compatibility identity: sqrt(x²) == |x| under
        // IEEE round-to-nearest, for values across many binades.
        for x in [0.36, 0.108, 1e-3, 2.5, 3.3333333333333335, 123.456] {
            let d = Point2::ORIGIN.distance(Point2::new(x, 0.0));
            assert_eq!(d.to_bits(), x.to_bits(), "sqrt({x}²) must round to {x}");
            let d = Point2::new(0.7, x).distance(Point2::new(0.7, 0.0));
            assert_eq!(d.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn unit_handles_degenerate_vectors() {
        assert_eq!(Point2::ORIGIN.unit(), Point2::new(1.0, 0.0));
        let u = Point2::new(0.0, -2.0).unit();
        assert_eq!(u, Point2::new(0.0, -1.0));
    }

    #[test]
    fn cross_detects_collinearity() {
        let u = Point2::new(0.6, 0.0);
        let v = Point2::new(0.18, 0.0);
        assert_eq!(u.cross(v), 0.0);
        assert!(u.cross(Point2::new(0.18, 0.01)) != 0.0);
    }

    #[test]
    fn lerp_matches_scalar_interpolation() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -2.0);
        let mid = a.lerp(b, 0.5);
        assert!((mid.x - 2.0).abs() < 1e-15);
        assert!((mid.y - 0.0).abs() < 1e-15);
        // Endpoints reproduce exactly.
        assert_eq!(a.lerp(b, 0.0), a);
        let end = a.lerp(b, 1.0);
        assert!((end.x - b.x).abs() < 1e-15 && (end.y - b.y).abs() < 1e-15);
    }

    #[test]
    fn segment_distance_covers_interior_and_endpoints() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(4.0, 0.0);
        // Perpendicular foot inside the segment.
        assert!((Point2::new(2.0, 1.5).segment_distance(a, b) - 1.5).abs() < 1e-12);
        // Beyond an endpoint: distance to the endpoint.
        assert!((Point2::new(-3.0, 4.0).segment_distance(a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        assert!((Point2::new(3.0, 4.0).segment_distance(a, a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn perp_rotates_ccw() {
        let u = Point2::new(1.0, 0.0);
        assert_eq!(u.perp(), Point2::new(0.0, 1.0));
        assert_eq!(u.perp().perp(), -u);
    }
}
