//! Interpolation utilities: 1-D linear interpolation over sampled curves
//! and bilinear interpolation over rectangular grids.
//!
//! Used for varactor C–V curves, calibration tables (bias → rotation) and
//! heatmap post-processing. All lookups clamp to the table edges rather
//! than extrapolating, which is the safe behaviour for physical device
//! curves (capacitance does not keep shrinking past the datasheet range).

/// A 1-D curve `y(x)` sampled at strictly increasing `x` knots, evaluated
/// by linear interpolation with edge clamping.
#[derive(Clone, Debug)]
pub struct Curve1D {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Curve1D {
    /// Builds a curve from knot vectors.
    ///
    /// # Panics
    /// Panics if the lengths differ, fewer than 2 knots are given, or the
    /// `xs` are not strictly increasing/finite.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "knot vectors must have equal length");
        assert!(xs.len() >= 2, "need at least two knots");
        for w in xs.windows(2) {
            assert!(
                w[0].is_finite() && w[1].is_finite() && w[0] < w[1],
                "xs must be strictly increasing and finite"
            );
        }
        Self { xs, ys }
    }

    /// Builds a curve from `(x, y)` pairs.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        let (xs, ys) = points.iter().copied().unzip();
        Self::new(xs, ys)
    }

    /// Domain `[min_x, max_x]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty"))
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always false (construction requires ≥ 2 knots); provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the curve at `x` with edge clamping.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().expect("non-empty") {
            return *self.ys.last().expect("non-empty");
        }
        // Binary search for the bracketing segment.
        let i = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    /// Inverts a *monotone* curve: finds `x` with `y(x) = y` by bisection
    /// over the knot span. Returns `None` when `y` is outside the curve's
    /// range or the curve is not monotone over its domain.
    pub fn invert(&self, y: f64) -> Option<f64> {
        let n = self.ys.len();
        let increasing = self.ys[n - 1] >= self.ys[0];
        // Verify monotonicity.
        for w in self.ys.windows(2) {
            if increasing && w[1] < w[0] - 1e-12 {
                return None;
            }
            if !increasing && w[1] > w[0] + 1e-12 {
                return None;
            }
        }
        let (lo_y, hi_y) = if increasing {
            (self.ys[0], self.ys[n - 1])
        } else {
            (self.ys[n - 1], self.ys[0])
        };
        if y < lo_y - 1e-12 || y > hi_y + 1e-12 {
            return None;
        }
        let (mut a, mut b) = self.domain();
        for _ in 0..200 {
            let mid = 0.5 * (a + b);
            let fm = self.eval(mid);
            let below = if increasing { fm < y } else { fm > y };
            if below {
                a = mid;
            } else {
                b = mid;
            }
        }
        Some(0.5 * (a + b))
    }

    /// The knot `x` values.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The knot `y` values.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// A rectangular grid `z(x, y)` with bilinear interpolation and edge
/// clamping. Rows index `y`, columns index `x`.
#[derive(Clone, Debug)]
pub struct Grid2D {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major: `z[iy][ix]` flattened as `z[iy * xs.len() + ix]`.
    zs: Vec<f64>,
}

impl Grid2D {
    /// Builds a grid from axes and a row-major value table.
    ///
    /// # Panics
    /// Panics if axes are not strictly increasing, have fewer than 2
    /// points, or `zs.len() != xs.len() * ys.len()`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<f64>) -> Self {
        assert!(xs.len() >= 2 && ys.len() >= 2, "need at least a 2×2 grid");
        for w in xs.windows(2) {
            assert!(w[0] < w[1], "xs must be strictly increasing");
        }
        for w in ys.windows(2) {
            assert!(w[0] < w[1], "ys must be strictly increasing");
        }
        assert_eq!(zs.len(), xs.len() * ys.len(), "value table size mismatch");
        Self { xs, ys, zs }
    }

    /// Axis accessor.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Axis accessor.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Direct (un-interpolated) access to `z[iy][ix]`.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.zs[iy * self.xs.len() + ix]
    }

    fn bracket(axis: &[f64], v: f64) -> (usize, f64) {
        if v <= axis[0] {
            return (0, 0.0);
        }
        if v >= axis[axis.len() - 1] {
            return (axis.len() - 2, 1.0);
        }
        let i = match axis.binary_search_by(|a| a.total_cmp(&v)) {
            Ok(i) => {
                return (
                    i.min(axis.len() - 2),
                    if i == axis.len() - 1 { 1.0 } else { 0.0 },
                )
            }
            Err(i) => i - 1,
        };
        let t = (v - axis[i]) / (axis[i + 1] - axis[i]);
        (i, t)
    }

    /// Bilinear interpolation at `(x, y)` with edge clamping.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let (ix, tx) = Self::bracket(&self.xs, x);
        let (iy, ty) = Self::bracket(&self.ys, y);
        let z00 = self.at(ix, iy);
        let z10 = self.at(ix + 1, iy);
        let z01 = self.at(ix, iy + 1);
        let z11 = self.at(ix + 1, iy + 1);
        let z0 = z00 + tx * (z10 - z00);
        let z1 = z01 + tx * (z11 - z01);
        z0 + ty * (z1 - z0)
    }

    /// Grid-point argmax: returns `(x, y, z)` of the largest sample.
    pub fn argmax(&self) -> (f64, f64, f64) {
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for iy in 0..self.ys.len() {
            for ix in 0..self.xs.len() {
                let z = self.at(ix, iy);
                if z > best.2 {
                    best = (ix, iy, z);
                }
            }
        }
        (self.xs[best.0], self.ys[best.1], best.2)
    }

    /// Grid-point argmin: returns `(x, y, z)` of the smallest sample.
    pub fn argmin(&self) -> (f64, f64, f64) {
        let mut best = (0usize, 0usize, f64::INFINITY);
        for iy in 0..self.ys.len() {
            for ix in 0..self.xs.len() {
                let z = self.at(ix, iy);
                if z < best.2 {
                    best = (ix, iy, z);
                }
            }
        }
        (self.xs[best.0], self.ys[best.1], best.2)
    }

    /// Value range `(min, max)` over all samples.
    pub fn range(&self) -> (f64, f64) {
        self.zs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &z| {
                (lo.min(z), hi.max(z))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_curve_is_exact_on_lines() {
        let c = Curve1D::new(vec![0.0, 1.0, 2.0], vec![1.0, 3.0, 5.0]);
        assert!((c.eval(0.5) - 2.0).abs() < 1e-12);
        assert!((c.eval(1.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn curve_clamps_at_edges() {
        let c = Curve1D::new(vec![0.0, 1.0], vec![10.0, 20.0]);
        assert_eq!(c.eval(-5.0), 10.0);
        assert_eq!(c.eval(99.0), 20.0);
    }

    #[test]
    fn curve_hits_knots_exactly() {
        let c = Curve1D::from_points(&[(2.0, 2.41), (15.0, 0.84)]);
        assert_eq!(c.eval(2.0), 2.41);
        assert_eq!(c.eval(15.0), 0.84);
    }

    #[test]
    fn invert_monotone_decreasing() {
        let c = Curve1D::from_points(&[(2.0, 2.41), (6.0, 1.5), (15.0, 0.84)]);
        let x = c.invert(1.5).unwrap();
        assert!((x - 6.0).abs() < 1e-6);
        let x2 = c.invert(2.0).unwrap();
        assert!((c.eval(x2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invert_rejects_out_of_range() {
        let c = Curve1D::from_points(&[(0.0, 0.0), (1.0, 1.0)]);
        assert!(c.invert(2.0).is_none());
        assert!(c.invert(-0.5).is_none());
    }

    #[test]
    fn invert_rejects_non_monotone() {
        let c = Curve1D::from_points(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert!(c.invert(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn curve_rejects_unsorted() {
        let _ = Curve1D::new(vec![1.0, 0.0], vec![0.0, 1.0]);
    }

    #[test]
    fn bilinear_exact_on_planes() {
        // z = 2x + 3y + 1 is reproduced exactly by bilinear interpolation.
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![0.0, 2.0];
        let mut zs = Vec::new();
        for &y in &ys {
            for &x in &xs {
                zs.push(2.0 * x + 3.0 * y + 1.0);
            }
        }
        let g = Grid2D::new(xs, ys, zs);
        assert!((g.eval(0.5, 1.0) - (1.0 + 3.0 + 1.0)).abs() < 1e-12);
        assert!((g.eval(1.7, 0.3) - (3.4 + 0.9 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn grid_clamps_at_edges() {
        let g = Grid2D::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.eval(-1.0, -1.0), 1.0);
        assert_eq!(g.eval(5.0, 5.0), 4.0);
    }

    #[test]
    fn grid_argmax_argmin() {
        let g = Grid2D::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0],
            vec![0.0, 5.0, 1.0, -2.0, 3.0, 4.0],
        );
        let (x, y, z) = g.argmax();
        assert_eq!((x, y, z), (1.0, 0.0, 5.0));
        let (x, y, z) = g.argmin();
        assert_eq!((x, y, z), (0.0, 1.0, -2.0));
        assert_eq!(g.range(), (-2.0, 5.0));
    }
}
