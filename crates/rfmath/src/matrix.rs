//! 2×2 complex matrices.
//!
//! The workhorse linear algebra of the simulator: Jones matrices
//! (polarization transforms), ABCD chain matrices and S-parameter blocks
//! are all 2×2 complex. [`Mat2`] stores rows `[[a, b], [c, d]]`.

use crate::complex::{c64, Complex};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A 2×2 complex matrix `[[a, b], [c, d]]` (row major).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Row 0, column 0.
    pub a: Complex,
    /// Row 0, column 1.
    pub b: Complex,
    /// Row 1, column 0.
    pub c: Complex,
    /// Row 1, column 1.
    pub d: Complex,
}

/// A 2-element complex column vector.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// First component (X axis by Jones convention).
    pub x: Complex,
    /// Second component (Y axis by Jones convention).
    pub y: Complex,
}

impl Mat2 {
    /// Identity matrix.
    pub const IDENTITY: Mat2 = Mat2 {
        a: Complex::ONE,
        b: Complex::ZERO,
        c: Complex::ZERO,
        d: Complex::ONE,
    };

    /// Zero matrix.
    pub const ZERO: Mat2 = Mat2 {
        a: Complex::ZERO,
        b: Complex::ZERO,
        c: Complex::ZERO,
        d: Complex::ZERO,
    };

    /// Builds a matrix from row-major entries.
    #[inline]
    pub const fn new(a: Complex, b: Complex, c: Complex, d: Complex) -> Self {
        Self { a, b, c, d }
    }

    /// Builds a matrix from real row-major entries.
    #[inline]
    pub fn from_real(a: f64, b: f64, c: f64, d: f64) -> Self {
        Self::new(c64(a, 0.0), c64(b, 0.0), c64(c, 0.0), c64(d, 0.0))
    }

    /// Diagonal matrix `diag(p, q)`.
    #[inline]
    pub const fn diag(p: Complex, q: Complex) -> Self {
        Self {
            a: p,
            b: Complex::ZERO,
            c: Complex::ZERO,
            d: q,
        }
    }

    /// Real rotation matrix `R(θ) = [[cosθ, −sinθ], [sinθ, cosθ]]`
    /// (counterclockwise by `theta` radians) — Eq. (4) of the paper.
    pub fn rotation(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::from_real(c, -s, s, c)
    }

    /// Determinant `ad − bc`.
    #[inline]
    pub fn det(self) -> Complex {
        self.a * self.d - self.b * self.c
    }

    /// Trace `a + d`.
    #[inline]
    pub fn trace(self) -> Complex {
        self.a + self.d
    }

    /// Matrix inverse. Returns `None` when the determinant magnitude is
    /// below `1e-300` (numerically singular).
    pub fn inverse(self) -> Option<Self> {
        let det = self.det();
        if det.abs() < 1e-300 {
            return None;
        }
        let inv = det.inv();
        Some(Self {
            a: self.d * inv,
            b: -self.b * inv,
            c: -self.c * inv,
            d: self.a * inv,
        })
    }

    /// Transpose.
    #[inline]
    pub fn transpose(self) -> Self {
        Self {
            a: self.a,
            b: self.c,
            c: self.b,
            d: self.d,
        }
    }

    /// Conjugate (Hermitian) transpose `M†`.
    #[inline]
    pub fn dagger(self) -> Self {
        Self {
            a: self.a.conj(),
            b: self.c.conj(),
            c: self.b.conj(),
            d: self.d.conj(),
        }
    }

    /// Element-wise complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            a: self.a.conj(),
            b: self.b.conj(),
            c: self.c.conj(),
            d: self.d.conj(),
        }
    }

    /// Scales every entry by a complex factor.
    #[inline]
    pub fn scale(self, k: Complex) -> Self {
        Self {
            a: self.a * k,
            b: self.b * k,
            c: self.c * k,
            d: self.d * k,
        }
    }

    /// Frobenius norm `√Σ|mᵢⱼ|²`.
    pub fn frobenius_norm(self) -> f64 {
        (self.a.norm_sqr() + self.b.norm_sqr() + self.c.norm_sqr() + self.d.norm_sqr()).sqrt()
    }

    /// Maximum entry-wise absolute difference to `other`.
    pub fn max_abs_diff(self, other: Self) -> f64 {
        [
            (self.a - other.a).abs(),
            (self.b - other.b).abs(),
            (self.c - other.c).abs(),
            (self.d - other.d).abs(),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// True when `M†M ≈ I` within tolerance `tol` (energy-preserving
    /// polarization transform).
    pub fn is_unitary(self, tol: f64) -> bool {
        (self.dagger() * self).max_abs_diff(Mat2::IDENTITY) <= tol
    }

    /// True when every entry is finite.
    pub fn is_finite(self) -> bool {
        self.a.is_finite() && self.b.is_finite() && self.c.is_finite() && self.d.is_finite()
    }

    /// True when equal to `other` up to a global (unit-magnitude) complex
    /// phase, within tolerance — physical equivalence for Jones matrices,
    /// which are only defined up to common phase.
    pub fn approx_eq_up_to_phase(self, other: Self, tol: f64) -> bool {
        // Find the largest-magnitude entry of `other` to estimate the phase.
        let pairs = [
            (self.a, other.a),
            (self.b, other.b),
            (self.c, other.c),
            (self.d, other.d),
        ];
        let (s, o) = pairs
            .into_iter()
            .max_by(|(_, o1), (_, o2)| o1.abs().total_cmp(&o2.abs()))
            .expect("non-empty");
        if o.abs() < tol {
            // `other` is (near) zero; compare directly.
            return self.max_abs_diff(other) <= tol;
        }
        let phase = s / o;
        if (phase.abs() - 1.0).abs() > tol.max(1e-9) {
            return false;
        }
        self.max_abs_diff(other.scale(phase)) <= tol
    }
}

impl Vec2 {
    /// Zero vector.
    pub const ZERO: Vec2 = Vec2 {
        x: Complex::ZERO,
        y: Complex::ZERO,
    };

    /// Builds a vector from complex components.
    #[inline]
    pub const fn new(x: Complex, y: Complex) -> Self {
        Self { x, y }
    }

    /// Builds a vector from real components.
    #[inline]
    pub fn from_real(x: f64, y: f64) -> Self {
        Self::new(c64(x, 0.0), c64(y, 0.0))
    }

    /// Hermitian inner product `⟨self, other⟩ = x̄·x' + ȳ·y'`.
    #[inline]
    pub fn dot(self, other: Self) -> Complex {
        self.x.conj() * other.x + self.y.conj() * other.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x.norm_sqr() + self.y.norm_sqr()).sqrt()
    }

    /// Squared norm (total field intensity).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x.norm_sqr() + self.y.norm_sqr()
    }

    /// Returns the unit vector in the same direction, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Self> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(Self {
                x: self.x / n,
                y: self.y / n,
            })
        }
    }

    /// Scales by a complex factor.
    #[inline]
    pub fn scale(self, k: Complex) -> Self {
        Self {
            x: self.x * k,
            y: self.y * k,
        }
    }

    /// Maximum component-wise absolute difference to `other`.
    pub fn max_abs_diff(self, other: Self) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// True when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    #[inline]
    fn mul(self, r: Mat2) -> Mat2 {
        Mat2 {
            a: self.a * r.a + self.b * r.c,
            b: self.a * r.b + self.b * r.d,
            c: self.c * r.a + self.d * r.c,
            d: self.c * r.b + self.d * r.d,
        }
    }
}

impl Mul<Vec2> for Mat2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        Vec2 {
            x: self.a * v.x + self.b * v.y,
            y: self.c * v.x + self.d * v.y,
        }
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    #[inline]
    fn add(self, r: Mat2) -> Mat2 {
        Mat2 {
            a: self.a + r.a,
            b: self.b + r.b,
            c: self.c + r.c,
            d: self.d + r.d,
        }
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    #[inline]
    fn sub(self, r: Mat2) -> Mat2 {
        Mat2 {
            a: self.a - r.a,
            b: self.b - r.b,
            c: self.c - r.c,
            d: self.d - r.d,
        }
    }
}

impl Neg for Mat2 {
    type Output = Mat2;
    #[inline]
    fn neg(self) -> Mat2 {
        Mat2 {
            a: -self.a,
            b: -self.b,
            c: -self.c,
            d: -self.d,
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, r: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + r.x,
            y: self.y + r.y,
        }
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, r: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - r.x,
            y: self.y - r.y,
        }
    }
}

impl fmt::Debug for Mat2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[[{:?}, {:?}], [{:?}, {:?}]]",
            self.a, self.b, self.c, self.d
        )
    }
}

impl fmt::Debug for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?}]", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn identity_is_neutral() {
        let m = Mat2::new(c64(1.0, 2.0), c64(-0.5, 0.1), c64(0.0, 1.0), c64(2.0, 0.0));
        assert!((Mat2::IDENTITY * m).max_abs_diff(m) < TOL);
        assert!((m * Mat2::IDENTITY).max_abs_diff(m) < TOL);
    }

    #[test]
    fn rotation_composes_additively() {
        let r1 = Mat2::rotation(0.3);
        let r2 = Mat2::rotation(0.5);
        assert!((r1 * r2).max_abs_diff(Mat2::rotation(0.8)) < TOL);
    }

    #[test]
    fn rotation_inverse_is_transpose() {
        let r = Mat2::rotation(1.1);
        assert!((r * r.transpose()).max_abs_diff(Mat2::IDENTITY) < TOL);
        let inv = r.inverse().unwrap();
        assert!(inv.max_abs_diff(r.transpose()) < TOL);
    }

    #[test]
    fn rotation_is_unitary() {
        for k in 0..8 {
            assert!(Mat2::rotation(k as f64 * PI / 4.0).is_unitary(TOL));
        }
    }

    #[test]
    fn rotation_quarter_turn_maps_x_to_y() {
        let v = Vec2::from_real(1.0, 0.0);
        let w = Mat2::rotation(FRAC_PI_2) * v;
        assert!(w.max_abs_diff(Vec2::from_real(0.0, 1.0)) < TOL);
    }

    #[test]
    fn det_of_product_is_product_of_dets() {
        let m = Mat2::new(c64(1.0, 1.0), c64(0.0, 2.0), c64(3.0, 0.0), c64(1.0, -1.0));
        let n = Mat2::new(c64(0.5, 0.0), c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, 2.0));
        assert!(((m * n).det() - m.det() * n.det()).abs() < 1e-10);
    }

    #[test]
    fn inverse_round_trip() {
        let m = Mat2::new(c64(1.0, 1.0), c64(0.0, 2.0), c64(3.0, 0.0), c64(1.0, -1.0));
        let inv = m.inverse().unwrap();
        assert!((m * inv).max_abs_diff(Mat2::IDENTITY) < 1e-10);
        assert!((inv * m).max_abs_diff(Mat2::IDENTITY) < 1e-10);
    }

    #[test]
    fn singular_has_no_inverse() {
        let m = Mat2::from_real(1.0, 2.0, 2.0, 4.0);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn dagger_reverses_products() {
        let m = Mat2::new(c64(1.0, 1.0), c64(0.0, 2.0), c64(3.0, 0.0), c64(1.0, -1.0));
        let n = Mat2::rotation(0.4);
        assert!((m * n).dagger().max_abs_diff(n.dagger() * m.dagger()) < 1e-10);
    }

    #[test]
    fn vector_norm_and_dot() {
        let v = Vec2::new(c64(3.0, 0.0), c64(0.0, 4.0));
        assert!((v.norm() - 5.0).abs() < TOL);
        assert!((v.dot(v).re - 25.0).abs() < TOL);
        assert!(v.dot(v).im.abs() < TOL);
    }

    #[test]
    fn normalization() {
        let v = Vec2::from_real(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < TOL);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn unitary_preserves_norm() {
        let u = Mat2::rotation(FRAC_PI_4);
        let v = Vec2::new(c64(1.0, 0.5), c64(-0.2, 0.9));
        assert!(((u * v).norm() - v.norm()).abs() < TOL);
    }

    #[test]
    fn phase_equivalence() {
        let m = Mat2::rotation(0.7);
        let phased = m.scale(Complex::cis(1.234));
        assert!(m.approx_eq_up_to_phase(phased, 1e-9));
        assert!(!m.approx_eq_up_to_phase(Mat2::rotation(0.9), 1e-9));
    }

    #[test]
    fn diag_multiplication() {
        let d = Mat2::diag(c64(2.0, 0.0), c64(0.0, 1.0));
        let v = Vec2::from_real(1.0, 1.0);
        let w = d * v;
        assert_eq!(w.x, c64(2.0, 0.0));
        assert_eq!(w.y, c64(0.0, 1.0));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Mat2::IDENTITY.frobenius_norm() - 2.0_f64.sqrt()).abs() < TOL);
    }
}
