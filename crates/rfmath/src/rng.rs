//! Deterministic randomness helpers.
//!
//! Every stochastic element of the simulator — fading taps, thermal
//! noise, RSSI jitter, report loss — draws from RNGs created here, seeded
//! explicitly from scenario parameters. That makes every experiment
//! reproducible bit-for-bit (a requirement for the benchmark harness) and
//! lets property tests shrink failures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG stream derived from a root seed and a stream label.
///
/// Different subsystems (fading vs noise vs packet loss) get *independent*
/// streams by label, so adding draws in one subsystem never perturbs
/// another — the classic trap with a single shared RNG.
#[derive(Clone, Debug)]
pub struct SeedSplitter {
    root: u64,
}

impl SeedSplitter {
    /// Creates a splitter from a root seed.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// Derives a child RNG for the given label.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.root, hash_label(label)))
    }

    /// Derives a child RNG for a label and numeric index (e.g. per-tap).
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.root, hash_label(label)), index))
    }

    /// Derives a child splitter (for nested subsystems).
    pub fn child(&self, label: &str) -> SeedSplitter {
        SeedSplitter {
            root: mix(self.root, hash_label(label)),
        }
    }

    /// Derives a raw 64-bit seed for a label and index, for subsystems
    /// that take a plain `u64` seed instead of an RNG (e.g. a seeded
    /// propagation-environment realization). Equivalent to the seed
    /// behind [`SeedSplitter::stream_indexed`].
    pub fn derive(&self, label: &str, index: u64) -> u64 {
        mix(mix(self.root, hash_label(label)), index)
    }

    /// The root seed value.
    pub fn root(&self) -> u64 {
        self.root
    }
}

/// FNV-1a hash of a label string.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64-style finalizer mixing two 64-bit words.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a zero-mean Gaussian with the given standard deviation.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    standard_normal(rng) * sigma
}

/// Draws a circularly symmetric complex Gaussian with *total* variance
/// `sigma2` (i.e. `E[|z|²] = sigma2`) — the canonical Rayleigh-fading tap.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma2: f64) -> crate::complex::Complex {
    let s = (sigma2 / 2.0).sqrt();
    crate::complex::c64(gaussian(rng, s), gaussian(rng, s))
}

/// Draws a Rayleigh-distributed magnitude with scale `sigma`
/// (mode of the distribution).
pub fn rayleigh<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    sigma * (-2.0 * u.ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let s = SeedSplitter::new(42);
        let a: Vec<u32> = {
            let mut r = s.stream("fading");
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = s.stream("fading");
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label() {
        let s = SeedSplitter::new(42);
        let a: u64 = s.stream("fading").gen();
        let b: u64 = s.stream("noise").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_differ_by_index() {
        let s = SeedSplitter::new(7);
        let a: u64 = s.stream_indexed("tap", 0).gen();
        let b: u64 = s.stream_indexed("tap", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn children_are_independent_of_sibling_labels() {
        let s = SeedSplitter::new(1);
        let c1 = s.child("env");
        let c2 = s.child("ctrl");
        assert_ne!(c1.root(), c2.root());
        // Same path gives same stream.
        let x: u64 = s.child("env").stream("taps").gen();
        let y: u64 = c1.stream("taps").gen();
        assert_eq!(x, y);
    }

    #[test]
    fn derive_matches_stream_indexed_and_separates() {
        let s = SeedSplitter::new(11);
        // Same (label, index) → same seed; different index → different.
        assert_eq!(s.derive("env", 4), s.derive("env", 4));
        assert_ne!(s.derive("env", 4), s.derive("env", 5));
        assert_ne!(s.derive("env", 4), s.derive("ctrl", 4));
        // Different roots decorrelate.
        assert_ne!(s.derive("env", 4), SeedSplitter::new(12).derive("env", 4));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SeedSplitter::new(3).stream("g");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn complex_gaussian_power() {
        let mut rng = SeedSplitter::new(5).stream("cg");
        let n = 20_000;
        let p: f64 = (0..n)
            .map(|_| complex_gaussian(&mut rng, 3.0).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - 3.0).abs() < 0.1, "E|z|²={p}");
    }

    #[test]
    fn rayleigh_is_positive_with_expected_mean() {
        let mut rng = SeedSplitter::new(9).stream("r");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rayleigh(&mut rng, 1.0)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        let expected = (std::f64::consts::PI / 2.0_f64).sqrt();
        assert!((mean - expected).abs() < 0.02, "mean={mean}");
    }
}
