//! Minimal scoped-thread fan-out shared by the batched engines.
//!
//! The surface-response grid, the bias-batch evaluator and the fleet
//! probe matrix all need the same shape of parallelism: fill a slice by
//! index with a pure function, chunked across a handful of scoped
//! threads, no external dependencies. One helper keeps the chunk
//! arithmetic (and its edge cases) in a single place.

/// Fills `out[i] = f(i)` for every index, fanning contiguous chunks out
/// across up to `threads` scoped workers. `threads <= 1` (or a slice
/// shorter than the worker count) runs serially on the calling thread —
/// callers decide their own "worth spawning for" threshold by passing
/// `1`. `f` must be pure: the call order across chunks is unspecified.
pub fn par_fill<T, F>(out: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = out.len();
    let threads = threads.min(n);
    if threads <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(per).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = f(chunk_idx * per + j);
                }
            });
        }
    });
}

/// Fills `out` by handing each of up to `threads` scoped workers one
/// contiguous chunk: `f(offset, chunk)` must fill `chunk`, whose first
/// element is `out[offset]`. Unlike [`par_fill`] the kernel sees whole
/// ranges, so it can keep per-worker scratch (structure-of-arrays slabs,
/// reusable buffers) alive across every element it owns instead of
/// paying per-index call overhead. `threads <= 1` runs serially as
/// `f(0, out)`. `f` must be pure per chunk: chunk order is unspecified.
pub fn par_fill_chunked<T, F>(out: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    if n == 0 {
        return;
    }
    let threads = threads.min(n);
    if threads <= 1 {
        f(0, out);
        return;
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(per).enumerate() {
            let f = &f;
            scope.spawn(move || f(chunk_idx * per, chunk));
        }
    });
}

/// The machine's available parallelism (1 when undetectable) — the
/// conventional `threads` argument for [`par_fill`].
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_for_uneven_chunks() {
        // 3 workers over 20 items: chunks of 7, 7, 6 — exercises the
        // remainder chunk.
        let mut serial = vec![0usize; 20];
        let mut parallel = vec![0usize; 20];
        par_fill(&mut serial, 1, |i| i * i + 1);
        par_fill(&mut parallel, 3, |i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_count_clamps_to_len() {
        let mut out = vec![0u8; 2];
        par_fill(&mut out, 64, |i| i as u8);
        assert_eq!(out, vec![0, 1]);
        let mut empty: Vec<u8> = Vec::new();
        par_fill(&mut empty, 8, |_| unreachable!("no items"));
        assert!(empty.is_empty());
    }

    #[test]
    fn chunked_matches_serial_for_uneven_chunks() {
        let mut serial = vec![0usize; 20];
        let mut parallel = vec![0usize; 20];
        let fill = |offset: usize, chunk: &mut [usize]| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (offset + j) * 3 + 1;
            }
        };
        par_fill_chunked(&mut serial, 1, fill);
        par_fill_chunked(&mut parallel, 3, fill);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunked_handles_empty_and_oversubscribed() {
        let mut out = vec![0u8; 2];
        par_fill_chunked(&mut out, 64, |offset, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (offset + j) as u8;
            }
        });
        assert_eq!(out, vec![0, 1]);
        let mut empty: Vec<u8> = Vec::new();
        par_fill_chunked(&mut empty, 8, |_, _| unreachable!("no items"));
        assert!(empty.is_empty());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
