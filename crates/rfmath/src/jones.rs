//! Jones calculus — the polarization algebra of §2 of the paper.
//!
//! A fully polarized plane wave is a 2×1 complex [`JonesVector`] over the
//! transverse (X, Y) axes; optical elements (wave plates, the tunable
//! birefringent structure, rotations) are 2×2 complex [`JonesMatrix`]
//! transforms. This module implements Eq. (1)–(8) of the paper:
//!
//! * Eq. (1): the Jones vector `[a, b·e^{jπ/2}]ᵀ` and general states,
//! * Eq. (2): cascading surfaces by matrix multiplication,
//! * Eq. (3)–(4): the wave-plate matrix and its rotated form
//!   `Mθ = R(θ)·M·R(θ)ᵀ`,
//! * Eq. (5)–(6): quarter-wave plates at ±45°,
//! * Eq. (7): the tunable birefringent structure `B = diag(1, e^{jδ})`,
//! * Eq. (8): the full rotator `P = Q₊₄₅·B·Q₋₄₅` ≡ rotation by `δ/2`.

use crate::complex::{c64, Complex};
use crate::matrix::{Mat2, Vec2};
use crate::units::{Db, Degrees, Radians};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Polarization state of a fully polarized wave: a 2×1 complex vector over
/// the transverse X/Y axes (Eq. 1 of the paper).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JonesVector(pub Vec2);

/// A polarization transform: a 2×2 complex matrix acting on
/// [`JonesVector`]s (Eq. 2–8 of the paper).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JonesMatrix(pub Mat2);

impl JonesVector {
    /// Horizontal (X-axis) linear polarization, unit intensity.
    pub fn horizontal() -> Self {
        Self(Vec2::from_real(1.0, 0.0))
    }

    /// Vertical (Y-axis) linear polarization, unit intensity.
    pub fn vertical() -> Self {
        Self(Vec2::from_real(0.0, 1.0))
    }

    /// Linear polarization at `angle` from the X axis, unit intensity.
    pub fn linear(angle: Radians) -> Self {
        let (s, c) = angle.0.sin_cos();
        Self(Vec2::from_real(c, s))
    }

    /// Linear polarization at `angle` degrees from the X axis.
    pub fn linear_deg(angle_deg: f64) -> Self {
        Self::linear(Degrees(angle_deg).to_radians())
    }

    /// Right-hand circular polarization, unit intensity.
    pub fn circular_right() -> Self {
        let k = 1.0 / 2.0_f64.sqrt();
        Self(Vec2::new(c64(k, 0.0), c64(0.0, -k)))
    }

    /// Left-hand circular polarization, unit intensity.
    pub fn circular_left() -> Self {
        let k = 1.0 / 2.0_f64.sqrt();
        Self(Vec2::new(c64(k, 0.0), c64(0.0, k)))
    }

    /// General elliptical state from the paper's Eq. (1):
    /// `[a, b·e^{jπ/2}]ᵀ` with real amplitudes `a`, `b`.
    pub fn elliptical(a: f64, b: f64) -> Self {
        Self(Vec2::new(c64(a, 0.0), Complex::from_polar(b, FRAC_PI_2)))
    }

    /// Raw component access.
    #[inline]
    pub fn components(self) -> (Complex, Complex) {
        (self.0.x, self.0.y)
    }

    /// Total intensity `|Ex|² + |Ey|²` (proportional to power density).
    #[inline]
    pub fn intensity(self) -> f64 {
        self.0.norm_sqr()
    }

    /// Unit-intensity copy of this state, or `None` for the zero field.
    pub fn normalized(self) -> Option<Self> {
        self.0.normalized().map(Self)
    }

    /// Polarization loss factor (PLF) onto a receive antenna whose
    /// co-polarized state is `rx`: `|⟨rx, self⟩|² / (|rx|²·|self|²)`.
    ///
    /// 1.0 for matched states, 0.0 for orthogonal states, 0.5 between
    /// linear and circular (the classic 3 dB penalty of §2).
    pub fn polarization_loss_factor(self, rx: JonesVector) -> f64 {
        let denom = self.intensity() * rx.intensity();
        if denom <= 0.0 {
            return 0.0;
        }
        rx.0.dot(self.0).norm_sqr() / denom
    }

    /// PLF expressed in dB (≤ 0; −∞ for orthogonal states).
    pub fn polarization_loss_db(self, rx: JonesVector) -> Db {
        Db::from_linear(self.polarization_loss_factor(rx))
    }

    /// Orientation of the polarization ellipse's major axis, in radians
    /// within `(-π/2, π/2]`. For a linear state this is the tilt angle.
    pub fn orientation(self) -> Radians {
        // ψ = ½·atan2(2·Re(Ex·Ēȳ*)… ) via Stokes parameters.
        let (ex, ey) = self.components();
        let s1 = ex.norm_sqr() - ey.norm_sqr();
        let s2 = 2.0 * (ex * ey.conj()).re;
        let mut psi = 0.5 * s2.atan2(s1);
        if psi <= -FRAC_PI_2 {
            psi += std::f64::consts::PI;
        } else if psi > FRAC_PI_2 {
            psi -= std::f64::consts::PI;
        }
        Radians(psi)
    }

    /// Ellipticity angle χ in radians: 0 for linear, ±π/4 for circular.
    pub fn ellipticity(self) -> Radians {
        let (ex, ey) = self.components();
        let s0 = self.intensity();
        if s0 <= 0.0 {
            return Radians(0.0);
        }
        let s3 = 2.0 * (ex.conj() * ey).im;
        Radians(0.5 * (s3 / s0).clamp(-1.0, 1.0).asin())
    }

    /// True when this state is linear within tolerance (ellipticity ≈ 0).
    pub fn is_linear(self, tol: f64) -> bool {
        self.ellipticity().0.abs() <= tol
    }

    /// Minimum rotation needed to align this state's major axis with
    /// `other`'s, wrapped into `[0, π/2]` (polarization orientation is
    /// unsigned and has period π).
    pub fn misalignment(self, other: JonesVector) -> Radians {
        let d = (self.orientation().0 - other.orientation().0).abs() % std::f64::consts::PI;
        Radians(d.min(std::f64::consts::PI - d))
    }
}

impl JonesMatrix {
    /// Identity (free-space propagation without loss or rotation).
    pub fn identity() -> Self {
        Self(Mat2::IDENTITY)
    }

    /// Real rotation by `theta` (counterclockwise), Eq. (4): `R(θ)`.
    pub fn rotation(theta: Radians) -> Self {
        Self(Mat2::rotation(theta.0))
    }

    /// Axis-aligned wave plate with common phase `alpha` and a quarter-wave
    /// (90°) retardation on Y, Eq. (3): `M = e^{jα}·diag(1, e^{jπ/2})`.
    pub fn wave_plate(alpha: Radians) -> Self {
        Self(Mat2::diag(Complex::ONE, Complex::cis(FRAC_PI_2)).scale(Complex::cis(alpha.0)))
    }

    /// General retarder `diag(1, e^{jδ})` with common phase `beta` —
    /// Eq. (7), the tunable birefringent structure (BFS). `delta` is the
    /// X/Y transmission-phase difference set by the bias voltages.
    pub fn birefringent(beta: Radians, delta: Radians) -> Self {
        Self(Mat2::diag(Complex::ONE, Complex::cis(delta.0)).scale(Complex::cis(beta.0)))
    }

    /// An element rotated counterclockwise by `theta`:
    /// `Mθ = R(θ)·M·R(θ)ᵀ` (Eq. 4).
    pub fn rotated(self, theta: Radians) -> Self {
        let r = Mat2::rotation(theta.0);
        Self(r * self.0 * r.transpose())
    }

    /// Quarter-wave plate rotated by +45°, Eq. (5).
    ///
    /// Note the paper writes `R(+45°)·M·R(+45°)` (not the transpose) in
    /// Eq. (5)–(6); both conventions produce a rotator, we follow the
    /// standard similarity transform `R·M·Rᵀ` which reproduces Eq. (8)
    /// exactly.
    pub fn qwp_plus_45(alpha: Radians) -> Self {
        Self::wave_plate(alpha).rotated(Radians(FRAC_PI_4))
    }

    /// Quarter-wave plate rotated by −45°, Eq. (6).
    pub fn qwp_minus_45(alpha: Radians) -> Self {
        Self::wave_plate(alpha).rotated(Radians(-FRAC_PI_4))
    }

    /// Ideal attenuator: scales field amplitude by `amplitude_ratio ≤ 1`
    /// uniformly on both axes (used to fold insertion loss into a Jones
    /// chain).
    pub fn attenuator(amplitude_ratio: f64) -> Self {
        Self(Mat2::IDENTITY.scale(Complex::real(amplitude_ratio)))
    }

    /// Linear polarizer transmitting the axis at `theta` from X.
    pub fn polarizer(theta: Radians) -> Self {
        let (s, c) = theta.0.sin_cos();
        Self(Mat2::from_real(c * c, c * s, c * s, s * s))
    }

    /// Mirror reflection about the X axis (flips the Y component), used to
    /// express the frame change a wave sees when reflected back through a
    /// structure.
    pub fn mirror_x() -> Self {
        Self(Mat2::diag(Complex::ONE, -Complex::ONE))
    }

    /// The paper's full polarization rotator, Eq. (8):
    /// `P = Q₋₄₅ · B(δ) · Q₊₄₅ = e^{jφ}·R(δ/2)`.
    ///
    /// `alpha` is the QWP common phase, `beta` the BFS common phase and
    /// `delta` the bias-controlled X/Y phase difference. The result is a
    /// pure rotation by `δ/2` up to a global phase.
    ///
    /// Under the similarity-transform convention (`Mθ = R·M·Rᵀ`) the
    /// sandwich `Q₋₄₅·B·Q₊₄₅` rotates by `+δ/2` while the mirror order
    /// rotates by `−δ/2`; we pick the order that reproduces the paper's
    /// stated Eq. (8) sign. The physically observable quantity — the
    /// magnitude `|δ|/2` of the polarization rotation — is identical
    /// either way.
    pub fn rotator(alpha: Radians, beta: Radians, delta: Radians) -> Self {
        Self::qwp_minus_45(alpha) * Self::birefringent(beta, delta) * Self::qwp_plus_45(alpha)
    }

    /// Applies this transform to a state (Eq. 2).
    pub fn apply(self, v: JonesVector) -> JonesVector {
        JonesVector(self.0 * v.0)
    }

    /// Cascades surfaces: `self` is traversed *after* `first`
    /// (`J_out = self · first · J_in`, Eq. 2).
    pub fn after(self, first: JonesMatrix) -> JonesMatrix {
        self * first
    }

    /// Extracts the equivalent rotation angle if this matrix is (up to a
    /// global phase) a real rotation; `None` otherwise.
    ///
    /// The angle is returned wrapped into `(-π/2, π/2]`: a global phase of
    /// −1 is physically unobservable, so rotations by `θ` and `θ ± π` are
    /// the same polarization transform and only the mod-π value is
    /// defined. Used to verify Eq. (8) and to read the rotation a
    /// simulated surface induces.
    pub fn rotation_angle(self, tol: f64) -> Option<Radians> {
        // Remove global phase using the phase of the largest entry of the
        // first column, then check the rotation structure.
        let m = self.0;
        let ref_entry = if m.a.abs() >= m.c.abs() { m.a } else { m.c };
        if ref_entry.abs() < tol {
            return None;
        }
        let phase = Complex::cis(-ref_entry.arg());
        let n = m.scale(phase);
        // A rotation must be real within tolerance…
        let imag_norm =
            n.a.im
                .abs()
                .max(n.b.im.abs())
                .max(n.c.im.abs())
                .max(n.d.im.abs());
        if imag_norm > tol {
            return None;
        }
        // …orthogonal with unit determinant…
        let det = n.det();
        if (det - Complex::ONE).abs() > tol.max(1e-9) {
            return None;
        }
        // …and structured as [[c, -s], [s, c]].
        if (n.a.re - n.d.re).abs() > tol || (n.b.re + n.c.re).abs() > tol {
            return None;
        }
        let mut theta = n.c.re.atan2(n.a.re);
        // Wrap into (-π/2, π/2]: θ and θ±π differ only by global phase.
        if theta > FRAC_PI_2 {
            theta -= PI;
        } else if theta <= -FRAC_PI_2 {
            theta += PI;
        }
        Some(Radians(theta))
    }

    /// Power transmittance for an incident state: output intensity over
    /// input intensity.
    pub fn transmittance(self, input: JonesVector) -> f64 {
        let out = self.apply(input);
        let pin = input.intensity();
        if pin <= 0.0 {
            0.0
        } else {
            out.intensity() / pin
        }
    }
}

impl std::ops::Mul for JonesMatrix {
    type Output = JonesMatrix;
    #[inline]
    fn mul(self, rhs: JonesMatrix) -> JonesMatrix {
        JonesMatrix(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-10;

    #[test]
    fn basis_states_are_orthogonal() {
        let h = JonesVector::horizontal();
        let v = JonesVector::vertical();
        assert!(h.polarization_loss_factor(v) < TOL);
        assert!((h.polarization_loss_factor(h) - 1.0).abs() < TOL);
    }

    #[test]
    fn plf_follows_malus_law() {
        // Linear-to-linear PLF is cos²(Δθ) — the basis of the paper's
        // mismatch analysis.
        let h = JonesVector::horizontal();
        for k in 0..=18 {
            let theta = k as f64 * PI / 18.0;
            let t = JonesVector::linear(Radians(theta));
            let expected = theta.cos().powi(2);
            assert!(
                (t.polarization_loss_factor(h) - expected).abs() < TOL,
                "θ={theta}"
            );
        }
    }

    #[test]
    fn circular_to_linear_is_3db() {
        let c = JonesVector::circular_right();
        let h = JonesVector::horizontal();
        assert!((c.polarization_loss_factor(h) - 0.5).abs() < TOL);
        assert!((c.polarization_loss_db(h).0 + 3.0103).abs() < 1e-3);
    }

    #[test]
    fn circular_states_are_orthogonal() {
        let l = JonesVector::circular_left();
        let r = JonesVector::circular_right();
        assert!(l.polarization_loss_factor(r) < TOL);
    }

    #[test]
    fn elliptical_follows_eq1() {
        let e = JonesVector::elliptical(1.0, 1.0).normalized().unwrap();
        // a = b with +90° phase on Y is circular (left by our convention).
        assert!((e.ellipticity().0.abs() - FRAC_PI_4).abs() < TOL);
    }

    #[test]
    fn orientation_of_linear_states() {
        for deg in [0.0, 15.0, 45.0, 89.0] {
            let v = JonesVector::linear_deg(deg);
            assert!(
                (v.orientation().to_degrees().0 - deg).abs() < 1e-9,
                "deg={deg}"
            );
            assert!(v.is_linear(1e-12));
        }
    }

    #[test]
    fn misalignment_is_symmetric_and_wrapped() {
        let a = JonesVector::linear_deg(10.0);
        let b = JonesVector::linear_deg(80.0);
        assert!((a.misalignment(b).to_degrees().0 - 70.0).abs() < 1e-9);
        // 170° apart is the same line family as 10° apart.
        let c = JonesVector::linear_deg(180.0);
        let d = JonesVector::linear_deg(10.0);
        assert!((c.misalignment(d).to_degrees().0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_rotates_linear_state() {
        let h = JonesVector::horizontal();
        let r = JonesMatrix::rotation(Radians(0.3));
        let out = r.apply(h);
        assert!((out.orientation().0 - 0.3).abs() < TOL);
    }

    #[test]
    fn wave_plate_has_unit_transmittance() {
        let m = JonesMatrix::wave_plate(Radians(0.2));
        for v in [
            JonesVector::horizontal(),
            JonesVector::vertical(),
            JonesVector::linear_deg(30.0),
            JonesVector::circular_left(),
        ] {
            assert!((m.transmittance(v) - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn qwp_at_45_converts_linear_to_circular() {
        let q = JonesMatrix::qwp_plus_45(Radians(0.0));
        let out = q.apply(JonesVector::horizontal());
        assert!((out.ellipticity().0.abs() - FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn rotator_is_rotation_by_half_delta() {
        // The core claim of Eq. (8): P(δ) ≡ R(δ/2) up to global phase.
        for delta_deg in [-170.0, -90.0, -30.0, 0.0, 10.0, 45.0, 90.0, 179.0] {
            let delta = Degrees(delta_deg).to_radians();
            let p = JonesMatrix::rotator(Radians(0.37), Radians(-0.9), delta);
            let angle = p
                .rotation_angle(1e-8)
                .unwrap_or_else(|| panic!("not a rotation at δ={delta_deg}°"));
            assert!(
                (angle.0 - delta.0 / 2.0).abs() < 1e-8,
                "δ={delta_deg}°: got {}°",
                angle.to_degrees().0
            );
        }
    }

    #[test]
    fn rotator_fixes_mismatched_link() {
        // Orthogonal antennas (90° mismatch, PLF 0) become matched after a
        // δ = π rotator (rotation by 90°).
        let tx = JonesVector::vertical();
        let rx = JonesVector::horizontal();
        assert!(tx.polarization_loss_factor(rx) < TOL);
        let p = JonesMatrix::rotator(Radians(0.0), Radians(0.0), Radians(PI));
        let through = p.apply(tx);
        assert!((through.polarization_loss_factor(rx) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_angle_rejects_non_rotations() {
        assert!(JonesMatrix::polarizer(Radians(0.0))
            .rotation_angle(1e-9)
            .is_none());
        let b = JonesMatrix::birefringent(Radians(0.0), Radians(1.0));
        assert!(b.rotation_angle(1e-9).is_none());
    }

    #[test]
    fn polarizer_projects() {
        let p = JonesMatrix::polarizer(Radians(0.0));
        let out = p.apply(JonesVector::linear_deg(60.0));
        // Malus: transmitted intensity cos²60° = 0.25.
        assert!((out.intensity() - 0.25).abs() < TOL);
        assert!(out.orientation().0.abs() < TOL);
    }

    #[test]
    fn attenuator_scales_power() {
        let a = JonesMatrix::attenuator(0.5);
        let v = JonesVector::linear_deg(45.0);
        assert!((a.transmittance(v) - 0.25).abs() < TOL);
    }

    #[test]
    fn cascade_order_matters_and_matches_eq2() {
        let r1 = JonesMatrix::rotation(Radians(0.2));
        let pol = JonesMatrix::polarizer(Radians(0.0));
        let v = JonesVector::linear_deg(45.0);
        let seq = pol.after(r1).apply(v);
        let manual = pol.apply(r1.apply(v));
        assert!(seq.0.max_abs_diff(manual.0) < TOL);
    }

    #[test]
    fn mirror_flips_rotation_sense() {
        // R(θ) seen through a mirror frame becomes R(−θ): the mechanism
        // behind reflective rotation cancellation (§5.2).
        let theta = Radians(0.4);
        let m = JonesMatrix::mirror_x();
        let conj = (m * JonesMatrix::rotation(theta) * m).0;
        assert!(conj.max_abs_diff(Mat2::rotation(-theta.0)) < TOL);
    }
}
