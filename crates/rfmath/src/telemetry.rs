//! Unified telemetry plane: counters, gauges, log-binned histograms,
//! RAII span timing and a bounded structured event log.
//!
//! The serving stack (sharded server, sweep controller, panel
//! scheduler, mobility simulator, fault engine) reports into a single
//! [`Recorder`] so a run can answer "where did this tick's budget go"
//! and "which shard starved" without growing one-off report fields.
//! Two implementations ship:
//!
//! * [`NullRecorder`] — the default. Every method is a no-op and
//!   [`Recorder::enabled`] is `false`, so instrumented hot paths skip
//!   event construction entirely; a `NullRecorder` run must be
//!   bit-identical to a build with telemetry absent (proptested in
//!   `llama-core`).
//! * [`RingRecorder`] — a bounded in-memory sink. Metrics (counters,
//!   gauges, log-binned duration/value histograms) aggregate under a
//!   mutex; typed [`TelemetryEvent`]s land in a bounded ring stamped
//!   with a *logical* clock — `(sequence, tick)` — never wall time, so
//!   the serialized event log of a seeded run is bitwise reproducible.
//!
//! The determinism contract is deliberate: wall-clock durations flow
//! only into the aggregated histograms (exported as the `telemetry`
//! block of bench artifacts), while the event ring carries only values
//! that are a pure function of the seed. `expts --trace <room>`
//! serializes the ring as JSONL and byte-compares two full runs.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One structured event in the serving stack's taxonomy.
///
/// Every payload field is deterministic for a fixed seed: shard/panel
/// indices, logical tick numbers, probe counts, and objective values
/// computed by the (deterministic) numeric pipeline. Wall-clock
/// durations are *not* representable here by design — they belong in
/// the duration histograms.
#[derive(Clone, Debug, PartialEq)]
pub enum TelemetryEvent {
    /// A job was staged onto a shard queue before the workers started.
    JobEnqueued {
        /// Home shard the job was staged on.
        shard: usize,
        /// Job index within the submitted batch.
        job: usize,
    },
    /// An idle worker stole a job from a sibling shard's tail.
    JobStolen {
        /// The worker's home shard.
        home: usize,
        /// The shard the job was actually taken from.
        from: usize,
        /// Job index within the submitted batch.
        job: usize,
    },
    /// A job finished (successfully or not).
    JobCompleted {
        /// Shard the job was popped from.
        shard: usize,
        /// Job index within the submitted batch.
        job: usize,
        /// Whether the handler returned a value (vs deadline/panic).
        ok: bool,
    },
    /// One bias sweep over a panel completed.
    SweepSpan {
        /// Panel index that was swept.
        panel: usize,
        /// Search kind: `"cold"`, `"warm"` or `"reused"`.
        kind: &'static str,
        /// Probes spent by the sweep (0 for a reused plan).
        probes: usize,
    },
    /// One round of the joint multi-surface descent completed.
    JointRound {
        /// Round number, starting at 1.
        round: usize,
        /// Min-power lift this round contributed, in dB.
        lift_db: f64,
        /// Coupled-field probes charged to this round so far.
        coupled_probes: usize,
    },
    /// A device was handed off between panels.
    Handoff {
        /// Device index.
        device: usize,
        /// Panel the device left.
        from_panel: usize,
        /// Panel the device now homes on.
        to_panel: usize,
    },
    /// A fault was injected (a panel went dark this tick).
    FaultInjected {
        /// Panel index that failed.
        panel: usize,
        /// Fault kind: `"outage"`, `"psu_glitch"`, ….
        kind: &'static str,
    },
    /// A previously-dark panel healed this tick.
    FaultRecovered {
        /// Panel index that recovered.
        panel: usize,
    },
    /// A revived panel was re-admitted by the revival policy.
    Revival {
        /// Panel index that was re-admitted.
        panel: usize,
    },
    /// A lost report consumed one retry attempt.
    Retry {
        /// Panel whose report was retried.
        panel: usize,
        /// 1-based attempt number that was lost.
        attempt: usize,
        /// Whether the retry budget is now exhausted.
        exhausted: bool,
    },
    /// The PSU settling window billed (or deferred) a bias apply.
    PsuSettle {
        /// Panel whose supply settled.
        panel: usize,
        /// True when the apply was deferred to the next tick.
        deferred: bool,
    },
    /// One phase of a simulator tick, with its deterministic work count.
    TickPhase {
        /// Phase name: `"advance"`, `"reopt"`, `"settle"`, `"serve"`.
        phase: &'static str,
        /// Items processed (dirty devices, rebinds, panels, …).
        items: usize,
    },
}

impl TelemetryEvent {
    /// Snake-case type tag used in the JSONL serialization.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::JobEnqueued { .. } => "job_enqueued",
            TelemetryEvent::JobStolen { .. } => "job_stolen",
            TelemetryEvent::JobCompleted { .. } => "job_completed",
            TelemetryEvent::SweepSpan { .. } => "sweep_span",
            TelemetryEvent::JointRound { .. } => "joint_round",
            TelemetryEvent::Handoff { .. } => "handoff",
            TelemetryEvent::FaultInjected { .. } => "fault_injected",
            TelemetryEvent::FaultRecovered { .. } => "fault_recovered",
            TelemetryEvent::Revival { .. } => "revival",
            TelemetryEvent::Retry { .. } => "retry",
            TelemetryEvent::PsuSettle { .. } => "psu_settle",
            TelemetryEvent::TickPhase { .. } => "tick_phase",
        }
    }

    /// The payload rendered as JSON object fields (no braces), e.g.
    /// `"shard": 1, "job": 5`. Deterministic: integer fields print
    /// exactly and the single f64 field (`lift_db`) prints with a fixed
    /// precision, so identical bits yield identical text.
    pub fn fields_json(&self) -> String {
        match self {
            TelemetryEvent::JobEnqueued { shard, job } => {
                format!("\"shard\": {shard}, \"job\": {job}")
            }
            TelemetryEvent::JobStolen { home, from, job } => {
                format!("\"home\": {home}, \"from\": {from}, \"job\": {job}")
            }
            TelemetryEvent::JobCompleted { shard, job, ok } => {
                format!("\"shard\": {shard}, \"job\": {job}, \"ok\": {ok}")
            }
            TelemetryEvent::SweepSpan {
                panel,
                kind,
                probes,
            } => {
                format!("\"panel\": {panel}, \"kind\": \"{kind}\", \"probes\": {probes}")
            }
            TelemetryEvent::JointRound {
                round,
                lift_db,
                coupled_probes,
            } => format!(
                "\"round\": {round}, \"lift_db\": {lift_db:.6}, \
                 \"coupled_probes\": {coupled_probes}"
            ),
            TelemetryEvent::Handoff {
                device,
                from_panel,
                to_panel,
            } => format!(
                "\"device\": {device}, \"from_panel\": {from_panel}, \
                 \"to_panel\": {to_panel}"
            ),
            TelemetryEvent::FaultInjected { panel, kind } => {
                format!("\"panel\": {panel}, \"kind\": \"{kind}\"")
            }
            TelemetryEvent::FaultRecovered { panel } => format!("\"panel\": {panel}"),
            TelemetryEvent::Revival { panel } => format!("\"panel\": {panel}"),
            TelemetryEvent::Retry {
                panel,
                attempt,
                exhausted,
            } => format!("\"panel\": {panel}, \"attempt\": {attempt}, \"exhausted\": {exhausted}"),
            TelemetryEvent::PsuSettle { panel, deferred } => {
                format!("\"panel\": {panel}, \"deferred\": {deferred}")
            }
            TelemetryEvent::TickPhase { phase, items } => {
                format!("\"phase\": \"{phase}\", \"items\": {items}")
            }
        }
    }
}

/// The sink every instrumented layer reports into.
///
/// Implementations must be cheap when disabled: callers are expected to
/// guard event *construction* behind [`Recorder::enabled`], but the
/// methods themselves must also tolerate being called on the null path.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether this recorder keeps anything. Hot paths skip payload
    /// construction when this is `false`.
    fn enabled(&self) -> bool;
    /// Adds `delta` to the named monotonic counter.
    fn add(&self, name: &'static str, delta: u64);
    /// Sets the named gauge to its latest observed value.
    fn gauge(&self, name: &'static str, value: f64);
    /// Records one wall-clock duration, in nanoseconds, into the named
    /// log-binned histogram. Durations never enter the event ring.
    fn duration_ns(&self, name: &'static str, nanos: u64);
    /// Records one dimensionless value (queue depth, probe count, …)
    /// into the named log-binned histogram.
    fn record_value(&self, name: &'static str, value: u64);
    /// Appends a structured event to the bounded ring.
    fn emit(&self, event: TelemetryEvent);
    /// Advances the logical clock; subsequent events stamp this tick.
    fn set_tick(&self, tick: u64);
    /// The aggregated metrics as a single-line JSON object — the
    /// `"telemetry"` block stamped into bench artifacts.
    fn aggregate_json(&self) -> String;
}

/// The default recorder: keeps nothing, reports `enabled() == false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn duration_ns(&self, _name: &'static str, _nanos: u64) {}
    fn record_value(&self, _name: &'static str, _value: u64) {}
    fn emit(&self, _event: TelemetryEvent) {}
    fn set_tick(&self, _tick: u64) {}
    fn aggregate_json(&self) -> String {
        String::from("{\"mode\": \"null\"}")
    }
}

/// A log-binned (base-2) histogram over `u64` samples with count, sum
/// and exact min/max. Bin `b` holds values whose bit length is `b`
/// (bin 0 holds only zero), so 64 fixed bins cover the full range with
/// ≤ 2× relative quantile error — plenty for "where did the time go"
/// and far cheaper than storing samples.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    bins: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            bins: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Index of the bin holding `v`: its bit length.
    fn bin_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        self.bins[Self::bin_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bin-based quantile estimate (`q ∈ [0, 1]`): the geometric
    /// midpoint of the bin containing the q-th sample, clamped to the
    /// observed min/max. NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.bins.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                let mid = if b == 0 {
                    0.0
                } else {
                    // Geometric midpoint of [2^(b-1), 2^b).
                    2f64.powi(b as i32 - 1) * std::f64::consts::SQRT_2
                };
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Renders the summary as a single-line JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.1}, \"p50\": {:.1}, \"p95\": {:.1}, \
             \"min\": {}, \"max\": {}}}",
            self.count,
            self.mean(),
            if self.count == 0 {
                0.0
            } else {
                self.quantile(0.50)
            },
            if self.count == 0 {
                0.0
            } else {
                self.quantile(0.95)
            },
            if self.count == 0 { 0 } else { self.min },
            self.max,
        )
    }
}

/// Everything the ring recorder accumulates, behind one mutex.
#[derive(Debug, Default)]
struct RingInner {
    seq: u64,
    tick: u64,
    dropped: u64,
    events: VecDeque<(u64, u64, TelemetryEvent)>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    durations: BTreeMap<&'static str, LogHistogram>,
    values: BTreeMap<&'static str, LogHistogram>,
}

/// A bounded in-memory recorder: metrics aggregate, events ring.
///
/// Events are stamped with `(seq, tick)` — a process-order sequence
/// number and the logical simulation tick set via [`Recorder::set_tick`]
/// — never wall time, so [`RingRecorder::events_jsonl`] of a seeded
/// single-worker run is bitwise reproducible. When the ring is full the
/// *oldest* events are dropped (and counted), keeping the tail of a
/// long run, which is where a post-mortem usually looks.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingRecorder {
    /// Default event-ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a recorder whose ring keeps at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Serializes the event ring as JSONL, one event per line:
    /// `{"seq": 0, "tick": 0, "type": "job_enqueued", ...}`.
    pub fn events_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("telemetry lock");
        let mut out = String::new();
        for (seq, tick, ev) in &inner.events {
            out.push_str(&format!(
                "{{\"seq\": {seq}, \"tick\": {tick}, \"type\": \"{}\", {}}}\n",
                ev.kind(),
                ev.fields_json()
            ));
        }
        out
    }

    /// Number of events currently in the ring.
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("telemetry lock").events.len()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("telemetry lock").dropped
    }

    /// Value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("telemetry lock");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Clones the events out of the ring, oldest first.
    pub fn events(&self) -> Vec<(u64, u64, TelemetryEvent)> {
        let inner = self.inner.lock().expect("telemetry lock");
        inner.events.iter().cloned().collect()
    }
}

impl Default for RingRecorder {
    /// A ring at [`RingRecorder::DEFAULT_CAPACITY`].
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("telemetry lock");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().expect("telemetry lock");
        inner.gauges.insert(name, value);
    }

    fn duration_ns(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("telemetry lock");
        inner.durations.entry(name).or_default().record(nanos);
    }

    fn record_value(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("telemetry lock");
        inner.values.entry(name).or_default().record(value);
    }

    fn emit(&self, event: TelemetryEvent) {
        let mut inner = self.inner.lock().expect("telemetry lock");
        let seq = inner.seq;
        inner.seq += 1;
        let tick = inner.tick;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back((seq, tick, event));
    }

    fn set_tick(&self, tick: u64) {
        self.inner.lock().expect("telemetry lock").tick = tick;
    }

    fn aggregate_json(&self) -> String {
        let inner = self.inner.lock().expect("telemetry lock");
        let mut out = String::from("{\"mode\": \"ring\"");
        out.push_str(&format!(
            ", \"events\": {}, \"dropped\": {}",
            inner.events.len(),
            inner.dropped
        ));
        out.push_str(", \"counters\": {");
        for (i, (k, v)) in inner.counters.iter().enumerate() {
            let comma = if i == 0 { "" } else { ", " };
            out.push_str(&format!("{comma}\"{k}\": {v}"));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in inner.gauges.iter().enumerate() {
            let comma = if i == 0 { "" } else { ", " };
            out.push_str(&format!("{comma}\"{k}\": {v:.4}"));
        }
        out.push_str("}, \"durations_ns\": {");
        for (i, (k, h)) in inner.durations.iter().enumerate() {
            let comma = if i == 0 { "" } else { ", " };
            out.push_str(&format!("{comma}\"{k}\": {}", h.json()));
        }
        out.push_str("}, \"values\": {");
        for (i, (k, h)) in inner.values.iter().enumerate() {
            let comma = if i == 0 { "" } else { ", " };
            out.push_str(&format!("{comma}\"{k}\": {}", h.json()));
        }
        out.push_str("}}");
        out
    }
}

/// A cheaply clonable, shareable handle to a recorder — the type every
/// instrumented struct actually holds. `Default` is the null recorder,
/// so adding a handle field never changes behavior until someone opts
/// in with a ring.
#[derive(Clone)]
pub struct RecorderHandle(Arc<dyn Recorder>);

impl Default for RecorderHandle {
    fn default() -> Self {
        Self::null()
    }
}

// A handle is unwind-safe: the null recorder has no state at all, and
// the ring recorder keeps everything behind a poisoning `Mutex` whose
// accessors recover the inner value — observing a recorder after a
// caller panic can never expose a broken invariant. (Without these,
// every struct carrying a handle would stop being catch_unwind-able,
// which the fleet server's panic-isolation tests rely on.)
impl std::panic::UnwindSafe for RecorderHandle {}
impl std::panic::RefUnwindSafe for RecorderHandle {}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RecorderHandle({})",
            if self.enabled() { "ring" } else { "null" }
        )
    }
}

impl RecorderHandle {
    /// The no-op handle (the default everywhere).
    pub fn null() -> Self {
        Self(Arc::new(NullRecorder))
    }

    /// Wraps any recorder implementation.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self(recorder)
    }

    /// Whether the underlying recorder keeps anything. Guard event
    /// *construction* (formatting, lookups) behind this in hot paths.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.0.add(name, delta);
    }

    /// Sets the named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.0.gauge(name, value);
    }

    /// Records a wall-clock duration (nanoseconds) into a histogram.
    pub fn duration_ns(&self, name: &'static str, nanos: u64) {
        self.0.duration_ns(name, nanos);
    }

    /// Records a dimensionless value into a histogram.
    pub fn record_value(&self, name: &'static str, value: u64) {
        self.0.record_value(name, value);
    }

    /// Emits a structured event.
    pub fn emit(&self, event: TelemetryEvent) {
        self.0.emit(event);
    }

    /// Advances the logical tick clock.
    pub fn set_tick(&self, tick: u64) {
        self.0.set_tick(tick);
    }

    /// Opens an RAII span: the wall-clock between now and drop lands in
    /// the named duration histogram. On the null path no clock is read.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            name,
            start: if self.enabled() {
                Some((Instant::now(), self.clone()))
            } else {
                None
            },
        }
    }

    /// The aggregated `"telemetry"` block for bench artifacts.
    pub fn aggregate_json(&self) -> String {
        self.0.aggregate_json()
    }
}

/// The null-mode `"telemetry"` block stamped into artifacts produced
/// without a live recorder.
pub fn null_block_json() -> String {
    NullRecorder.aggregate_json()
}

/// An RAII timing guard from [`RecorderHandle::span`]: drop records the
/// elapsed wall time into the recorder's duration histogram. Against a
/// null recorder the span holds nothing and drop is a no-op.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<(Instant, RecorderHandle)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, handle)) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            handle.duration_ns(self.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let h = RecorderHandle::null();
        assert!(!h.enabled());
        h.add("x", 3);
        h.emit(TelemetryEvent::Revival { panel: 0 });
        h.set_tick(7);
        {
            let _s = h.span("quiet");
        }
        assert_eq!(h.aggregate_json(), "{\"mode\": \"null\"}");
        assert_eq!(format!("{h:?}"), "RecorderHandle(null)");
    }

    #[test]
    fn ring_counts_and_events_accumulate() {
        let ring = Arc::new(RingRecorder::new(8));
        let h = RecorderHandle::new(ring.clone());
        assert!(h.enabled());
        h.add("jobs", 2);
        h.add("jobs", 1);
        h.set_tick(4);
        h.emit(TelemetryEvent::JobEnqueued { shard: 1, job: 0 });
        assert_eq!(ring.counter("jobs"), 3);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 0, "first seq is 0");
        assert_eq!(events[0].1, 4, "tick stamp follows set_tick");
        let jsonl = ring.events_jsonl();
        assert_eq!(
            jsonl,
            "{\"seq\": 0, \"tick\": 4, \"type\": \"job_enqueued\", \
             \"shard\": 1, \"job\": 0}\n"
        );
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = Arc::new(RingRecorder::new(2));
        let h = RecorderHandle::new(ring.clone());
        for panel in 0..5 {
            h.emit(TelemetryEvent::Revival { panel });
        }
        assert_eq!(ring.event_count(), 2);
        assert_eq!(ring.dropped(), 3);
        let events = ring.events();
        // Oldest dropped: seqs 3 and 4 survive, in order.
        assert_eq!(events[0].0, 3);
        assert_eq!(events[1].0, 4);
    }

    #[test]
    fn log_histogram_binning_and_quantiles() {
        let mut h = LogHistogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 1110.0 / 6.0).abs() < 1e-9);
        // p50 lands in the bin of 3..4; the estimate must stay within
        // 2x of the exact median (3.5).
        let p50 = h.quantile(0.5);
        assert!((2.0..=8.0).contains(&p50), "p50 = {p50}");
        // p95 lands near the max and is clamped to it.
        let p95 = h.quantile(0.95);
        assert!((500.0..=1000.0).contains(&p95), "p95 = {p95}");
        // Zero has its own bin and an empty histogram yields NaN.
        let mut z = LogHistogram::default();
        assert!(z.quantile(0.5).is_nan());
        z.record(0);
        assert_eq!(z.quantile(0.5), 0.0);
    }

    #[test]
    fn span_lands_in_duration_histogram() {
        let ring = Arc::new(RingRecorder::new(8));
        let h = RecorderHandle::new(ring.clone());
        {
            let _s = h.span("work");
        }
        let json = ring.aggregate_json();
        assert!(json.contains("\"durations_ns\": {\"work\": {\"count\": 1"));
    }

    #[test]
    fn aggregate_json_is_one_object() {
        let ring = Arc::new(RingRecorder::new(8));
        let h = RecorderHandle::new(ring.clone());
        h.add("a", 1);
        h.gauge("g", 2.5);
        h.record_value("depth", 7);
        let json = ring.aggregate_json();
        assert!(json.starts_with("{\"mode\": \"ring\""));
        assert!(json.ends_with("}}"));
        assert!(json.contains("\"counters\": {\"a\": 1}"));
        assert!(json.contains("\"gauges\": {\"g\": 2.5000}"));
        assert!(json.contains("\"values\": {\"depth\": {\"count\": 1"));
    }
}
