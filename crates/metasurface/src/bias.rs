//! Bias → polarization-rotation mapping.
//!
//! The controller's view of the surface: a function from the two DC bias
//! voltages to the polarization rotation experienced by a wave crossing
//! the surface. Two implementations are provided:
//!
//! * [`RotationMap::from_design`] — extracted from the circuit model by
//!   measuring the output polarization orientation for a linearly
//!   polarized probe wave (what our "HFSS substitute" predicts);
//! * [`RotationMap::from_paper_table`] — the paper's published Table 1,
//!   for table-driven control experiments and for cross-validation.

use rfmath::interp::Grid2D;
use rfmath::jones::JonesVector;
use rfmath::units::{Degrees, Hertz, Radians};

use crate::designs::Design;
use crate::evaluator::StackEvaluator;
use crate::stack::BiasState;
use crate::tables;

/// A sampled (Vx, Vy) → rotation-degrees map with bilinear interpolation.
#[derive(Clone, Debug)]
pub struct RotationMap {
    grid: Grid2D,
    /// Whether the source grid is signed (circuit model) or magnitude
    /// only (the paper's table).
    signed: bool,
}

impl RotationMap {
    /// Measures the rotation grid from a design's circuit model at
    /// frequency `f`, probing with an X-polarized wave and reading the
    /// orientation of the transmitted state.
    ///
    /// The probe orientation readout is the physically honest measure: a
    /// real surface is not a perfect rotator (residual ellipticity,
    /// loss), and orientation-of-output is exactly what the paper's §3.4
    /// estimation procedure measures.
    pub fn from_design(design: &Design, f: Hertz, voltages: &[f64]) -> Self {
        assert!(voltages.len() >= 2, "need at least a 2×2 bias grid");
        let probe = JonesVector::horizontal();
        // Batched grid evaluation: per-axis branch solves are shared
        // across the whole (Vx, Vy) plane instead of recomputed per cell.
        let evaluator = StackEvaluator::new(&design.stack, f);
        let zs = evaluator
            .eval_grid(voltages, voltages)
            .into_iter()
            .map(|r| {
                r.map(|r| {
                    let out = r.transmission_jones().apply(probe);
                    out.orientation().to_degrees().0
                })
                .unwrap_or(0.0)
            })
            .collect();
        Self {
            grid: Grid2D::new(voltages.to_vec(), voltages.to_vec(), zs),
            signed: true,
        }
    }

    /// The paper's Table 1 as a rotation map (magnitudes).
    pub fn from_paper_table() -> Self {
        Self {
            grid: tables::table1_grid(),
            signed: false,
        }
    }

    /// Signed rotation (degrees) at a bias state, bilinearly interpolated.
    pub fn rotation_deg(&self, bias: BiasState) -> Degrees {
        Degrees(self.grid.eval(bias.vx.0, bias.vy.0))
    }

    /// Rotation magnitude in degrees.
    pub fn rotation_magnitude_deg(&self, bias: BiasState) -> Degrees {
        Degrees(self.rotation_deg(bias).0.abs())
    }

    /// Rotation in radians.
    pub fn rotation(&self, bias: BiasState) -> Radians {
        self.rotation_deg(bias).to_radians()
    }

    /// Extremes `(min, max)` of rotation magnitude over the sampled grid.
    pub fn magnitude_range(&self) -> (Degrees, Degrees) {
        let (lo, hi) = if self.signed {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for iy in 0..self.grid.ys().len() {
                for ix in 0..self.grid.xs().len() {
                    let m = self.grid.at(ix, iy).abs();
                    lo = lo.min(m);
                    hi = hi.max(m);
                }
            }
            (lo, hi)
        } else {
            self.grid.range()
        };
        (Degrees(lo), Degrees(hi))
    }

    /// The bias state maximizing rotation magnitude on the grid.
    pub fn argmax_magnitude(&self) -> (BiasState, Degrees) {
        let mut best = (BiasState::new(0.0, 0.0), f64::NEG_INFINITY);
        for iy in 0..self.grid.ys().len() {
            for ix in 0..self.grid.xs().len() {
                let m = self.grid.at(ix, iy).abs();
                if m > best.1 {
                    best = (BiasState::new(self.grid.xs()[ix], self.grid.ys()[iy]), m);
                }
            }
        }
        (best.0, Degrees(best.1))
    }

    /// Flattened samples (Vy-major) for statistical comparison against
    /// other maps.
    pub fn flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.grid.xs().len() * self.grid.ys().len());
        for iy in 0..self.grid.ys().len() {
            for ix in 0..self.grid.xs().len() {
                out.push(self.grid.at(ix, iy));
            }
        }
        out
    }

    /// Flattened magnitudes.
    pub fn flat_magnitude(&self) -> Vec<f64> {
        self.flat().into_iter().map(f64::abs).collect()
    }

    /// The sampled bias axis.
    pub fn voltages(&self) -> &[f64] {
        self.grid.xs()
    }
}

/// Compares a simulated rotation map against the paper's Table 1:
/// returns `(range_overlap, spearman_rho)` where `range_overlap` is the
/// fractional overlap of the [min, max] magnitude ranges and
/// `spearman_rho` the rank correlation of the flattened magnitude grids
/// (requires equal grid shapes).
pub fn compare_to_paper(simulated: &RotationMap) -> (f64, f64) {
    let paper = RotationMap::from_paper_table();
    let (smin, smax) = simulated.magnitude_range();
    let (pmin, pmax) = paper.magnitude_range();
    let lo = smin.0.max(pmin.0);
    let hi = smax.0.min(pmax.0);
    let overlap = ((hi - lo).max(0.0)) / (pmax.0 - pmin.0);
    let rho = if simulated.flat().len() == paper.flat().len() {
        rfmath::stats::spearman(&simulated.flat_magnitude(), &paper.flat_magnitude())
    } else {
        f64::NAN
    };
    (overlap, rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::fr4_optimized;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn paper_table_map_reproduces_extremes() {
        let m = RotationMap::from_paper_table();
        let (lo, hi) = m.magnitude_range();
        assert_eq!(lo.0, tables::TABLE1_MIN_DEG);
        assert_eq!(hi.0, tables::TABLE1_MAX_DEG);
    }

    #[test]
    fn paper_table_argmax() {
        let (bias, deg) = RotationMap::from_paper_table().argmax_magnitude();
        assert_eq!(deg.0, 48.7);
        assert_eq!(bias, BiasState::new(15.0, 2.0));
    }

    #[test]
    fn design_map_covers_tens_of_degrees() {
        let m = RotationMap::from_design(&fr4_optimized(), F, &tables::TABLE1_VOLTAGES);
        let (_, hi) = m.magnitude_range();
        assert!(
            hi.0 > 30.0,
            "circuit model should reach tens of degrees, got {}",
            hi.0
        );
    }

    #[test]
    fn design_map_moves_with_bias() {
        let m = RotationMap::from_design(&fr4_optimized(), F, &[2.0, 6.0, 15.0]);
        let a = m.rotation_deg(BiasState::new(2.0, 15.0)).0;
        let b = m.rotation_deg(BiasState::new(15.0, 2.0)).0;
        assert!((a - b).abs() > 20.0, "rotation must vary: {a} vs {b}");
    }

    #[test]
    fn interpolation_is_continuous() {
        let m = RotationMap::from_design(&fr4_optimized(), F, &[2.0, 6.0, 15.0]);
        let r1 = m.rotation_deg(BiasState::new(5.9, 6.0)).0;
        let r2 = m.rotation_deg(BiasState::new(6.1, 6.0)).0;
        assert!((r1 - r2).abs() < 3.0, "no jumps across knots: {r1} vs {r2}");
    }

    #[test]
    fn comparison_against_paper_has_overlap() {
        let m = RotationMap::from_design(&fr4_optimized(), F, &tables::TABLE1_VOLTAGES);
        let (overlap, rho) = compare_to_paper(&m);
        assert!(overlap > 0.5, "magnitude ranges should overlap: {overlap}");
        assert!(rho.is_finite());
    }
}
