//! Layer stacks: cascading patterned boards into a full surface response.
//!
//! A [`SurfaceStack`] is an ordered list of panels — each an
//! [`AnisotropicSheet`] mounted at a rotation angle — separated by air
//! gaps. Evaluating the stack at a frequency and bias state produces a
//! dual-polarization scattering description ([`PolarizedS`]) from which
//! both the transmissive Jones matrix (with all insertion loss and
//! multiple reflections included) and the reflective response follow.

use microwave::polarized::PolarizedS;
use microwave::substrate::ETA0;
use microwave::twoport::Abcd;
use rfmath::units::{Hertz, Meters, Radians, Volts};

use crate::sheet::AnisotropicSheet;

/// A board mounted in the stack at a rotation angle.
#[derive(Clone, Debug)]
pub struct Panel {
    /// The board's electrical model.
    pub sheet: AnisotropicSheet,
    /// Mounting rotation of the board's principal axes, counterclockwise.
    pub rotation: Radians,
}

/// The bias-rail supply ceiling (the paper sweeps 0–30 V). The single
/// source of truth for every clamp that mirrors `Metasurface::set_bias`
/// — the fleet engine and the multilink grids must agree with it
/// exactly for their batched == naive equivalence contracts to hold.
pub const SUPPLY_CEILING: Volts = Volts(30.0);

/// Bias state of the surface: the two DC channels of §3.3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BiasState {
    /// X-axis phase-shifter bias.
    pub vx: Volts,
    /// Y-axis phase-shifter bias.
    pub vy: Volts,
}

impl BiasState {
    /// Creates a bias state from plain volt values.
    pub fn new(vx: f64, vy: f64) -> Self {
        Self {
            vx: Volts(vx),
            vy: Volts(vy),
        }
    }

    /// Clamps both channels into the supply's `[0, v_max]` range.
    pub fn clamped(self, v_max: Volts) -> Self {
        Self {
            vx: self.vx.clamp(Volts(0.0), v_max),
            vy: self.vy.clamp(Volts(0.0), v_max),
        }
    }
}

/// An ordered stack of panels with uniform air gaps between them.
#[derive(Clone, Debug)]
pub struct SurfaceStack {
    /// Panels in wave-traversal order.
    pub panels: Vec<Panel>,
    /// Air gap between consecutive panels.
    pub gaps: Vec<Meters>,
}

impl SurfaceStack {
    /// Builds a stack; `gaps.len()` must be `panels.len() − 1`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn new(panels: Vec<Panel>, gaps: Vec<Meters>) -> Self {
        assert_eq!(
            gaps.len(),
            panels.len().saturating_sub(1),
            "need exactly one gap between consecutive panels"
        );
        Self { panels, gaps }
    }

    /// Evaluates the full polarized scattering response at frequency `f`
    /// and bias `bias`.
    ///
    /// Returns `None` if an intermediate stage is numerically opaque
    /// (singular transmission), which does not occur for physical
    /// parameter sets.
    pub fn response(&self, f: Hertz, bias: BiasState) -> Option<PolarizedS> {
        let mut stages: Vec<PolarizedS> = Vec::with_capacity(self.panels.len() * 2);
        for (i, panel) in self.panels.iter().enumerate() {
            if i > 0 {
                let gap = Abcd::air_gap(self.gaps[i - 1], f).to_s(ETA0);
                stages.push(PolarizedS::from_axes(gap, gap));
            }
            let sx = panel.sheet.abcd_x(f, bias.vx).to_s(ETA0);
            let sy = panel.sheet.abcd_y(f, bias.vy).to_s(ETA0);
            stages.push(PolarizedS::from_axes(sx, sy).rotated(panel.rotation));
        }
        PolarizedS::chain(&stages)
    }

    /// Number of boards in the stack.
    pub fn board_count(&self) -> usize {
        self.panels.len()
    }

    /// Total stack thickness (boards + gaps).
    pub fn total_thickness(&self) -> Meters {
        let boards: f64 = self.panels.iter().map(|p| p.sheet.slab.thickness.0).sum();
        let gaps: f64 = self.gaps.iter().map(|g| g.0).sum();
        Meters(boards + gaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sheet::SheetBranch;
    use microwave::lumped::inductance_for_resonance;
    use microwave::substrate::{Material, Slab};
    use rfmath::units::Farads;
    use rfmath::units::Ohms;

    const F: Hertz = Hertz(2.44e9);

    fn resonant_panel(rotation: f64) -> Panel {
        let c = Farads::from_pf(0.4);
        let branch = SheetBranch::Fixed {
            l: inductance_for_resonance(c, F),
            c,
            r: Ohms(0.4),
        };
        Panel {
            sheet: AnisotropicSheet {
                x: branch.clone(),
                y: branch,
                slab: Slab::from_mm(Material::FR4, 0.8),
            },
            rotation: Radians(rotation),
        }
    }

    #[test]
    fn bias_state_clamps() {
        let b = BiasState::new(-3.0, 45.0).clamped(Volts(30.0));
        assert_eq!(b.vx, Volts(0.0));
        assert_eq!(b.vy, Volts(30.0));
    }

    #[test]
    fn single_resonant_panel_is_mostly_transparent() {
        let stack = SurfaceStack::new(vec![resonant_panel(0.0)], vec![]);
        let r = stack.response(F, BiasState::new(0.0, 0.0)).unwrap();
        assert!(
            r.efficiency_x_db().0 > -1.5,
            "eff = {} dB",
            r.efficiency_x_db().0
        );
    }

    #[test]
    fn isotropic_panels_do_not_mix_polarizations() {
        let stack = SurfaceStack::new(
            vec![resonant_panel(0.0), resonant_panel(0.6)],
            vec![Meters::from_mm(11.0)],
        );
        let r = stack.response(F, BiasState::new(0.0, 0.0)).unwrap();
        // Identical X/Y branches ⇒ rotation is a no-op ⇒ no cross terms.
        assert!(r.s21.b.abs() < 1e-9);
        assert!(r.s21.c.abs() < 1e-9);
    }

    #[test]
    fn stack_thickness_accounts_for_gaps() {
        let stack = SurfaceStack::new(
            vec![resonant_panel(0.0), resonant_panel(0.0)],
            vec![Meters::from_mm(11.0)],
        );
        assert!((stack.total_thickness().mm() - 12.6).abs() < 1e-9);
        assert_eq!(stack.board_count(), 2);
    }

    #[test]
    fn response_is_passive_and_reciprocal() {
        let stack = SurfaceStack::new(
            vec![resonant_panel(0.0), resonant_panel(0.9)],
            vec![Meters::from_mm(11.0)],
        );
        for f_ghz in [2.2, 2.44, 2.6] {
            let r = stack
                .response(Hertz::from_ghz(f_ghz), BiasState::new(5.0, 5.0))
                .unwrap();
            assert!(r.is_passive(1e-9), "active at {f_ghz} GHz");
            assert!(r.is_reciprocal(1e-9), "non-reciprocal at {f_ghz} GHz");
        }
    }

    #[test]
    #[should_panic(expected = "one gap")]
    fn gap_count_is_validated() {
        let _ = SurfaceStack::new(vec![resonant_panel(0.0)], vec![Meters(0.01)]);
    }
}
