//! Fabrication cost model (paper §4).
//!
//! The paper's scale argument: the prototype costs ≈$900 total — ≈$540 of
//! PCB plus 720 varactors at ≈$0.50 — i.e. ≈$5 per functional unit,
//! falling toward $2/unit at volumes above 3000 units per PCB run. The
//! same structure on Rogers 5880 would be dominated by laminate cost,
//! which is the quantitative backbone of the low-cost design choice.

use crate::designs::Design;
use crate::geometry::PanelGeometry;
use microwave::varactor::Varactor;

/// Bill-of-materials estimate for one fabricated panel.
#[derive(Clone, Debug, PartialEq)]
pub struct BillOfMaterials {
    /// PCB (laminate + patterning) cost, USD.
    pub pcb_usd: f64,
    /// Varactor diode cost, USD.
    pub varactors_usd: f64,
    /// Assembly overhead (placement, connectors, bias wiring), USD.
    pub assembly_usd: f64,
}

impl BillOfMaterials {
    /// Total panel cost, USD.
    pub fn total_usd(&self) -> f64 {
        self.pcb_usd + self.varactors_usd + self.assembly_usd
    }

    /// Cost per functional unit, USD.
    pub fn per_unit_usd(&self, geometry: &PanelGeometry) -> f64 {
        self.total_usd() / geometry.units as f64
    }
}

/// Volume discount multiplier for PCB runs: economies of scale bring the
/// board cost down roughly 60% at ≥3000 units per run (the paper's $5 →
/// $2 per-unit trajectory).
pub fn volume_discount(units_per_run: usize) -> f64 {
    match units_per_run {
        0..=199 => 1.0,
        200..=999 => 0.8,
        1000..=2999 => 0.6,
        _ => 0.4,
    }
}

/// Estimates the BOM for fabricating `geometry` with the given `design`
/// at a production volume of `units_per_run` functional units.
pub fn estimate_bom(
    design: &Design,
    geometry: &PanelGeometry,
    units_per_run: usize,
) -> BillOfMaterials {
    // Laminate cost: every board in the stack covers the panel area.
    let area = geometry.area_m2();
    let per_board_usd: f64 = design
        .stack
        .panels
        .iter()
        .map(|p| p.sheet.slab.cost_usd_per_m2() * area)
        .sum();
    // Patterning/drill/mask roughly doubles bare laminate for small runs.
    let pcb = per_board_usd * 2.0 * volume_discount(units_per_run);

    let varactors = geometry.total_varactors() as f64 * Varactor::smv1233().unit_cost_usd;

    // Assembly: per-diode placement plus fixed panel overhead.
    let assembly = geometry.total_varactors() as f64 * 0.05 + 40.0;

    BillOfMaterials {
        pcb_usd: pcb,
        varactors_usd: varactors,
        assembly_usd: assembly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{fr4_optimized, rogers_reference};

    #[test]
    fn prototype_cost_matches_paper_order() {
        // Paper: ≈$900 total, ≈$5/unit at prototype volume.
        let bom = estimate_bom(&fr4_optimized(), &PanelGeometry::llama_prototype(), 180);
        let total = bom.total_usd();
        assert!(
            (400.0..1500.0).contains(&total),
            "total = ${total:.0}, expected same order as the paper's $900"
        );
        let per_unit = bom.per_unit_usd(&PanelGeometry::llama_prototype());
        assert!((2.0..10.0).contains(&per_unit), "per unit = ${per_unit:.2}");
    }

    #[test]
    fn varactors_match_paper_line_item() {
        // 720 diodes at $0.50 = $360.
        let bom = estimate_bom(&fr4_optimized(), &PanelGeometry::llama_prototype(), 180);
        assert!((bom.varactors_usd - 360.0).abs() < 1.0);
    }

    #[test]
    fn rogers_panel_is_far_more_expensive() {
        let geometry = PanelGeometry::llama_prototype();
        let fr4 = estimate_bom(&fr4_optimized(), &geometry, 180);
        let rogers = estimate_bom(&rogers_reference(), &geometry, 180);
        assert!(
            rogers.pcb_usd > 10.0 * fr4.pcb_usd,
            "Rogers ${:.0} vs FR4 ${:.0}",
            rogers.pcb_usd,
            fr4.pcb_usd
        );
    }

    #[test]
    fn volume_brings_unit_cost_down() {
        let geometry = PanelGeometry::llama_prototype();
        let proto = estimate_bom(&fr4_optimized(), &geometry, 180);
        let volume = estimate_bom(&fr4_optimized(), &geometry, 5000);
        assert!(volume.total_usd() < proto.total_usd());
        // The paper's trajectory: toward ~$2/unit at ≥3000 units.
        let per_unit = volume.per_unit_usd(&geometry);
        assert!(per_unit < 6.0, "volume per-unit = ${per_unit:.2}");
    }

    #[test]
    fn discount_tiers_are_monotone() {
        let mut prev = f64::INFINITY;
        for n in [10, 300, 1500, 4000] {
            let d = volume_discount(n);
            assert!(d <= prev);
            prev = d;
        }
    }
}
