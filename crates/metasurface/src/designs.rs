//! The three metasurface designs compared in the paper's §3.2.
//!
//! * [`rogers_reference`] — the high-performance reference: the 10 GHz
//!   rotator architecture of Wu et al. scaled to 2.4 GHz and built on
//!   Rogers 5880. Many resonant sheets, thick boards — fine on a
//!   `tanδ = 0.0009` laminate (Figure 8).
//! * [`fr4_naive`] — the same structure with FR4 dropped in. Dielectric
//!   ESR in every resonant sheet plus slab loss wrecks the efficiency
//!   (Figure 9).
//! * [`fr4_optimized`] — LLAMA's design: fewer phase-shifting layers
//!   (two, per the Eq. 12 bandwidth argument), thin 0.8 mm boards, and
//!   reduced sheet Q. Comparable efficiency to the Rogers reference at a
//!   fraction of the cost (Figure 10).
//!
//! ## Calibration note
//!
//! Sheet L/C values are *derived* from the Figure 6(b) geometry through
//! the grid formulas where possible and then trimmed (values documented
//! inline) so the passband centers on the 2.4–2.5 GHz ISM band — the
//! same role HFSS optimization plays in the paper's workflow. The
//! FR4-vs-Rogers efficiency contrast is **not** painted on: both designs
//! share the same topology and differ only in the material constants.

use microwave::substrate::{Material, Slab};
use microwave::varactor::Varactor;
use rfmath::units::{Farads, Henries, Meters, Ohms, Radians};
use std::f64::consts::FRAC_PI_4;

use crate::sheet::{AnisotropicSheet, SheetBranch};
use crate::stack::{Panel, SurfaceStack};

/// A named, fully specified surface design.
#[derive(Clone, Debug)]
pub struct Design {
    /// Display name used by benches and EXPERIMENTS.md.
    pub name: &'static str,
    /// The physical stack.
    pub stack: SurfaceStack,
    /// Substrate the boards are built on.
    pub material: Material,
}

/// Sheet style: how a target susceptance is realized geometrically.
///
/// The same net susceptance `B` at band center can come from a sparse
/// pattern operating far from resonance (little stored energy — low Q)
/// or from a dense pattern operating near its resonance (large
/// circulating energy — high Q). Dielectric ESR loss scales with the
/// *raw* stored energy, so high-Q patterns are dramatically more
/// sensitive to the substrate loss tangent. The reference 10 GHz design
/// uses dense, near-resonant patterns ("complex structures"); LLAMA's
/// optimization replaces them with sparse ones (§3.2: "simplify the
/// structure of tunable phase shifter layers").
#[derive(Clone, Copy, Debug, PartialEq)]
enum SheetStyle {
    /// Dense near-resonant patterns (the scaled reference architecture).
    HighQ,
    /// Sparse far-from-resonance patterns (LLAMA's optimized layout).
    LowQ,
}

/// Frequency the sheet susceptances are synthesized at.
const F0: f64 = 2.44e9;

/// Synthesizes a fixed tank realizing net susceptance `b_net` (siemens,
/// positive = capacitive) at `F0` with the given raw capacitive loading
/// `c_raw` (which sets stored energy and thus ESR sensitivity).
fn tank_for_susceptance(b_net: f64, c_raw_pf: f64, r_copper: f64) -> SheetBranch {
    let w0 = std::f64::consts::TAU * F0;
    let c = Farads::from_pf(c_raw_pf);
    let b_c = w0 * c.0;
    // B_net = B_C − B_L  ⇒  B_L = B_C − B_net  ⇒  L = 1/(ω·B_L).
    let b_l = b_c - b_net;
    assert!(
        b_l > 0.0,
        "raw capacitance too small for target susceptance"
    );
    SheetBranch::Fixed {
        l: Henries(1.0 / (w0 * b_l)),
        c,
        r: Ohms(r_copper),
    }
}

/// Meander-line QWP sheet: inductive along X, capacitive along Y.
///
/// Susceptances are sized for ±22.5° of differential phase per board at
/// band center (`|B|·η0/2 = tan 22.5°` ⇒ |B| ≈ 2.2 mS at 2.44 GHz), so
/// two boards give the 90° quarter-wave retardation.
fn qwp_sheet(
    material: &Material,
    thickness_mm: f64,
    style: SheetStyle,
    r_copper: f64,
) -> AnisotropicSheet {
    // tan(22.5°)·2/η0 = 2.197 mS
    let b = 2.0 * (22.5_f64).to_radians().tan() / microwave::substrate::ETA0;
    let c_raw = match style {
        SheetStyle::HighQ => 1.6, // dense patches: ωC ≈ 25 mS of raw loading
        SheetStyle::LowQ => 0.30, // sparse pattern: ωC ≈ 4.6 mS
    };
    AnisotropicSheet {
        x: tank_for_susceptance(-b, c_raw, r_copper),
        y: tank_for_susceptance(b, c_raw, r_copper),
        slab: Slab::from_mm(material.clone(), thickness_mm),
    }
}

/// Tunable BFS sheet. The X and Y patterns differ slightly (Fig. 6b shows
/// 10.8 mm vs 10.4 mm branch geometry), which staggers the two axes'
/// phase curves and gives the paper's Table 1 its asymmetric,
/// non-zero-diagonal structure.
fn bfs_sheet(
    material: &Material,
    thickness_mm: f64,
    style: SheetStyle,
    r_copper: f64,
) -> AnisotropicSheet {
    let (lx, ly, cc_x, cc_y) = match style {
        // Dense coupling: most of the diode swing reaches the tank, at
        // the price of large circulating energy.
        SheetStyle::HighQ => (5.2, 5.0, 2.4, 2.5),
        // Sparse coupling: the levered C_eff keeps the tank near
        // resonance (transparent) across the band.
        SheetStyle::LowQ => (7.3, 6.9, 1.0, 1.05),
    };
    AnisotropicSheet {
        x: SheetBranch::Tuned {
            l: Henries::from_nh(lx),
            c_couple: Farads::from_pf(cc_x),
            varactor: Varactor::smv1233(),
            r: Ohms(r_copper),
        },
        y: SheetBranch::Tuned {
            l: Henries::from_nh(ly),
            c_couple: Farads::from_pf(cc_y),
            varactor: Varactor::smv1233(),
            r: Ohms(r_copper),
        },
        slab: Slab::from_mm(material.clone(), thickness_mm),
    }
}

/// LLAMA's optimized low-cost design (Figure 10): two QWP boards per
/// side, two thin BFS layers, 0.8 mm FR4, Figure 6(a) board spacing.
pub fn fr4_optimized() -> Design {
    build(
        "FR4 optimized (LLAMA)",
        Material::FR4,
        0.8, // thin boards
        2,   // BFS layers
        SheetStyle::LowQ,
        0.6, // sparse narrow traces: higher copper resistance
        Spacing {
            qwp_pair: Meters::from_mm(15.0),
            qwp_bfs: Meters::from_mm(30.0),
            bfs_bfs: Meters::from_mm(30.0),
        },
    )
}

/// The Rogers 5880 reference design (Figure 8): the scaled 10 GHz
/// architecture — four dense BFS layers on thick low-loss boards.
pub fn rogers_reference() -> Design {
    build(
        "Rogers 5880 reference",
        Material::ROGERS_5880,
        3.2, // thick boards, as in the original millimeter-scale design
        4,   // four phase-shifting layers for phase margin
        SheetStyle::HighQ,
        0.12, // dense wide traces: low copper resistance
        Spacing {
            qwp_pair: Meters::from_mm(15.0),
            qwp_bfs: Meters::from_mm(30.0),
            bfs_bfs: Meters::from_mm(30.0),
        },
    )
}

/// The naive FR4 substitution (Figure 9): identical structure to
/// [`rogers_reference`] with the material swapped — the paper's "what
/// goes wrong" case.
pub fn fr4_naive() -> Design {
    build(
        "FR4 naive substitution",
        Material::FR4,
        3.2,
        4,
        SheetStyle::HighQ,
        0.12,
        Spacing {
            qwp_pair: Meters::from_mm(15.0),
            qwp_bfs: Meters::from_mm(30.0),
            bfs_bfs: Meters::from_mm(30.0),
        },
    )
}

/// Electrical board spacings used by the circuit model.
///
/// **Substitution note (documented per DESIGN.md):** the fabricated
/// prototype realizes inter-layer matching with printed structures inside
/// a 5 mm stack; a pure transmission-line cascade needs explicit spacer
/// sections to play the same impedance-inverter role. We therefore use
/// near-quarter-wave effective spacings between resonant sheets. These
/// are *electrical* lengths of the equivalent circuit, not mechanical
/// drawings of the PCB stack.
#[derive(Clone, Copy, Debug)]
struct Spacing {
    /// Between the two boards of each QWP.
    qwp_pair: Meters,
    /// Between the inner QWP board and the first BFS layer.
    qwp_bfs: Meters,
    /// Between consecutive BFS layers.
    bfs_bfs: Meters,
}

/// The 900 MHz RFID-band scaling the paper reports trying (§3.2: "We
/// have also simulated the polarization rotator structure in the 900 MHz
/// band used for RFID and found comparable performance after additional
/// scaling").
///
/// Scaling a resonant sheet from `f0` to `f0/k` multiplies every L and C
/// by `k` (impedance-preserving frequency scaling) and stretches the
/// spacer sections by the same factor. The varactor keeps its physical
/// C–V law, so the BFS coupling capacitance absorbs the scale.
pub fn rfid_900mhz() -> Design {
    let scale = F0 / 0.915e9; // ≈ 2.67× to move 2.44 GHz down to 915 MHz
    let base = fr4_optimized();
    let mut panels = base.stack.panels.clone();
    for panel in &mut panels {
        for branch in [&mut panel.sheet.x, &mut panel.sheet.y] {
            match branch {
                crate::sheet::SheetBranch::Fixed { l, c, .. } => {
                    l.0 *= scale;
                    c.0 *= scale;
                }
                crate::sheet::SheetBranch::Tuned { l, c_couple, .. } => {
                    l.0 *= scale;
                    c_couple.0 *= scale;
                }
                crate::sheet::SheetBranch::Transparent => {}
            }
        }
    }
    let gaps = base
        .stack
        .gaps
        .iter()
        .map(|g| Meters(g.0 * scale))
        .collect();
    Design {
        name: "FR4 optimized, 915 MHz scaling",
        stack: SurfaceStack::new(panels, gaps),
        material: Material::FR4,
    }
}

/// Common stack builder: QWP(+45°) ×2 | BFS ×n | QWP(−45°) ×2.
fn build(
    name: &'static str,
    material: Material,
    board_mm: f64,
    bfs_layers: usize,
    style: SheetStyle,
    r_copper: f64,
    sp: Spacing,
) -> Design {
    let mut panels = Vec::new();
    let mut gaps = Vec::new();

    // Input-side QWP at +45°.
    panels.push(Panel {
        sheet: qwp_sheet(&material, board_mm, style, r_copper),
        rotation: Radians(FRAC_PI_4),
    });
    gaps.push(sp.qwp_pair);
    panels.push(Panel {
        sheet: qwp_sheet(&material, board_mm, style, r_copper),
        rotation: Radians(FRAC_PI_4),
    });
    gaps.push(sp.qwp_bfs);

    // Axis-aligned tunable BFS layers.
    for i in 0..bfs_layers {
        if i > 0 {
            gaps.push(sp.bfs_bfs);
        }
        panels.push(Panel {
            sheet: bfs_sheet(&material, board_mm, style, r_copper),
            rotation: Radians(0.0),
        });
    }

    // Output-side QWP at −45°.
    gaps.push(sp.qwp_bfs);
    panels.push(Panel {
        sheet: qwp_sheet(&material, board_mm, style, r_copper),
        rotation: Radians(-FRAC_PI_4),
    });
    gaps.push(sp.qwp_pair);
    panels.push(Panel {
        sheet: qwp_sheet(&material, board_mm, style, r_copper),
        rotation: Radians(-FRAC_PI_4),
    });

    Design {
        name,
        stack: SurfaceStack::new(panels, gaps),
        material,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::BiasState;
    use rfmath::units::Hertz;

    const F: Hertz = Hertz(2.44e9);
    const MID_BIAS: BiasState = BiasState {
        vx: rfmath::units::Volts(6.0),
        vy: rfmath::units::Volts(6.0),
    };

    #[test]
    fn optimized_design_has_six_boards() {
        let d = fr4_optimized();
        assert_eq!(d.stack.board_count(), 6);
    }

    #[test]
    fn reference_designs_have_eight_boards() {
        assert_eq!(rogers_reference().stack.board_count(), 8);
        assert_eq!(fr4_naive().stack.board_count(), 8);
    }

    #[test]
    fn all_designs_produce_responses() {
        for d in [fr4_optimized(), rogers_reference(), fr4_naive()] {
            let r = d.stack.response(F, MID_BIAS);
            assert!(r.is_some(), "{} produced no response", d.name);
            let r = r.unwrap();
            assert!(r.is_passive(1e-9), "{} is active", d.name);
            // The compiled evaluator agrees with the naive cascade.
            let fast = crate::evaluator::StackEvaluator::new(&d.stack, F)
                .response(MID_BIAS)
                .expect("evaluator response exists");
            assert!(
                fast.s21.max_abs_diff(r.s21) < 1e-12,
                "{} batched/naive disagree",
                d.name
            );
        }
    }

    #[test]
    fn naive_fr4_is_much_lossier_than_rogers() {
        // The Figure 8-vs-9 contrast: same structure, material swapped.
        let rogers = rogers_reference().stack.response(F, MID_BIAS).unwrap();
        let naive = fr4_naive().stack.response(F, MID_BIAS).unwrap();
        let gap = rogers.efficiency_x_db().0 - naive.efficiency_x_db().0;
        assert!(gap > 3.0, "expected ≥3 dB contrast, got {gap:.1} dB");
    }

    #[test]
    fn rfid_scaling_moves_the_passband() {
        // The scaled design passes at 915 MHz and no longer at 2.44 GHz.
        let d = rfid_900mhz();
        let at_915 = d
            .stack
            .response(Hertz(0.915e9), MID_BIAS)
            .unwrap()
            .efficiency_x_db()
            .0;
        let at_244 = d.stack.response(F, MID_BIAS).unwrap().efficiency_x_db().0;
        assert!(
            at_915 > at_244 + 3.0,
            "915 MHz {at_915:.1} dB vs 2.44 GHz {at_244:.1} dB"
        );
        assert!(at_915 > -8.0, "scaled band usable: {at_915:.1} dB");
    }

    #[test]
    fn rfid_scaling_still_rotates() {
        let d = rfid_900mhz();
        let probe = rfmath::jones::JonesVector::horizontal();
        // One compiled plan serves both bias probes (the static QWP and
        // gap stages are shared), replacing two full cascade rebuilds.
        let evaluator = crate::evaluator::StackEvaluator::new(&d.stack, Hertz(0.915e9));
        let mut angles = Vec::new();
        for (vx, vy) in [(2.0, 15.0), (15.0, 2.0)] {
            let r = evaluator.response(BiasState::new(vx, vy)).unwrap();
            angles.push(
                r.transmission_jones()
                    .apply(probe)
                    .orientation()
                    .to_degrees()
                    .0,
            );
        }
        assert!(
            (angles[0] - angles[1]).abs() > 20.0,
            "bias must steer rotation at 915 MHz: {angles:?}"
        );
    }

    #[test]
    fn optimized_fr4_recovers_efficiency() {
        // The Figure 10 claim: optimized FR4 ≈ Rogers reference.
        let opt = fr4_optimized().stack.response(F, MID_BIAS).unwrap();
        let naive = fr4_naive().stack.response(F, MID_BIAS).unwrap();
        assert!(
            opt.efficiency_x_db().0 > naive.efficiency_x_db().0 + 3.0,
            "optimized {} dB vs naive {} dB",
            opt.efficiency_x_db().0,
            naive.efficiency_x_db().0
        );
    }
}
