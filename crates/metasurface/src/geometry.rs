//! Physical geometry of the LLAMA metasurface (paper Figure 6 and §4).
//!
//! The fabricated prototype is a 480 × 480 × 5 mm panel of 180 patterned
//! units; each unit carries the quarter-wave-plate (QWP) patterns on the
//! outer boards and the varactor-loaded birefringent-structure (BFS)
//! pattern on the inner board. The dimensions below are taken directly
//! from Figure 6(b) and are used by the unit-cell electrical model to
//! derive sheet inductances/capacitances via the grid formulas in
//! [`microwave::microstrip`].

use rfmath::units::Meters;

/// Unit-cell period of the QWP pattern boards (Fig. 6b: 32 mm square).
pub const QWP_UNIT_PERIOD: Meters = Meters(0.032);

/// Unit-cell period of the BFS pattern board (Fig. 6b: 40 mm square).
pub const BFS_UNIT_PERIOD: Meters = Meters(0.040);

/// QWP outer-pattern element dimensions (Fig. 6b, mm): a 12.4 × 5.6 mm
/// patch with a 7.2 mm coupling section.
pub const QWP_OUTER_PATCH: (f64, f64) = (12.4, 5.6);

/// QWP inner-pattern element dimensions (Fig. 6b, mm): 12.4 × 10.8 mm
/// with a 7.2 mm coupling section and 10.4 mm inner spacing.
pub const QWP_INNER_PATCH: (f64, f64) = (12.4, 10.8);

/// QWP outer pattern total element height (Fig. 6b: 20.8 mm).
pub const QWP_OUTER_HEIGHT_MM: f64 = 20.8;

/// BFS pattern strip length (Fig. 6b: 23.2 mm).
pub const BFS_STRIP_LENGTH_MM: f64 = 23.2;

/// BFS pattern strip width (Fig. 6b: 4 mm with 0.8/0.4 mm features).
pub const BFS_STRIP_WIDTH_MM: f64 = 4.0;

/// BFS fine feature width (Fig. 6b: 0.4 mm gaps).
pub const BFS_GAP_MM: f64 = 0.4;

/// Air gap between the QWP outer and QWP inner boards (Fig. 6a: 6 mm).
pub const GAP_QWP_OUTER_INNER: Meters = Meters(0.006);

/// Air gap between the QWP inner board and the BFS board (Fig. 6a: 11 mm).
pub const GAP_QWP_BFS: Meters = Meters(0.011);

/// Air gap between the BFS board and the mirror-side QWP (Fig. 6a: 7 mm).
pub const GAP_BFS_QWP: Meters = Meters(0.007);

/// Thickness of each patterned board in the optimized design (thin FR4).
pub const BOARD_THICKNESS: Meters = Meters(0.0008);

/// Full-panel description: lattice of unit cells plus per-unit parts.
#[derive(Clone, Debug, PartialEq)]
pub struct PanelGeometry {
    /// Panel edge length (square panels).
    pub side: Meters,
    /// Panel total thickness (boards + spacing).
    pub thickness: Meters,
    /// Number of functional units on the panel.
    pub units: usize,
    /// Varactor diodes per unit (X and Y branches of the BFS pattern).
    pub varactors_per_unit: usize,
}

impl PanelGeometry {
    /// The fabricated LLAMA prototype: 480 × 480 × 5 mm, 180 units,
    /// 720 varactors total (4 per unit).
    pub fn llama_prototype() -> Self {
        Self {
            side: Meters(0.48),
            thickness: Meters(0.005),
            units: 180,
            varactors_per_unit: 4,
        }
    }

    /// Total varactor count on the panel.
    pub fn total_varactors(&self) -> usize {
        self.units * self.varactors_per_unit
    }

    /// Panel area in m².
    pub fn area_m2(&self) -> f64 {
        self.side.0 * self.side.0
    }

    /// Approximate physical aperture gain over isotropic at wavelength
    /// `lambda` (used to sanity-check reflective link budgets):
    /// `G = 4πA/λ²`.
    pub fn aperture_gain_linear(&self, lambda: Meters) -> f64 {
        4.0 * std::f64::consts::PI * self.area_m2() / (lambda.0 * lambda.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_counts() {
        let p = PanelGeometry::llama_prototype();
        assert_eq!(p.units, 180);
        assert_eq!(p.total_varactors(), 720);
        assert!((p.area_m2() - 0.2304).abs() < 1e-9);
    }

    #[test]
    fn unit_lattice_fits_panel() {
        // 180 units of 32 mm pitch fit in a 480 mm square:
        // 15 × 12 = 180 exactly.
        let p = PanelGeometry::llama_prototype();
        let cols = (p.side.0 / QWP_UNIT_PERIOD.0).round() as usize;
        assert_eq!(cols, 15);
        assert_eq!(cols * 12, p.units);
    }

    #[test]
    fn aperture_gain_is_large_at_2_4ghz() {
        let p = PanelGeometry::llama_prototype();
        let lambda = Meters(0.123);
        let g = p.aperture_gain_linear(lambda);
        // A 0.23 m² aperture at 12.3 cm wavelength: ≈ 191 (≈ 22.8 dB).
        assert!(g > 100.0 && g < 400.0, "G = {g}");
    }

    #[test]
    fn bfs_period_exceeds_qwp_period() {
        let (bfs, qwp) = (BFS_UNIT_PERIOD.0, QWP_UNIT_PERIOD.0);
        assert!(bfs > qwp, "BFS {bfs} m vs QWP {qwp} m");
    }

    #[test]
    fn stack_gaps_match_figure_6a() {
        assert_eq!(GAP_QWP_OUTER_INNER.mm(), 6.0);
        assert_eq!(GAP_QWP_BFS.mm(), 11.0);
        assert_eq!(GAP_BFS_QWP.mm(), 7.0);
    }
}
