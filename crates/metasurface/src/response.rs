//! The surface as the propagation layer sees it: a [`Metasurface`]
//! bundles a design with an operating state and answers "what happens to
//! a wave that crosses / reflects off you?"
//!
//! Transmissive mode returns the S21 Jones block (rotation + insertion
//! loss + residual ellipticity, all from the circuit model). Reflective
//! mode returns the S11 Jones block — which is where the paper's §5.2
//! observation that "the rotation will be cancelled after the signal is
//! reflected" emerges naturally: the reflected wave re-traverses the
//! front layers in mirrored order, undoing most of the rotation, so the
//! reflective voltage dependence is much flatter than the transmissive
//! one (Figure 21 vs Figure 15).

use std::cell::RefCell;

use microwave::polarized::PolarizedS;
use rfmath::jones::{JonesMatrix, JonesVector};
use rfmath::units::{Db, Degrees, Hertz, Volts};

use crate::designs::Design;
use crate::evaluator::StackEvaluator;
use crate::stack::{BiasState, SUPPLY_CEILING};

/// One full surface evaluation at a `(frequency, bias)` point: the
/// transmissive and reflective Jones matrices and both transmission
/// efficiencies, all derived from a single cascade.
///
/// Call sites that previously ran [`Metasurface::transmission`],
/// [`Metasurface::reflection`] and the efficiency accessors separately
/// paid one full cascade *each*; [`Metasurface::response`] bundles the
/// four observables behind one evaluation. An opaque (numerically
/// singular) cascade yields zero Jones transforms and `−∞ dB`
/// efficiencies, matching the individual accessors' fallbacks.
#[derive(Clone, Copy, Debug)]
pub struct SurfaceResponse {
    f: Hertz,
    polarized: Option<PolarizedS>,
}

impl SurfaceResponse {
    /// Wraps a raw cascade result evaluated at `f` (`None` = opaque
    /// surface). Carrying the frequency lets consumers assert that a
    /// precomputed response is not mixed with a link at a different
    /// carrier.
    pub fn new(f: Hertz, polarized: Option<PolarizedS>) -> Self {
        Self { f, polarized }
    }

    /// The frequency this response was evaluated at.
    pub fn frequency(&self) -> Hertz {
        self.f
    }

    /// The underlying polarized scattering description, when the cascade
    /// exists.
    pub fn polarized(&self) -> Option<PolarizedS> {
        self.polarized
    }

    /// True when the cascade was numerically singular (never the case
    /// for physical designs).
    pub fn is_opaque(&self) -> bool {
        self.polarized.is_none()
    }

    /// Transmissive Jones matrix (zero transform when opaque).
    pub fn transmission(&self) -> JonesMatrix {
        self.polarized
            .map(|r| r.transmission_jones())
            .unwrap_or(JonesMatrix(rfmath::Mat2::ZERO))
    }

    /// Reflective (front-face) Jones matrix (zero transform when opaque).
    pub fn reflection(&self) -> JonesMatrix {
        self.polarized
            .map(|r| r.reflection_jones())
            .unwrap_or(JonesMatrix(rfmath::Mat2::ZERO))
    }

    /// Transmission efficiency (Eq. 11) for an X-polarized wave, dB.
    pub fn efficiency_x_db(&self) -> Db {
        self.polarized
            .map(|r| r.efficiency_x_db())
            .unwrap_or(Db(f64::NEG_INFINITY))
    }

    /// Transmission efficiency (Eq. 11) for a Y-polarized wave, dB.
    pub fn efficiency_y_db(&self) -> Db {
        self.polarized
            .map(|r| r.efficiency_y_db())
            .unwrap_or(Db(f64::NEG_INFINITY))
    }
}

/// A deployed surface: design + current bias state.
#[derive(Clone, Debug)]
pub struct Metasurface {
    /// The electrical design. Private so the cached per-frequency
    /// evaluation plan can never go stale: read through
    /// [`Metasurface::design`], replace through
    /// [`Metasurface::set_design`] (which drops the cache).
    design: Design,
    /// Current DC bias state (set by the control plane).
    pub bias: BiasState,
    /// Supply ceiling (the paper sweeps 0–30 V).
    pub v_max: Volts,
    /// Cached per-frequency evaluation plan (bias-independent stages of
    /// the cascade, compiled lazily on first probe at a frequency).
    evaluator: RefCell<Option<StackEvaluator>>,
}

impl Metasurface {
    /// Deploys a design at a neutral bias.
    pub fn new(design: Design) -> Self {
        Self {
            design,
            bias: BiasState::new(6.0, 6.0),
            v_max: SUPPLY_CEILING,
            evaluator: RefCell::new(None),
        }
    }

    /// The paper's prototype surface (optimized FR4 design).
    pub fn llama() -> Self {
        Self::new(crate::designs::fr4_optimized())
    }

    /// The deployed electrical design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Replaces the design and invalidates the cached evaluation plan.
    pub fn set_design(&mut self, design: Design) {
        self.design = design;
        *self.evaluator.borrow_mut() = None;
    }

    /// Sets the bias state, clamped to the supply range.
    pub fn set_bias(&mut self, bias: BiasState) {
        self.bias = bias.clamped(self.v_max);
    }

    /// Full surface response at frequency `f` under the current bias:
    /// one cascade evaluation yielding transmission, reflection and both
    /// efficiencies.
    ///
    /// The bias-independent stages of the cascade are compiled once per
    /// frequency (via [`StackEvaluator`]) and reused across bias changes,
    /// so sweep loops that call this per probe pay only the tuned-branch
    /// work.
    pub fn response(&self, f: Hertz) -> SurfaceResponse {
        {
            let cached = self.evaluator.borrow();
            if let Some(ev) = cached.as_ref() {
                if ev.frequency().0.to_bits() == f.0.to_bits() {
                    return SurfaceResponse::new(f, ev.response(self.bias));
                }
            }
        }
        let ev = StackEvaluator::new(&self.design.stack, f);
        let response = SurfaceResponse::new(f, ev.response(self.bias));
        *self.evaluator.borrow_mut() = Some(ev);
        response
    }

    /// Transmissive Jones matrix at frequency `f` under the current bias.
    ///
    /// Falls back to an opaque (zero) transform if the cascade is
    /// numerically singular, which does not occur for physical designs.
    /// Prefer [`Metasurface::response`] when more than one observable is
    /// needed at the same `(f, bias)` point.
    pub fn transmission(&self, f: Hertz) -> JonesMatrix {
        self.response(f).transmission()
    }

    /// Reflective (front-face) Jones matrix at `f` under the current bias.
    pub fn reflection(&self, f: Hertz) -> JonesMatrix {
        self.response(f).reflection()
    }

    /// Transmission efficiency (Eq. 11) for an X-polarized wave, dB.
    pub fn efficiency_x_db(&self, f: Hertz) -> Db {
        self.response(f).efficiency_x_db()
    }

    /// Transmission efficiency (Eq. 11) for a Y-polarized wave, dB.
    pub fn efficiency_y_db(&self, f: Hertz) -> Db {
        self.response(f).efficiency_y_db()
    }

    /// Orientation change imparted on a linear probe state in
    /// transmission — the operational "rotation angle" of §3.4.
    pub fn measured_rotation(&self, f: Hertz, probe: JonesVector) -> Degrees {
        let out = self.transmission(f).apply(probe);
        let d = out.orientation().to_degrees().0 - probe.orientation().to_degrees().0;
        // Orientation is defined mod 180°; wrap to (-90°, 90°].
        let mut d = (d + 90.0).rem_euclid(180.0) - 90.0;
        if d == -90.0 {
            d = 90.0;
        }
        Degrees(d)
    }

    /// Reflective rotation: orientation change of the reflected wave
    /// (expressed in the incident wave's frame).
    pub fn measured_reflection_rotation(&self, f: Hertz, probe: JonesVector) -> Degrees {
        let out = self.reflection(f).apply(probe);
        let d = out.orientation().to_degrees().0 - probe.orientation().to_degrees().0;
        let mut d = (d + 90.0).rem_euclid(180.0) - 90.0;
        if d == -90.0 {
            d = 90.0;
        }
        Degrees(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::fr4_optimized;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn default_bias_is_mid_range() {
        let m = Metasurface::llama();
        assert_eq!(m.bias, BiasState::new(6.0, 6.0));
    }

    #[test]
    fn set_bias_clamps_to_supply() {
        let mut m = Metasurface::llama();
        m.set_bias(BiasState::new(99.0, -5.0));
        assert_eq!(m.bias.vx, Volts(30.0));
        assert_eq!(m.bias.vy, Volts(0.0));
    }

    #[test]
    fn transmission_rotation_sweeps_with_bias() {
        let mut m = Metasurface::llama();
        let probe = JonesVector::horizontal();
        m.set_bias(BiasState::new(2.0, 15.0));
        let a = m.measured_rotation(F, probe).0;
        m.set_bias(BiasState::new(15.0, 2.0));
        let b = m.measured_rotation(F, probe).0;
        assert!(
            (a - b).abs() > 30.0,
            "rotation must sweep tens of degrees: {a}° vs {b}°"
        );
    }

    #[test]
    fn reflection_rotation_is_flatter_than_transmission() {
        // The §5.2 cancellation: reflective rotation varies far less with
        // bias than transmissive rotation.
        let mut m = Metasurface::llama();
        let probe = JonesVector::linear_deg(0.0);
        let mut t_angles = Vec::new();
        let mut r_angles = Vec::new();
        for (vx, vy) in [(2.0, 2.0), (2.0, 15.0), (15.0, 2.0), (8.0, 8.0)] {
            m.set_bias(BiasState::new(vx, vy));
            t_angles.push(m.measured_rotation(F, probe).0);
            r_angles.push(m.measured_reflection_rotation(F, probe).0);
        }
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(
            spread(&r_angles) < spread(&t_angles),
            "reflective spread {:.1}° should be below transmissive {:.1}°",
            spread(&r_angles),
            spread(&t_angles)
        );
    }

    #[test]
    fn response_bundle_matches_individual_accessors() {
        let mut m = Metasurface::llama();
        m.set_bias(BiasState::new(4.0, 13.0));
        let r = m.response(F);
        assert!(!r.is_opaque());
        assert!(r.transmission().0.max_abs_diff(m.transmission(F).0) < 1e-12);
        assert!(r.reflection().0.max_abs_diff(m.reflection(F).0) < 1e-12);
        assert!((r.efficiency_x_db().0 - m.efficiency_x_db(F).0).abs() < 1e-12);
        assert!((r.efficiency_y_db().0 - m.efficiency_y_db(F).0).abs() < 1e-12);
    }

    #[test]
    fn cached_plan_survives_bias_and_frequency_changes() {
        let mut m = Metasurface::llama();
        let naive = |m: &Metasurface, f: Hertz| m.design().stack.response(f, m.bias).unwrap();
        // Warm the cache at F, then change bias: still matches naive.
        let _ = m.response(F);
        m.set_bias(BiasState::new(15.0, 2.0));
        let r = m.response(F).polarized().unwrap();
        assert!(r.s21.max_abs_diff(naive(&m, F).s21) < 1e-12);
        // Switch frequency: the plan recompiles and stays correct.
        let f2 = Hertz::from_ghz(2.5);
        let r2 = m.response(f2).polarized().unwrap();
        assert!(r2.s21.max_abs_diff(naive(&m, f2).s21) < 1e-12);
    }

    #[test]
    fn set_design_invalidates_cached_plan() {
        let mut m = Metasurface::llama();
        let llama_eff = m.response(F).efficiency_x_db().0;
        m.set_design(crate::designs::fr4_naive());
        let naive_eff = m.response(F).efficiency_x_db().0;
        let expected = crate::designs::fr4_naive()
            .stack
            .response(F, m.bias)
            .unwrap()
            .efficiency_x_db()
            .0;
        assert!(
            (naive_eff - expected).abs() < 1e-12,
            "stale plan: got {naive_eff}, expected {expected}"
        );
        assert!((llama_eff - naive_eff).abs() > 1.0, "designs must differ");
    }

    #[test]
    fn efficiency_accessors_are_finite_in_band() {
        let m = Metasurface::new(fr4_optimized());
        assert!(m.efficiency_x_db(F).0.is_finite());
        assert!(m.efficiency_y_db(F).0.is_finite());
        assert!(m.efficiency_x_db(F).0 > -10.0);
    }

    #[test]
    fn reflection_exists_but_does_not_exceed_unity() {
        let m = Metasurface::llama();
        let refl = m.reflection(F);
        let g = refl.transmittance(JonesVector::horizontal());
        assert!(g <= 1.0 + 1e-9, "|S11|² = {g}");
    }
}
