//! The surface as the propagation layer sees it: a [`Metasurface`]
//! bundles a design with an operating state and answers "what happens to
//! a wave that crosses / reflects off you?"
//!
//! Transmissive mode returns the S21 Jones block (rotation + insertion
//! loss + residual ellipticity, all from the circuit model). Reflective
//! mode returns the S11 Jones block — which is where the paper's §5.2
//! observation that "the rotation will be cancelled after the signal is
//! reflected" emerges naturally: the reflected wave re-traverses the
//! front layers in mirrored order, undoing most of the rotation, so the
//! reflective voltage dependence is much flatter than the transmissive
//! one (Figure 21 vs Figure 15).

use rfmath::jones::{JonesMatrix, JonesVector};
use rfmath::units::{Db, Degrees, Hertz, Volts};

use crate::designs::Design;
use crate::stack::BiasState;

/// A deployed surface: design + current bias state.
#[derive(Clone, Debug)]
pub struct Metasurface {
    /// The electrical design.
    pub design: Design,
    /// Current DC bias state (set by the control plane).
    pub bias: BiasState,
    /// Supply ceiling (the paper sweeps 0–30 V).
    pub v_max: Volts,
}

impl Metasurface {
    /// Deploys a design at a neutral bias.
    pub fn new(design: Design) -> Self {
        Self {
            design,
            bias: BiasState::new(6.0, 6.0),
            v_max: Volts(30.0),
        }
    }

    /// The paper's prototype surface (optimized FR4 design).
    pub fn llama() -> Self {
        Self::new(crate::designs::fr4_optimized())
    }

    /// Sets the bias state, clamped to the supply range.
    pub fn set_bias(&mut self, bias: BiasState) {
        self.bias = bias.clamped(self.v_max);
    }

    /// Transmissive Jones matrix at frequency `f` under the current bias.
    ///
    /// Falls back to an opaque (zero) transform if the cascade is
    /// numerically singular, which does not occur for physical designs.
    pub fn transmission(&self, f: Hertz) -> JonesMatrix {
        self.design
            .stack
            .response(f, self.bias)
            .map(|r| r.transmission_jones())
            .unwrap_or(JonesMatrix(rfmath::Mat2::ZERO))
    }

    /// Reflective (front-face) Jones matrix at `f` under the current bias.
    pub fn reflection(&self, f: Hertz) -> JonesMatrix {
        self.design
            .stack
            .response(f, self.bias)
            .map(|r| r.reflection_jones())
            .unwrap_or(JonesMatrix(rfmath::Mat2::ZERO))
    }

    /// Transmission efficiency (Eq. 11) for an X-polarized wave, dB.
    pub fn efficiency_x_db(&self, f: Hertz) -> Db {
        self.design
            .stack
            .response(f, self.bias)
            .map(|r| r.efficiency_x_db())
            .unwrap_or(Db(f64::NEG_INFINITY))
    }

    /// Transmission efficiency (Eq. 11) for a Y-polarized wave, dB.
    pub fn efficiency_y_db(&self, f: Hertz) -> Db {
        self.design
            .stack
            .response(f, self.bias)
            .map(|r| r.efficiency_y_db())
            .unwrap_or(Db(f64::NEG_INFINITY))
    }

    /// Orientation change imparted on a linear probe state in
    /// transmission — the operational "rotation angle" of §3.4.
    pub fn measured_rotation(&self, f: Hertz, probe: JonesVector) -> Degrees {
        let out = self.transmission(f).apply(probe);
        let d = out.orientation().to_degrees().0 - probe.orientation().to_degrees().0;
        // Orientation is defined mod 180°; wrap to (-90°, 90°].
        let mut d = (d + 90.0).rem_euclid(180.0) - 90.0;
        if d == -90.0 {
            d = 90.0;
        }
        Degrees(d)
    }

    /// Reflective rotation: orientation change of the reflected wave
    /// (expressed in the incident wave's frame).
    pub fn measured_reflection_rotation(&self, f: Hertz, probe: JonesVector) -> Degrees {
        let out = self.reflection(f).apply(probe);
        let d = out.orientation().to_degrees().0 - probe.orientation().to_degrees().0;
        let mut d = (d + 90.0).rem_euclid(180.0) - 90.0;
        if d == -90.0 {
            d = 90.0;
        }
        Degrees(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::fr4_optimized;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn default_bias_is_mid_range() {
        let m = Metasurface::llama();
        assert_eq!(m.bias, BiasState::new(6.0, 6.0));
    }

    #[test]
    fn set_bias_clamps_to_supply() {
        let mut m = Metasurface::llama();
        m.set_bias(BiasState::new(99.0, -5.0));
        assert_eq!(m.bias.vx, Volts(30.0));
        assert_eq!(m.bias.vy, Volts(0.0));
    }

    #[test]
    fn transmission_rotation_sweeps_with_bias() {
        let mut m = Metasurface::llama();
        let probe = JonesVector::horizontal();
        m.set_bias(BiasState::new(2.0, 15.0));
        let a = m.measured_rotation(F, probe).0;
        m.set_bias(BiasState::new(15.0, 2.0));
        let b = m.measured_rotation(F, probe).0;
        assert!(
            (a - b).abs() > 30.0,
            "rotation must sweep tens of degrees: {a}° vs {b}°"
        );
    }

    #[test]
    fn reflection_rotation_is_flatter_than_transmission() {
        // The §5.2 cancellation: reflective rotation varies far less with
        // bias than transmissive rotation.
        let mut m = Metasurface::llama();
        let probe = JonesVector::linear_deg(0.0);
        let mut t_angles = Vec::new();
        let mut r_angles = Vec::new();
        for (vx, vy) in [(2.0, 2.0), (2.0, 15.0), (15.0, 2.0), (8.0, 8.0)] {
            m.set_bias(BiasState::new(vx, vy));
            t_angles.push(m.measured_rotation(F, probe).0);
            r_angles.push(m.measured_reflection_rotation(F, probe).0);
        }
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(
            spread(&r_angles) < spread(&t_angles),
            "reflective spread {:.1}° should be below transmissive {:.1}°",
            spread(&r_angles),
            spread(&t_angles)
        );
    }

    #[test]
    fn efficiency_accessors_are_finite_in_band() {
        let m = Metasurface::new(fr4_optimized());
        assert!(m.efficiency_x_db(F).0.is_finite());
        assert!(m.efficiency_y_db(F).0.is_finite());
        assert!(m.efficiency_x_db(F).0 > -10.0);
    }

    #[test]
    fn reflection_exists_but_does_not_exceed_unity() {
        let m = Metasurface::llama();
        let refl = m.reflection(F);
        let g = refl.transmittance(JonesVector::horizontal());
        assert!(g <= 1.0 + 1e-9, "|S11|² = {g}");
    }
}
