//! Data published in the paper, embedded for calibration and comparison.
//!
//! Table 1 of the paper reports HFSS-simulated polarization rotation
//! degrees θr over a 7×7 grid of (Vx, Vy) bias combinations. The
//! benchmark harness compares our circuit-model rotation grid against it
//! by range and rank structure, and the controller can optionally run
//! from this grid directly (table-driven calibration) to decouple control
//! experiments from the physics model.

use rfmath::interp::Grid2D;

/// Bias grid values (volts) used by the paper's Table 1, both axes.
pub const TABLE1_VOLTAGES: [f64; 7] = [2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0];

/// Paper Table 1: simulated rotation degrees θr(Vy-row, Vx-column).
///
/// Row index follows `TABLE1_VOLTAGES` for Vy, column index for Vx —
/// e.g. `TABLE1_ROTATION_DEG[0][2]` is θr at Vy = 2 V, Vx = 4 V = 36.8°.
pub const TABLE1_ROTATION_DEG: [[f64; 7]; 7] = [
    [11.6, 26.1, 36.8, 41.0, 44.3, 48.3, 48.7],
    [6.5, 12.4, 26.6, 32.2, 35.2, 38.6, 39.2],
    [23.0, 4.9, 10.9, 17.3, 20.8, 25.0, 25.6],
    [27.0, 9.3, 7.4, 14.0, 18.0, 22.6, 23.2],
    [41.8, 25.0, 7.9, 2.1, 4.2, 10.2, 10.7],
    [45.8, 30.0, 13.7, 7.9, 2.8, 5.1, 5.6],
    [48.2, 33.1, 18.2, 12.9, 7.3, 1.9, 2.0],
];

/// The paper's reported extremes of Table 1.
pub const TABLE1_MIN_DEG: f64 = 1.9;
/// Maximum rotation the paper's Table 1 reports.
pub const TABLE1_MAX_DEG: f64 = 48.7;

/// Returns Table 1 as an interpolating grid (x-axis = Vx, y-axis = Vy).
pub fn table1_grid() -> Grid2D {
    let mut zs = Vec::with_capacity(49);
    for row in &TABLE1_ROTATION_DEG {
        zs.extend_from_slice(row);
    }
    Grid2D::new(TABLE1_VOLTAGES.to_vec(), TABLE1_VOLTAGES.to_vec(), zs)
}

/// Flattens the paper grid row-major (Vy outer, Vx inner) — the layout
/// used for rank-correlation comparisons against simulated grids.
pub fn table1_flat() -> Vec<f64> {
    TABLE1_ROTATION_DEG.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_match_paper_text() {
        let flat = table1_flat();
        let min = flat.iter().copied().fold(f64::INFINITY, f64::min);
        let max = flat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(min, TABLE1_MIN_DEG);
        assert_eq!(max, TABLE1_MAX_DEG);
    }

    #[test]
    fn grid_lookup_matches_cells() {
        let g = table1_grid();
        // θr(Vx=4, Vy=2) = 36.8 (row 0, col 2).
        assert_eq!(g.eval(4.0, 2.0), 36.8);
        // θr(Vx=2, Vy=15) = 48.2 (row 6, col 0).
        assert_eq!(g.eval(2.0, 15.0), 48.2);
    }

    #[test]
    fn table_is_asymmetric() {
        // θr(Vx=3, Vy=2) = 26.1 but θr(Vx=2, Vy=3) = 6.5: the X and Y
        // branches of the BFS differ, so the grid is not symmetric.
        assert_ne!(TABLE1_ROTATION_DEG[0][1], TABLE1_ROTATION_DEG[1][0]);
    }

    #[test]
    fn diagonal_is_nonzero() {
        // Equal biases still rotate (static X/Y asymmetry).
        for (i, row) in TABLE1_ROTATION_DEG.iter().enumerate() {
            assert!(row[i] > 1.0);
        }
    }

    #[test]
    fn interpolation_between_cells_is_bounded() {
        let g = table1_grid();
        let v = g.eval(3.5, 2.0);
        assert!((26.1..=36.8).contains(&v));
    }
}
