//! DC power model of the surface.
//!
//! The paper highlights that the metasurface draws only ~15 nA of leakage
//! at its bias rails (§3.3): the varactors are reverse-biased junctions,
//! so the "actuation" consumes essentially no charge once settled. That
//! enables the buffer-capacitor deployment the paper sketches — the
//! surface can hold its state from a small capacitor instead of a mains
//! supply.

use rfmath::units::{Amperes, Farads, Seconds, Volts, Watts};

/// DC power description of a biased surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcPowerModel {
    /// Total reverse-leakage current at full bias (paper: ≈15 nA).
    pub leakage: Amperes,
    /// Maximum bias voltage the rails carry.
    pub v_max: Volts,
}

impl DcPowerModel {
    /// The LLAMA prototype's measured leakage (15 nA at up to 30 V).
    pub fn llama_prototype() -> Self {
        Self {
            leakage: Amperes(15e-9),
            v_max: Volts(30.0),
        }
    }

    /// Static power draw at bias `v`: `P = V·I_leak`.
    pub fn static_power(&self, v: Volts) -> Watts {
        Watts(v.0.abs() * self.leakage.0)
    }

    /// Worst-case static power (full rail).
    pub fn max_static_power(&self) -> Watts {
        self.static_power(self.v_max)
    }

    /// How long a buffer capacitor `c` charged to `v0` can hold the rail
    /// above `v_min` against the leakage: `t = C·(V0 − Vmin)/I`.
    pub fn hold_time(&self, c: Farads, v0: Volts, v_min: Volts) -> Seconds {
        if v0.0 <= v_min.0 {
            return Seconds(0.0);
        }
        Seconds(c.0 * (v0.0 - v_min.0) / self.leakage.0)
    }

    /// Energy to retune the rails from `v_from` to `v_to` with total rail
    /// capacitance `c_rail` (the only real energy cost of actuation):
    /// `E = ½·C·|V_to² − V_from²|`.
    pub fn retune_energy_joules(&self, c_rail: Farads, v_from: Volts, v_to: Volts) -> f64 {
        0.5 * c_rail.0 * (v_to.0 * v_to.0 - v_from.0 * v_from.0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_is_nanowatts() {
        let m = DcPowerModel::llama_prototype();
        let p = m.max_static_power();
        // 30 V × 15 nA = 450 nW.
        assert!((p.0 - 450e-9).abs() < 1e-12, "P = {} W", p.0);
    }

    #[test]
    fn a_small_capacitor_holds_for_hours() {
        // The paper's claim: "it can work even with one buffer capacitor".
        // A 100 µF capacitor from 30 V down to 25 V against 15 nA:
        // t = 100e-6 × 5 / 15e-9 ≈ 9.3 hours.
        let m = DcPowerModel::llama_prototype();
        let t = m.hold_time(Farads(100e-6), Volts(30.0), Volts(25.0));
        assert!(
            t.0 > 8.0 * 3600.0,
            "hold time should be hours, got {} s",
            t.0
        );
    }

    #[test]
    fn hold_time_zero_when_already_below_threshold() {
        let m = DcPowerModel::llama_prototype();
        assert_eq!(m.hold_time(Farads(1e-6), Volts(10.0), Volts(20.0)).0, 0.0);
    }

    #[test]
    fn retune_energy_is_microjoules() {
        // Rail capacitance of order 100 nF (720 varactors plus traces):
        // retuning 0 → 30 V costs ½·C·V² = 45 µJ — negligible at any
        // realistic retuning cadence.
        let m = DcPowerModel::llama_prototype();
        let e = m.retune_energy_joules(Farads(100e-9), Volts(0.0), Volts(30.0));
        assert!((e - 45e-6).abs() < 1e-9, "E = {e} J");
        // Symmetric in direction.
        let e2 = m.retune_energy_joules(Farads(100e-9), Volts(30.0), Volts(0.0));
        assert_eq!(e, e2);
    }
}
