//! Batched surface-response engine: separable caching over the
//! `(frequency, bias)` plane.
//!
//! [`SurfaceStack::response`] rebuilds every stage of the cascade —
//! air gaps, fixed quarter-wave boards, tuned birefringent boards — for
//! each `(f, bias)` probe, even though most of that work is separable:
//!
//! * air gaps and fixed panels depend only on `f`;
//! * a tuned panel's X branch depends only on `(f, vx)` and its Y branch
//!   only on `(f, vy)`.
//!
//! [`StackEvaluator`] exploits that structure. Construction (per
//! frequency) converts every bias-independent stage to wave-transfer
//! form once and pre-multiplies maximal static runs, so a probe at a new
//! bias only evaluates the tuned branches (memoized per voltage) and a
//! handful of block multiplies. A `T×T` bias heatmap therefore costs
//! `O(T)` per-axis ABCD evaluations instead of `O(T²)` full cascade
//! rebuilds, and [`StackEvaluator::eval_grid`] additionally fans
//! independent grid rows out across threads (`std::thread::scope` — no
//! external dependencies).
//!
//! The engine is *exactly* equivalent to the naive path: stages are
//! built by the same code, and both sides fold transfers left-to-right,
//! so batched and per-point results agree to well below `1e-12`
//! (`tests/proptest_evaluator.rs` is the contract).

use std::cell::RefCell;
use std::rc::Rc;

use microwave::polarized::{PolarizedS, WaveTransfer};
use microwave::substrate::ETA0;
use microwave::twoport::{Abcd, SParams};
use rfmath::units::{Hertz, Radians, Volts};

use crate::sheet::AnisotropicSheet;
use crate::stack::{BiasState, SurfaceStack};

/// Upper bound on memoized per-axis voltage entries; beyond this the
/// evaluator computes without caching (protects pathological callers
/// that probe millions of distinct voltages at one frequency).
const MEMO_CAP: usize = 4096;

/// One step of the compiled cascade plan, in traversal order. Both
/// variants are indices into side tables so the plan stays compact
/// (`statics` for pre-multiplied bias-independent runs, `tuned` for
/// bias-dependent panels).
#[derive(Clone, Copy, Debug)]
enum Step {
    /// A pre-multiplied run of bias-independent stages (gaps, fixed
    /// panels), indexed into [`StackEvaluator::statics`].
    Static(usize),
    /// A bias-dependent panel, indexed into [`StackEvaluator::tuned`].
    Tuned(usize),
}

/// A bias-dependent panel with per-axis voltage memos.
#[derive(Clone, Debug)]
struct TunedPanel {
    sheet: AnisotropicSheet,
    rotation: Radians,
    x_memo: RefCell<Vec<(u64, SParams)>>,
    y_memo: RefCell<Vec<(u64, SParams)>>,
}

impl TunedPanel {
    /// X-branch S-parameters at `v`, memoized by voltage bit pattern.
    fn x_s(&self, f: Hertz, v: f64) -> SParams {
        axis_s(&self.x_memo, v, || {
            self.sheet.abcd_x(f, Volts(v)).to_s(ETA0)
        })
    }

    /// Y-branch S-parameters at `v`, memoized by voltage bit pattern.
    fn y_s(&self, f: Hertz, v: f64) -> SParams {
        axis_s(&self.y_memo, v, || {
            self.sheet.abcd_y(f, Volts(v)).to_s(ETA0)
        })
    }
}

/// Memo lookup/insert shared by both axes.
fn axis_s(
    memo: &RefCell<Vec<(u64, SParams)>>,
    v: f64,
    compute: impl FnOnce() -> SParams,
) -> SParams {
    let bits = v.to_bits();
    if let Some(&(_, s)) = memo.borrow().iter().find(|(b, _)| *b == bits) {
        return s;
    }
    let s = compute();
    let mut memo = memo.borrow_mut();
    if memo.len() < MEMO_CAP {
        memo.push((bits, s));
    }
    s
}

/// Assembles a tuned panel's stage transfer from cached per-axis
/// S-parameters. Axis-aligned panels (the BFS layers) skip the rotation
/// conjugation entirely — `R(0) = I` exactly, so the result is
/// bit-identical and eight 2×2 multiplies cheaper per grid cell.
fn tuned_transfer(sx: SParams, sy: SParams, rotation: Radians) -> Option<WaveTransfer> {
    let stage = PolarizedS::from_axes(sx, sy);
    if rotation.0 == 0.0 {
        stage.wave_transfer()
    } else {
        stage.rotated(rotation).wave_transfer()
    }
}

/// A one-stage stack, mirrored bit-for-bit: [`PolarizedS::chain`]
/// returns a lone stage unchanged — even one with a singular
/// transmission block (a perfect mirror is a valid network) — so the
/// evaluator must not round-trip it through the wave-transfer domain.
#[derive(Clone, Debug)]
enum Lone {
    /// Bias-independent lone stage, precomputed (boxed to keep the
    /// cold enum small next to the dataless `Tuned` variant).
    Static(Box<PolarizedS>),
    /// Bias-dependent lone panel, assembled per probe from `tuned[0]`.
    Tuned,
}

/// The compiled, frequency-specific evaluation plan of a
/// [`SurfaceStack`].
///
/// Build one per operating frequency and probe it with as many bias
/// states as needed; see the module docs for the cost model.
#[derive(Clone, Debug)]
pub struct StackEvaluator {
    f: Hertz,
    steps: Vec<Step>,
    statics: Vec<WaveTransfer>,
    tuned: Vec<TunedPanel>,
    /// Single-stage stacks bypass the transfer-domain plan entirely.
    lone: Option<Lone>,
    /// True when a bias-independent stage was numerically opaque
    /// (singular transmission): every response is `None`.
    opaque: bool,
}

impl StackEvaluator {
    /// Compiles `stack` for evaluation at frequency `f`: converts every
    /// bias-independent stage to wave-transfer form and pre-multiplies
    /// maximal static runs.
    pub fn new(stack: &SurfaceStack, f: Hertz) -> Self {
        let mut steps = Vec::new();
        let mut statics = Vec::new();
        let mut tuned = Vec::new();
        let mut pending: Option<WaveTransfer> = None;
        let mut opaque = false;

        // One-panel stacks: the cascade *is* the stage, bit for bit.
        if let [panel] = stack.panels.as_slice() {
            let lone = if panel.sheet.x.is_tuned() || panel.sheet.y.is_tuned() {
                tuned.push(TunedPanel {
                    sheet: panel.sheet.clone(),
                    rotation: panel.rotation,
                    x_memo: RefCell::new(Vec::new()),
                    y_memo: RefCell::new(Vec::new()),
                });
                Lone::Tuned
            } else {
                let sx = panel.sheet.abcd_x(f, Volts(0.0)).to_s(ETA0);
                let sy = panel.sheet.abcd_y(f, Volts(0.0)).to_s(ETA0);
                Lone::Static(Box::new(
                    PolarizedS::from_axes(sx, sy).rotated(panel.rotation),
                ))
            };
            return Self {
                f,
                steps,
                statics,
                tuned,
                lone: Some(lone),
                opaque: false,
            };
        }

        let push_static = |pending: &mut Option<WaveTransfer>,
                           opaque: &mut bool,
                           stage: PolarizedS| match stage.wave_transfer()
        {
            Some(t) => match pending {
                Some(acc) => acc.push(&t),
                None => *pending = Some(t),
            },
            None => *opaque = true,
        };

        for (i, panel) in stack.panels.iter().enumerate() {
            if i > 0 {
                let gap = Abcd::air_gap(stack.gaps[i - 1], f).to_s(ETA0);
                push_static(&mut pending, &mut opaque, PolarizedS::from_axes(gap, gap));
            }
            if panel.sheet.x.is_tuned() || panel.sheet.y.is_tuned() {
                if let Some(t) = pending.take() {
                    steps.push(Step::Static(statics.len()));
                    statics.push(t);
                }
                steps.push(Step::Tuned(tuned.len()));
                tuned.push(TunedPanel {
                    sheet: panel.sheet.clone(),
                    rotation: panel.rotation,
                    x_memo: RefCell::new(Vec::new()),
                    y_memo: RefCell::new(Vec::new()),
                });
            } else {
                // Fixed and transparent branches ignore bias, so the
                // whole stage is static at this frequency.
                let sx = panel.sheet.abcd_x(f, Volts(0.0)).to_s(ETA0);
                let sy = panel.sheet.abcd_y(f, Volts(0.0)).to_s(ETA0);
                push_static(
                    &mut pending,
                    &mut opaque,
                    PolarizedS::from_axes(sx, sy).rotated(panel.rotation),
                );
            }
        }
        if let Some(t) = pending.take() {
            steps.push(Step::Static(statics.len()));
            statics.push(t);
        }

        Self {
            f,
            steps,
            statics,
            tuned,
            lone: None,
            opaque,
        }
    }

    /// The frequency this plan was compiled for.
    pub fn frequency(&self) -> Hertz {
        self.f
    }

    /// Assembles a one-panel stack's stage exactly as
    /// [`SurfaceStack::response`] does (including the rotation call, so
    /// the result is bit-identical to the naive path).
    fn lone_stage(&self, lone: &Lone, vx: f64, vy: f64) -> PolarizedS {
        match lone {
            Lone::Static(stage) => **stage,
            Lone::Tuned => {
                let panel = &self.tuned[0];
                PolarizedS::from_axes(panel.x_s(self.f, vx), panel.y_s(self.f, vy))
                    .rotated(panel.rotation)
            }
        }
    }

    /// Number of bias-dependent panels in the plan.
    pub fn tuned_panel_count(&self) -> usize {
        self.tuned.len()
    }

    /// Evaluates the full polarized response at one bias state.
    ///
    /// Equivalent to `stack.response(f, bias)` but reuses the compiled
    /// static stages and per-voltage branch memos; zero heap allocation
    /// per call once the memos are warm.
    pub fn response(&self, bias: BiasState) -> Option<PolarizedS> {
        if let Some(lone) = &self.lone {
            return Some(self.lone_stage(lone, bias.vx.0, bias.vy.0));
        }
        if self.opaque {
            return None;
        }
        let mut acc: Option<WaveTransfer> = None;
        for step in &self.steps {
            let t = match step {
                Step::Static(k) => self.statics[*k],
                Step::Tuned(k) => {
                    let panel = &self.tuned[*k];
                    tuned_transfer(
                        panel.x_s(self.f, bias.vx.0),
                        panel.y_s(self.f, bias.vy.0),
                        panel.rotation,
                    )?
                }
            };
            match acc.as_mut() {
                Some(acc) => acc.push(&t),
                None => acc = Some(t),
            }
        }
        acc?.to_s()
    }

    /// Evaluates the response at an arbitrary list of bias states with
    /// one shared plan — the fleet-serving probe path: a scheduler
    /// sweeping N devices probes each shared bias exactly once here and
    /// fans the per-device link projections out from the result, instead
    /// of recompiling a plan (or re-running the cascade) per device.
    ///
    /// Per-axis branch solves are deduplicated across the batch (each
    /// distinct voltage is solved once per tuned panel), then the chain
    /// multiplies fan out across threads when the batch is large enough
    /// to amortize spawn. Results are positionally equivalent to calling
    /// [`StackEvaluator::response`] per element.
    pub fn eval_batch(&self, biases: &[BiasState]) -> Vec<Option<PolarizedS>> {
        let mut out: Vec<Option<PolarizedS>> = vec![None; biases.len()];
        if biases.is_empty() || self.opaque {
            return out;
        }
        if let Some(lone) = &self.lone {
            for (slot, b) in out.iter_mut().zip(biases) {
                *slot = Some(self.lone_stage(lone, b.vx.0, b.vy.0));
            }
            return out;
        }

        // Dedupe per-axis voltages by bit pattern so every distinct
        // value costs one ABCD solve per tuned panel, batch-wide.
        let mut vxs: Vec<f64> = Vec::new();
        let mut vys: Vec<f64> = Vec::new();
        let index_of = |table: &mut Vec<f64>, v: f64| -> usize {
            match table.iter().position(|&u| u.to_bits() == v.to_bits()) {
                Some(i) => i,
                None => {
                    table.push(v);
                    table.len() - 1
                }
            }
        };
        let cells: Vec<(usize, usize)> = biases
            .iter()
            .map(|b| (index_of(&mut vxs, b.vx.0), index_of(&mut vys, b.vy.0)))
            .collect();

        let x_tables: Vec<Vec<SParams>> = self
            .tuned
            .iter()
            .map(|p| vxs.iter().map(|&v| p.x_s(self.f, v)).collect())
            .collect();
        let y_tables: Vec<Vec<SParams>> = self
            .tuned
            .iter()
            .map(|p| vys.iter().map(|&v| p.y_s(self.f, v)).collect())
            .collect();
        let rotations: Vec<Radians> = self.tuned.iter().map(|p| p.rotation).collect();
        let steps = &self.steps;
        let statics = &self.statics;

        let cell = |ix: usize, iy: usize| -> Option<PolarizedS> {
            let mut acc: Option<WaveTransfer> = None;
            for step in steps {
                let t = match step {
                    Step::Static(k) => statics[*k],
                    Step::Tuned(k) => {
                        tuned_transfer(x_tables[*k][ix], y_tables[*k][iy], rotations[*k])?
                    }
                };
                match acc.as_mut() {
                    Some(acc) => acc.push(&t),
                    None => acc = Some(t),
                }
            }
            acc?.to_s()
        };

        let threads = if biases.len() < 256 {
            1
        } else {
            rfmath::par::available_threads()
        };
        rfmath::par::par_fill(&mut out, threads, |i| {
            let (ix, iy) = cells[i];
            cell(ix, iy)
        });
        out
    }

    /// Evaluates the response over a bias grid, row-major with rows
    /// indexed by `vys` (cell `[iy·len(vxs) + ix]` holds the response at
    /// `(vxs[ix], vys[iy])`) — the layout of the Figure 15/21 heatmaps
    /// and Table 1.
    ///
    /// Each tuned panel's branches are evaluated once per distinct axis
    /// voltage (`O(T)` instead of `O(T²)` ABCD solves), then independent
    /// rows are evaluated in parallel with `std::thread::scope` when the
    /// grid is large enough to amortize thread spawn.
    pub fn eval_grid(&self, vxs: &[f64], vys: &[f64]) -> Vec<Option<PolarizedS>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.eval_grid_threaded(vxs, vys, threads)
    }

    /// [`StackEvaluator::eval_grid`] with an explicit worker count
    /// (clamped to the row count; ≤ 1 evaluates sequentially). Exposed
    /// so the threaded path stays testable on single-core hosts.
    pub fn eval_grid_threaded(
        &self,
        vxs: &[f64],
        vys: &[f64],
        threads: usize,
    ) -> Vec<Option<PolarizedS>> {
        let nx = vxs.len();
        let ny = vys.len();
        let mut out: Vec<Option<PolarizedS>> = vec![None; nx * ny];
        if self.opaque || nx == 0 || ny == 0 {
            return out;
        }
        if let Some(lone) = &self.lone {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = Some(self.lone_stage(lone, vxs[i % nx], vys[i / nx]));
            }
            return out;
        }

        // O(T) separable precompute: per-axis branch S-parameters.
        let x_tables: Vec<Vec<SParams>> = self
            .tuned
            .iter()
            .map(|p| vxs.iter().map(|&v| p.x_s(self.f, v)).collect())
            .collect();
        let y_tables: Vec<Vec<SParams>> = self
            .tuned
            .iter()
            .map(|p| vys.iter().map(|&v| p.y_s(self.f, v)).collect())
            .collect();
        let rotations: Vec<Radians> = self.tuned.iter().map(|p| p.rotation).collect();
        let steps = &self.steps;
        let statics = &self.statics;

        let cell = |ix: usize, iy: usize| -> Option<PolarizedS> {
            let mut acc: Option<WaveTransfer> = None;
            for step in steps {
                let t = match step {
                    Step::Static(k) => statics[*k],
                    Step::Tuned(k) => {
                        tuned_transfer(x_tables[*k][ix], y_tables[*k][iy], rotations[*k])?
                    }
                };
                match acc.as_mut() {
                    Some(acc) => acc.push(&t),
                    None => acc = Some(t),
                }
            }
            acc?.to_s()
        };

        // Worker count tracks rows (the original row-fan-out
        // granularity); the shared helper chunks by cell, which is
        // equivalent for a pure kernel.
        let threads = if nx * ny < 256 { 1 } else { threads.min(ny) };
        rfmath::par::par_fill(&mut out, threads, |i| cell(i % nx, i / nx));
        out
    }
}

/// A compile-once plan cache over the `(stack, frequency)` plane — the
/// panel-array amortization layer.
///
/// A multi-panel deployment serves several surfaces cut from the *same*
/// design: every panel sweeping the same carrier would otherwise compile
/// its own identical [`StackEvaluator`]. `PlanCache` keys compiled plans
/// by frequency bit pattern and hands out shared [`Rc`] handles, so K
/// panels × F carriers cost `F` compilations instead of `K·F`. Like the
/// evaluator's voltage memos, the cache is single-threaded interior
/// state (`RefCell` + `Rc`): build responses on the coordinating thread,
/// fan the per-link projections out.
#[derive(Clone, Debug)]
pub struct PlanCache {
    stack: SurfaceStack,
    plans: RefCell<Vec<Rc<StackEvaluator>>>,
}

impl PlanCache {
    /// An empty cache for one surface stack.
    pub fn new(stack: &SurfaceStack) -> Self {
        Self {
            stack: stack.clone(),
            plans: RefCell::new(Vec::new()),
        }
    }

    /// The compiled plan at `f`, compiling on first request. Frequencies
    /// are keyed by bit pattern, matching the fleet engine's carrier
    /// deduplication.
    pub fn plan(&self, f: Hertz) -> Rc<StackEvaluator> {
        if let Some(plan) = self
            .plans
            .borrow()
            .iter()
            .find(|p| p.frequency().0.to_bits() == f.0.to_bits())
        {
            return Rc::clone(plan);
        }
        let plan = Rc::new(StackEvaluator::new(&self.stack, f));
        self.plans.borrow_mut().push(Rc::clone(&plan));
        plan
    }

    /// Number of distinct frequencies compiled so far.
    pub fn plan_count(&self) -> usize {
        self.plans.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{fr4_naive, fr4_optimized, rogers_reference};

    const F: Hertz = Hertz(2.44e9);

    fn max_diff(a: PolarizedS, b: PolarizedS) -> f64 {
        a.s11
            .max_abs_diff(b.s11)
            .max(a.s12.max_abs_diff(b.s12))
            .max(a.s21.max_abs_diff(b.s21))
            .max(a.s22.max_abs_diff(b.s22))
    }

    #[test]
    fn single_point_matches_naive_response() {
        for design in [fr4_optimized(), rogers_reference(), fr4_naive()] {
            let ev = StackEvaluator::new(&design.stack, F);
            for (vx, vy) in [(0.0, 0.0), (2.0, 15.0), (15.0, 2.0), (30.0, 30.0)] {
                let bias = BiasState::new(vx, vy);
                let naive = design.stack.response(F, bias).unwrap();
                let fast = ev.response(bias).unwrap();
                assert!(
                    max_diff(naive, fast) < 1e-12,
                    "{} at ({vx},{vy}): diff {}",
                    design.name,
                    max_diff(naive, fast)
                );
            }
        }
    }

    #[test]
    fn grid_matches_naive_per_point() {
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let vxs = [0.0, 4.0, 11.0, 30.0];
        let vys = [2.0, 6.0, 15.0];
        let grid = ev.eval_grid(&vxs, &vys);
        assert_eq!(grid.len(), vxs.len() * vys.len());
        for (iy, &vy) in vys.iter().enumerate() {
            for (ix, &vx) in vxs.iter().enumerate() {
                let naive = design.stack.response(F, BiasState::new(vx, vy)).unwrap();
                let fast = grid[iy * vxs.len() + ix].unwrap();
                assert!(max_diff(naive, fast) < 1e-12);
            }
        }
    }

    #[test]
    fn large_grid_takes_threaded_path_and_matches() {
        // 31×31 exceeds the sequential cutoff; force four workers so the
        // std::thread::scope row fan-out runs even on single-core hosts,
        // and check it agrees with the auto-threaded and naive paths.
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let volts: Vec<f64> = (0..31).map(|i| i as f64).collect();
        let grid = ev.eval_grid_threaded(&volts, &volts, 4);
        let auto = ev.eval_grid(&volts, &volts);
        for (i, (cell, auto_cell)) in grid.iter().zip(&auto).enumerate() {
            let (ix, iy) = (i % 31, i / 31);
            let naive = design
                .stack
                .response(F, BiasState::new(volts[ix], volts[iy]))
                .unwrap();
            assert!(max_diff(naive, cell.unwrap()) < 1e-12, "cell {i}");
            assert!(
                max_diff(cell.unwrap(), auto_cell.unwrap()) == 0.0,
                "cell {i}"
            );
        }
    }

    #[test]
    fn uneven_row_chunks_cover_every_cell() {
        // 3 workers over 20 rows (chunks of 7, 7, 6) — exercises the
        // remainder chunk of the fan-out.
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let vxs: Vec<f64> = (0..20).map(|i| 1.5 * i as f64).collect();
        let vys = vxs.clone();
        let threaded = ev.eval_grid_threaded(&vxs, &vys, 3);
        let sequential = ev.eval_grid_threaded(&vxs, &vys, 1);
        assert_eq!(threaded.len(), 400);
        for (a, b) in threaded.iter().zip(&sequential) {
            assert!(max_diff(a.unwrap(), b.unwrap()) == 0.0);
        }
    }

    #[test]
    fn plan_compresses_static_runs() {
        // fr4_optimized: QWP+·gap·QWP+·gap | BFS | gap | BFS | gap·QWP−·gap·QWP−
        // ⇒ 2 tuned panels and 3 compressed static segments.
        let ev = StackEvaluator::new(&fr4_optimized().stack, F);
        assert_eq!(ev.tuned_panel_count(), 2);
        assert_eq!(ev.steps.len(), 5);
    }

    #[test]
    fn one_panel_stack_is_bit_identical_to_naive() {
        // `PolarizedS::chain` returns a lone stage unchanged, so the
        // evaluator must not round-trip it through the transfer domain
        // — exercised for both fixed (QWP) and tuned (BFS) panels.
        let bias = BiasState::new(3.0, 21.0);
        for panel in fr4_optimized().stack.panels {
            let stack = SurfaceStack::new(vec![panel], vec![]);
            let ev = StackEvaluator::new(&stack, F);
            let naive = stack.response(F, bias).unwrap();
            assert_eq!(max_diff(naive, ev.response(bias).unwrap()), 0.0);
            let grid = ev.eval_grid(&[3.0], &[21.0]);
            assert_eq!(max_diff(naive, grid[0].unwrap()), 0.0);
        }
    }

    #[test]
    fn batch_matches_single_point_responses() {
        for design in [fr4_optimized(), rogers_reference(), fr4_naive()] {
            let ev = StackEvaluator::new(&design.stack, F);
            let biases: Vec<BiasState> = [(0.0, 0.0), (7.0, 13.0), (7.0, 13.0), (30.0, 2.5)]
                .iter()
                .map(|&(x, y)| BiasState::new(x, y))
                .collect();
            let batch = ev.eval_batch(&biases);
            assert_eq!(batch.len(), biases.len());
            for (b, fast) in biases.iter().zip(&batch) {
                let single = ev.response(*b).unwrap();
                assert!(
                    max_diff(single, fast.unwrap()) < 1e-12,
                    "{} at {:?}",
                    design.name,
                    b
                );
            }
        }
    }

    #[test]
    fn large_batch_takes_threaded_path_and_matches() {
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let biases: Vec<BiasState> = (0..300)
            .map(|i| BiasState::new((i % 17) as f64 * 1.7, (i % 23) as f64 * 1.3))
            .collect();
        let batch = ev.eval_batch(&biases);
        for (b, fast) in biases.iter().zip(&batch) {
            let naive = design.stack.response(F, *b).unwrap();
            assert!(max_diff(naive, fast.unwrap()) < 1e-12);
        }
    }

    #[test]
    fn one_panel_batch_is_bit_identical_to_naive() {
        let bias = BiasState::new(3.0, 21.0);
        for panel in fr4_optimized().stack.panels {
            let stack = SurfaceStack::new(vec![panel], vec![]);
            let ev = StackEvaluator::new(&stack, F);
            let naive = stack.response(F, bias).unwrap();
            let batch = ev.eval_batch(&[bias, bias]);
            assert_eq!(max_diff(naive, batch[0].unwrap()), 0.0);
            assert_eq!(max_diff(naive, batch[1].unwrap()), 0.0);
        }
    }

    #[test]
    fn empty_batch_and_empty_stack_yield_nothing() {
        let ev = StackEvaluator::new(&fr4_optimized().stack, F);
        assert!(ev.eval_batch(&[]).is_empty());
        let opaque = StackEvaluator::new(&SurfaceStack::new(vec![], vec![]), F);
        assert!(opaque.eval_batch(&[BiasState::new(1.0, 1.0)])[0].is_none());
    }

    #[test]
    fn plan_cache_compiles_once_per_frequency() {
        let design = fr4_optimized();
        let cache = PlanCache::new(&design.stack);
        let f2 = Hertz(2.48e9);
        let a = cache.plan(F);
        let b = cache.plan(F);
        // Same frequency → the same shared plan, not a recompilation.
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.plan_count(), 1);
        let c = cache.plan(f2);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.plan_count(), 2);
        // Cached plans answer exactly like a fresh compilation.
        let fresh = StackEvaluator::new(&design.stack, F);
        let bias = BiasState::new(7.0, 13.0);
        assert_eq!(
            max_diff(a.response(bias).unwrap(), fresh.response(bias).unwrap()),
            0.0
        );
    }

    #[test]
    fn empty_stack_yields_none() {
        let stack = SurfaceStack::new(vec![], vec![]);
        let ev = StackEvaluator::new(&stack, F);
        assert!(ev.response(BiasState::new(0.0, 0.0)).is_none());
        assert!(ev.eval_grid(&[1.0], &[1.0])[0].is_none());
    }
}
