//! Batched surface-response engine: separable caching over the
//! `(frequency, bias)` plane.
//!
//! [`SurfaceStack::response`] rebuilds every stage of the cascade —
//! air gaps, fixed quarter-wave boards, tuned birefringent boards — for
//! each `(f, bias)` probe, even though most of that work is separable:
//!
//! * air gaps and fixed panels depend only on `f`;
//! * a tuned panel's X branch depends only on `(f, vx)` and its Y branch
//!   only on `(f, vy)`.
//!
//! [`StackEvaluator`] exploits that structure. Construction (per
//! frequency) converts every bias-independent stage to wave-transfer
//! form once and pre-multiplies maximal static runs, so a probe at a new
//! bias only evaluates the tuned branches (memoized per voltage) and a
//! handful of block multiplies. A `T×T` bias heatmap therefore costs
//! `O(T)` per-axis ABCD evaluations instead of `O(T²)` full cascade
//! rebuilds, and [`StackEvaluator::eval_grid`] additionally fans
//! independent grid rows out across threads (`std::thread::scope` — no
//! external dependencies).
//!
//! Two layers sit on top of the per-point plan:
//!
//! * **Structure-of-arrays batches.** [`StackEvaluator::eval_batch`]
//!   lowers axis-aligned plans (every catalog design) to contiguous
//!   per-component `f64` slabs: static stages become broadcast 4×4
//!   complex multiplies and tuned stages two-term diagonal updates, with
//!   no per-cell `WaveTransfer` structs in the inner loop — the layout
//!   the compiler can autovectorize. The original per-cell fold stays
//!   available as [`StackEvaluator::eval_batch_reference`]; the two
//!   paths agree to well below `1e-12` (property-tested).
//! * **Shared plan compilation.** [`SharedPlanCache`] owns compiled
//!   plans behind one short-lived mutex; [`PlanCache`] is a cheap
//!   shard-local handle over it, so worker threads serving disjoint
//!   fleets share compilations without ever contending on a hot-path
//!   lock (the handle's local `Rc` table answers repeat lookups
//!   lock-free).
//!
//! The per-point engine is *exactly* equivalent to the naive path:
//! stages are built by the same code, and both sides fold transfers
//! left-to-right, so batched and per-point results agree to well below
//! `1e-12` (`tests/proptest_evaluator.rs` is the contract).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use microwave::polarized::{PolarizedS, WaveTransfer};
use microwave::substrate::ETA0;
use microwave::twoport::{Abcd, SParams};
use rfmath::complex::Complex;
use rfmath::units::{Hertz, Radians, Volts};

use crate::response::SurfaceResponse;
use crate::sheet::AnisotropicSheet;
use crate::stack::{BiasState, SurfaceStack};

/// Upper bound on memoized per-axis voltage entries; beyond this the
/// evaluator computes without caching (protects pathological callers
/// that probe millions of distinct voltages at one frequency).
const MEMO_CAP: usize = 4096;

/// One step of the compiled cascade plan, in traversal order. Both
/// variants are indices into side tables so the plan stays compact
/// (`statics` for pre-multiplied bias-independent runs, `tuned` for
/// bias-dependent panels).
#[derive(Clone, Copy, Debug)]
enum Step {
    /// A pre-multiplied run of bias-independent stages (gaps, fixed
    /// panels), indexed into [`PlanCore::statics`].
    Static(usize),
    /// A bias-dependent panel, indexed into [`PlanCore::tuned`].
    Tuned(usize),
}

/// The immutable half of a bias-dependent panel: what the plan needs to
/// solve either branch at any voltage. Per-voltage memos live in
/// [`TunedMemo`] on the evaluator instance, so the core is `Send + Sync`
/// and shareable across worker threads.
#[derive(Clone, Debug)]
struct TunedCore {
    sheet: AnisotropicSheet,
    rotation: Radians,
}

/// Per-instance voltage memos for one tuned panel (interior-mutable,
/// therefore thread-local by construction).
#[derive(Clone, Debug, Default)]
struct TunedMemo {
    x: RefCell<Vec<(u64, SParams)>>,
    y: RefCell<Vec<(u64, SParams)>>,
}

/// Memo lookup/insert shared by both axes.
fn axis_s(
    memo: &RefCell<Vec<(u64, SParams)>>,
    v: f64,
    compute: impl FnOnce() -> SParams,
) -> SParams {
    let bits = v.to_bits();
    if let Some(&(_, s)) = memo.borrow().iter().find(|(b, _)| *b == bits) {
        return s;
    }
    let s = compute();
    let mut memo = memo.borrow_mut();
    if memo.len() < MEMO_CAP {
        memo.push((bits, s));
    }
    s
}

/// Assembles a tuned panel's stage transfer from cached per-axis
/// S-parameters. Axis-aligned panels (the BFS layers) skip the rotation
/// conjugation entirely — `R(0) = I` exactly, so the result is
/// bit-identical and eight 2×2 multiplies cheaper per grid cell.
fn tuned_transfer(sx: SParams, sy: SParams, rotation: Radians) -> Option<WaveTransfer> {
    let stage = PolarizedS::from_axes(sx, sy);
    if rotation.0 == 0.0 {
        stage.wave_transfer()
    } else {
        stage.rotated(rotation).wave_transfer()
    }
}

/// A one-stage stack, mirrored bit-for-bit: [`PolarizedS::chain`]
/// returns a lone stage unchanged — even one with a singular
/// transmission block (a perfect mirror is a valid network) — so the
/// evaluator must not round-trip it through the wave-transfer domain.
#[derive(Clone, Debug)]
enum Lone {
    /// Bias-independent lone stage, precomputed (boxed to keep the
    /// cold enum small next to the dataless `Tuned` variant).
    Static(Box<PolarizedS>),
    /// Bias-dependent lone panel, assembled per probe from `tuned[0]`.
    Tuned,
}

/// The immutable, shareable part of a compiled plan: everything except
/// the per-voltage memos. `Send + Sync`, so a [`SharedPlanCache`] can
/// hand one compilation to every worker shard.
#[derive(Clone, Debug)]
struct PlanCore {
    f: Hertz,
    steps: Vec<Step>,
    statics: Vec<WaveTransfer>,
    tuned: Vec<TunedCore>,
    /// Single-stage stacks bypass the transfer-domain plan entirely.
    lone: Option<Lone>,
    /// True when a bias-independent stage was numerically opaque
    /// (singular transmission): every response is `None`.
    opaque: bool,
}

impl PlanCore {
    /// Compiles `stack` at `f`: converts every bias-independent stage to
    /// wave-transfer form and pre-multiplies maximal static runs.
    fn compile(stack: &SurfaceStack, f: Hertz) -> Self {
        let mut steps = Vec::new();
        let mut statics = Vec::new();
        let mut tuned = Vec::new();
        let mut pending: Option<WaveTransfer> = None;
        let mut opaque = false;

        // One-panel stacks: the cascade *is* the stage, bit for bit.
        if let [panel] = stack.panels.as_slice() {
            let lone = if panel.sheet.x.is_tuned() || panel.sheet.y.is_tuned() {
                tuned.push(TunedCore {
                    sheet: panel.sheet.clone(),
                    rotation: panel.rotation,
                });
                Lone::Tuned
            } else {
                let sx = panel.sheet.abcd_x(f, Volts(0.0)).to_s(ETA0);
                let sy = panel.sheet.abcd_y(f, Volts(0.0)).to_s(ETA0);
                Lone::Static(Box::new(
                    PolarizedS::from_axes(sx, sy).rotated(panel.rotation),
                ))
            };
            return Self {
                f,
                steps,
                statics,
                tuned,
                lone: Some(lone),
                opaque: false,
            };
        }

        let push_static = |pending: &mut Option<WaveTransfer>,
                           opaque: &mut bool,
                           stage: PolarizedS| match stage.wave_transfer()
        {
            Some(t) => match pending {
                Some(acc) => acc.push(&t),
                None => *pending = Some(t),
            },
            None => *opaque = true,
        };

        for (i, panel) in stack.panels.iter().enumerate() {
            if i > 0 {
                let gap = Abcd::air_gap(stack.gaps[i - 1], f).to_s(ETA0);
                push_static(&mut pending, &mut opaque, PolarizedS::from_axes(gap, gap));
            }
            if panel.sheet.x.is_tuned() || panel.sheet.y.is_tuned() {
                if let Some(t) = pending.take() {
                    steps.push(Step::Static(statics.len()));
                    statics.push(t);
                }
                steps.push(Step::Tuned(tuned.len()));
                tuned.push(TunedCore {
                    sheet: panel.sheet.clone(),
                    rotation: panel.rotation,
                });
            } else {
                // Fixed and transparent branches ignore bias, so the
                // whole stage is static at this frequency.
                let sx = panel.sheet.abcd_x(f, Volts(0.0)).to_s(ETA0);
                let sy = panel.sheet.abcd_y(f, Volts(0.0)).to_s(ETA0);
                push_static(
                    &mut pending,
                    &mut opaque,
                    PolarizedS::from_axes(sx, sy).rotated(panel.rotation),
                );
            }
        }
        if let Some(t) = pending.take() {
            steps.push(Step::Static(statics.len()));
            statics.push(t);
        }

        Self {
            f,
            steps,
            statics,
            tuned,
            lone: None,
            opaque,
        }
    }
}

/// The compiled, frequency-specific evaluation plan of a
/// [`SurfaceStack`].
///
/// Build one per operating frequency and probe it with as many bias
/// states as needed; see the module docs for the cost model. The
/// compiled cascade itself lives in a shared immutable core (so
/// [`SharedPlanCache`] can hand one compilation to many threads); only
/// the per-voltage memos are instance state.
#[derive(Clone, Debug)]
pub struct StackEvaluator {
    core: Arc<PlanCore>,
    memos: Vec<TunedMemo>,
}

impl StackEvaluator {
    /// Compiles `stack` for evaluation at frequency `f`: converts every
    /// bias-independent stage to wave-transfer form and pre-multiplies
    /// maximal static runs.
    pub fn new(stack: &SurfaceStack, f: Hertz) -> Self {
        Self::from_core(Arc::new(PlanCore::compile(stack, f)))
    }

    /// Wraps a shared compiled core with fresh (empty) voltage memos.
    fn from_core(core: Arc<PlanCore>) -> Self {
        let memos = core.tuned.iter().map(|_| TunedMemo::default()).collect();
        Self { core, memos }
    }

    /// The frequency this plan was compiled for.
    pub fn frequency(&self) -> Hertz {
        self.core.f
    }

    /// X-branch S-parameters of tuned panel `k` at `v`, memoized by
    /// voltage bit pattern.
    fn x_s(&self, k: usize, v: f64) -> SParams {
        let sheet = &self.core.tuned[k].sheet;
        let f = self.core.f;
        axis_s(&self.memos[k].x, v, || sheet.abcd_x(f, Volts(v)).to_s(ETA0))
    }

    /// Y-branch S-parameters of tuned panel `k` at `v`, memoized by
    /// voltage bit pattern.
    fn y_s(&self, k: usize, v: f64) -> SParams {
        let sheet = &self.core.tuned[k].sheet;
        let f = self.core.f;
        axis_s(&self.memos[k].y, v, || sheet.abcd_y(f, Volts(v)).to_s(ETA0))
    }

    /// Assembles a one-panel stack's stage exactly as
    /// [`SurfaceStack::response`] does (including the rotation call, so
    /// the result is bit-identical to the naive path).
    fn lone_stage(&self, lone: &Lone, vx: f64, vy: f64) -> PolarizedS {
        match lone {
            Lone::Static(stage) => **stage,
            Lone::Tuned => PolarizedS::from_axes(self.x_s(0, vx), self.y_s(0, vy))
                .rotated(self.core.tuned[0].rotation),
        }
    }

    /// Number of bias-dependent panels in the plan.
    pub fn tuned_panel_count(&self) -> usize {
        self.core.tuned.len()
    }

    /// Evaluates the full polarized response at one bias state.
    ///
    /// Equivalent to `stack.response(f, bias)` but reuses the compiled
    /// static stages and per-voltage branch memos; zero heap allocation
    /// per call once the memos are warm.
    pub fn response(&self, bias: BiasState) -> Option<PolarizedS> {
        let core = &*self.core;
        if let Some(lone) = &core.lone {
            return Some(self.lone_stage(lone, bias.vx.0, bias.vy.0));
        }
        if core.opaque {
            return None;
        }
        let mut acc: Option<WaveTransfer> = None;
        for step in &core.steps {
            let t = match step {
                Step::Static(k) => core.statics[*k],
                Step::Tuned(k) => tuned_transfer(
                    self.x_s(*k, bias.vx.0),
                    self.y_s(*k, bias.vy.0),
                    core.tuned[*k].rotation,
                )?,
            };
            match acc.as_mut() {
                Some(acc) => acc.push(&t),
                None => acc = Some(t),
            }
        }
        acc?.to_s()
    }

    /// [`StackEvaluator::response`] wrapped into the [`SurfaceResponse`]
    /// observable bundle the propagation layer consumes — the one-call
    /// bias→response step of every serving probe loop.
    pub fn surface_response(&self, bias: BiasState) -> SurfaceResponse {
        SurfaceResponse::new(self.frequency(), self.response(bias))
    }

    /// True when the plan can take the structure-of-arrays batch path:
    /// a real multi-stage cascade whose tuned panels are all
    /// axis-aligned (rotation 0 — every catalog design; rotated QWPs
    /// are static and pre-multiplied into the static runs).
    fn soa_eligible(&self) -> bool {
        let core = &*self.core;
        !core.opaque
            && core.lone.is_none()
            && !core.steps.is_empty()
            && core.tuned.iter().all(|t| t.rotation.0 == 0.0)
    }

    /// Evaluates the response at an arbitrary list of bias states with
    /// one shared plan — the fleet-serving probe path: a scheduler
    /// sweeping N devices probes each shared bias exactly once here and
    /// fans the per-device link projections out from the result, instead
    /// of recompiling a plan (or re-running the cascade) per device.
    ///
    /// Axis-aligned cascades (every catalog design) take a
    /// structure-of-arrays fast path: the chain state is kept in
    /// contiguous per-component `f64` slabs so static stages are
    /// broadcast 4×4 complex multiplies and tuned stages two-term
    /// diagonal updates — no per-cell transfer structs, autovectorizable.
    /// Results agree with [`StackEvaluator::eval_batch_reference`] (and
    /// therefore with [`StackEvaluator::response`]) to well below
    /// `1e-12`; rotated tuned panels, lone stages, and tiny batches fall
    /// back to the reference path exactly.
    pub fn eval_batch(&self, biases: &[BiasState]) -> Vec<Option<PolarizedS>> {
        if biases.len() >= SOA_MIN_BATCH && self.soa_eligible() {
            self.eval_batch_soa(biases)
        } else {
            self.eval_batch_reference(biases)
        }
    }

    /// The per-cell reference batch path: folds a [`WaveTransfer`] per
    /// cell exactly like [`StackEvaluator::response`]. Kept public as
    /// the A/B baseline for the structure-of-arrays path — benches
    /// measure `eval_batch` against this, and the proptests pin the two
    /// within `1e-12`.
    pub fn eval_batch_reference(&self, biases: &[BiasState]) -> Vec<Option<PolarizedS>> {
        let core = &*self.core;
        let mut out: Vec<Option<PolarizedS>> = vec![None; biases.len()];
        if biases.is_empty() || core.opaque {
            return out;
        }
        if let Some(lone) = &core.lone {
            for (slot, b) in out.iter_mut().zip(biases) {
                *slot = Some(self.lone_stage(lone, b.vx.0, b.vy.0));
            }
            return out;
        }

        let (vxs, vys, cells) = dedupe_biases(biases);
        let x_tables: Vec<Vec<SParams>> = (0..core.tuned.len())
            .map(|k| vxs.iter().map(|&v| self.x_s(k, v)).collect())
            .collect();
        let y_tables: Vec<Vec<SParams>> = (0..core.tuned.len())
            .map(|k| vys.iter().map(|&v| self.y_s(k, v)).collect())
            .collect();
        let rotations: Vec<Radians> = core.tuned.iter().map(|p| p.rotation).collect();
        let steps = &core.steps;
        let statics = &core.statics;

        let cell = |ix: usize, iy: usize| -> Option<PolarizedS> {
            let mut acc: Option<WaveTransfer> = None;
            for step in steps {
                let t = match step {
                    Step::Static(k) => statics[*k],
                    Step::Tuned(k) => {
                        tuned_transfer(x_tables[*k][ix], y_tables[*k][iy], rotations[*k])?
                    }
                };
                match acc.as_mut() {
                    Some(acc) => acc.push(&t),
                    None => acc = Some(t),
                }
            }
            acc?.to_s()
        };

        let threads = if biases.len() < 256 {
            1
        } else {
            rfmath::par::available_threads()
        };
        rfmath::par::par_fill(&mut out, threads, |i| {
            let (ix, iy) = cells[i];
            cell(ix, iy)
        });
        out
    }

    /// The structure-of-arrays batch path. See [`SoaCtx`] for the data
    /// layout and `soa_block` for the kernel.
    fn eval_batch_soa(&self, biases: &[BiasState]) -> Vec<Option<PolarizedS>> {
        let core = &*self.core;
        let mut out: Vec<Option<PolarizedS>> = vec![None; biases.len()];
        let (vxs, vys, cells) = dedupe_biases(biases);

        // O(distinct voltages) setup: per-axis branch solves (memoized).
        // The scalar wave transfers themselves are assembled per cell in
        // the kernel — the reference path couples the two axes through
        // one shared `det(S21) = s21x·s21y` inverse, and reproducing
        // that exact operation order is what keeps the fast path
        // bit-compatible.
        let x_params: Vec<Vec<SParams>> = (0..core.tuned.len())
            .map(|k| vxs.iter().map(|&v| self.x_s(k, v)).collect())
            .collect();
        let y_params: Vec<Vec<SParams>> = (0..core.tuned.len())
            .map(|k| vys.iter().map(|&v| self.y_s(k, v)).collect())
            .collect();
        let statics: Vec<[Complex; 16]> = core.statics.iter().map(|t| t.components()).collect();
        let z0 = core.statics.first().map(|t| t.z0()).unwrap_or(ETA0);

        let ctx = SoaCtx {
            steps: &core.steps,
            statics: &statics,
            x_params: &x_params,
            y_params: &y_params,
            cells: &cells,
            z0,
        };
        let threads = if biases.len() < 256 {
            1
        } else {
            rfmath::par::available_threads()
        };
        rfmath::par::par_fill_chunked(&mut out, threads, |offset, chunk| {
            soa_fill(&ctx, offset, chunk)
        });
        out
    }

    /// Evaluates the response over a bias grid, row-major with rows
    /// indexed by `vys` (cell `[iy·len(vxs) + ix]` holds the response at
    /// `(vxs[ix], vys[iy])`) — the layout of the Figure 15/21 heatmaps
    /// and Table 1.
    ///
    /// Each tuned panel's branches are evaluated once per distinct axis
    /// voltage (`O(T)` instead of `O(T²)` ABCD solves), then independent
    /// rows are evaluated in parallel with `std::thread::scope` when the
    /// grid is large enough to amortize thread spawn.
    pub fn eval_grid(&self, vxs: &[f64], vys: &[f64]) -> Vec<Option<PolarizedS>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.eval_grid_threaded(vxs, vys, threads)
    }

    /// [`StackEvaluator::eval_grid`] with an explicit worker count
    /// (clamped to the row count; ≤ 1 evaluates sequentially). Exposed
    /// so the threaded path stays testable on single-core hosts.
    pub fn eval_grid_threaded(
        &self,
        vxs: &[f64],
        vys: &[f64],
        threads: usize,
    ) -> Vec<Option<PolarizedS>> {
        let core = &*self.core;
        let nx = vxs.len();
        let ny = vys.len();
        let mut out: Vec<Option<PolarizedS>> = vec![None; nx * ny];
        if core.opaque || nx == 0 || ny == 0 {
            return out;
        }
        if let Some(lone) = &core.lone {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = Some(self.lone_stage(lone, vxs[i % nx], vys[i / nx]));
            }
            return out;
        }

        // O(T) separable precompute: per-axis branch S-parameters.
        let x_tables: Vec<Vec<SParams>> = (0..core.tuned.len())
            .map(|k| vxs.iter().map(|&v| self.x_s(k, v)).collect())
            .collect();
        let y_tables: Vec<Vec<SParams>> = (0..core.tuned.len())
            .map(|k| vys.iter().map(|&v| self.y_s(k, v)).collect())
            .collect();
        let rotations: Vec<Radians> = core.tuned.iter().map(|p| p.rotation).collect();
        let steps = &core.steps;
        let statics = &core.statics;

        let cell = |ix: usize, iy: usize| -> Option<PolarizedS> {
            let mut acc: Option<WaveTransfer> = None;
            for step in steps {
                let t = match step {
                    Step::Static(k) => statics[*k],
                    Step::Tuned(k) => {
                        tuned_transfer(x_tables[*k][ix], y_tables[*k][iy], rotations[*k])?
                    }
                };
                match acc.as_mut() {
                    Some(acc) => acc.push(&t),
                    None => acc = Some(t),
                }
            }
            acc?.to_s()
        };

        // Worker count tracks rows (the original row-fan-out
        // granularity); the shared helper chunks by cell, which is
        // equivalent for a pure kernel.
        let threads = if nx * ny < 256 { 1 } else { threads.min(ny) };
        rfmath::par::par_fill(&mut out, threads, |i| cell(i % nx, i / nx));
        out
    }
}

/// Minimum batch size for the structure-of-arrays path; smaller batches
/// can't amortize the slab setup.
const SOA_MIN_BATCH: usize = 4;

/// Cells per structure-of-arrays block: 64 cells × 16 components × 4
/// slabs ≈ 32 KiB of `f64` scratch, sized to stay in L1.
const SOA_BLOCK: usize = 64;

/// The Mat2 singularity threshold ([`rfmath::matrix::Mat2::inverse`]):
/// a tuned stage whose transmission-block determinant falls below this
/// is opaque (`None`), matching the reference path's check exactly.
const SOA_SINGULAR: f64 = 1e-300;

/// Deduplicates per-axis voltages by bit pattern so every distinct value
/// costs one ABCD solve per tuned panel, batch-wide. Returns the
/// distinct voltage tables and each bias's `(ix, iy)` table indices.
fn dedupe_biases(biases: &[BiasState]) -> (Vec<f64>, Vec<f64>, Vec<(usize, usize)>) {
    let mut vxs: Vec<f64> = Vec::new();
    let mut vys: Vec<f64> = Vec::new();
    let index_of = |table: &mut Vec<f64>, v: f64| -> usize {
        match table.iter().position(|&u| u.to_bits() == v.to_bits()) {
            Some(i) => i,
            None => {
                table.push(v);
                table.len() - 1
            }
        }
    };
    let cells = biases
        .iter()
        .map(|b| (index_of(&mut vxs, b.vx.0), index_of(&mut vys, b.vy.0)))
        .collect();
    (vxs, vys, cells)
}

/// Shared read-only context for the structure-of-arrays kernel: the
/// compiled steps, static stages flattened to row-major 4×4 complex
/// components, per-panel per-voltage axis S-parameters, and each cell's
/// voltage-table indices.
struct SoaCtx<'a> {
    steps: &'a [Step],
    statics: &'a [[Complex; 16]],
    x_params: &'a [Vec<SParams>],
    y_params: &'a [Vec<SParams>],
    cells: &'a [(usize, usize)],
    z0: f64,
}

/// Fills one worker's contiguous range in L1-sized blocks.
fn soa_fill(ctx: &SoaCtx, offset: usize, out: &mut [Option<PolarizedS>]) {
    let mut start = 0;
    while start < out.len() {
        let m = (out.len() - start).min(SOA_BLOCK);
        soa_block(ctx, offset + start, &mut out[start..start + m]);
        start += m;
    }
}

/// The structure-of-arrays kernel for one block of cells.
///
/// Chain state is a 4×4 complex matrix per cell (the block transfer
/// viewed as `[[T11, T12], [T21, T22]]`), stored as 16 re + 16 im `f64`
/// slabs with the cell index innermost. Static steps broadcast one
/// constant matrix across the block (`((k0+k1)+(k2+k3))` grouping);
/// tuned steps exploit that an axis-aligned panel's blocks are diagonal,
/// so each output component needs exactly two products against gathered
/// per-axis scalars. Every inner loop runs over the contiguous cell
/// axis with no struct hops — the autovectorizable shape.
#[allow(clippy::needless_range_loop)]
fn soa_block(ctx: &SoaCtx, offset: usize, out: &mut [Option<PolarizedS>]) {
    let m = out.len();
    let mut acc_re = [[0.0f64; SOA_BLOCK]; 16];
    let mut acc_im = [[0.0f64; SOA_BLOCK]; 16];
    let mut nxt_re = [[0.0f64; SOA_BLOCK]; 16];
    let mut nxt_im = [[0.0f64; SOA_BLOCK]; 16];
    // Gathered per-axis transfers for the current tuned step: slabs
    // 0..4 hold the X axis's [t11, t12, t21, t22], 4..8 the Y axis's.
    let mut g_re = [[0.0f64; SOA_BLOCK]; 8];
    let mut g_im = [[0.0f64; SOA_BLOCK]; 8];
    let mut valid = [true; SOA_BLOCK];
    let mut first = true;

    for step in ctx.steps {
        match *step {
            Step::Static(k) => {
                let b = &ctx.statics[k];
                if first {
                    for comp in 0..16 {
                        acc_re[comp][..m].fill(b[comp].re);
                        acc_im[comp][..m].fill(b[comp].im);
                    }
                } else {
                    for r in 0..4 {
                        for c in 0..4 {
                            let o = r * 4 + c;
                            let (b0, b1, b2, b3) = (b[c], b[4 + c], b[8 + c], b[12 + c]);
                            let (a0, a1, a2, a3) = (r * 4, r * 4 + 1, r * 4 + 2, r * 4 + 3);
                            for i in 0..m {
                                let p0r = acc_re[a0][i] * b0.re - acc_im[a0][i] * b0.im;
                                let p0i = acc_re[a0][i] * b0.im + acc_im[a0][i] * b0.re;
                                let p1r = acc_re[a1][i] * b1.re - acc_im[a1][i] * b1.im;
                                let p1i = acc_re[a1][i] * b1.im + acc_im[a1][i] * b1.re;
                                let p2r = acc_re[a2][i] * b2.re - acc_im[a2][i] * b2.im;
                                let p2i = acc_re[a2][i] * b2.im + acc_im[a2][i] * b2.re;
                                let p3r = acc_re[a3][i] * b3.re - acc_im[a3][i] * b3.im;
                                let p3i = acc_re[a3][i] * b3.im + acc_im[a3][i] * b3.re;
                                nxt_re[o][i] = (p0r + p1r) + (p2r + p3r);
                                nxt_im[o][i] = (p0i + p1i) + (p2i + p3i);
                            }
                        }
                    }
                    std::mem::swap(&mut acc_re, &mut nxt_re);
                    std::mem::swap(&mut acc_im, &mut nxt_im);
                }
            }
            Step::Tuned(k) => {
                // Assemble each cell's per-axis scalar transfers with the
                // reference path's exact operation order: both axes share
                // one transmission-block determinant inverse
                // (`Mat2::inverse` of `diag(s21x, s21y)`), so
                // `t11x = s21y·(s21x·s21y)⁻¹` — not `1/s21x` — and the
                // results match the per-cell fold bit for bit.
                for i in 0..m {
                    let (ix, iy) = ctx.cells[offset + i];
                    let sx = &ctx.x_params[k][ix];
                    let sy = &ctx.y_params[k][iy];
                    let det = sx.s21 * sy.s21;
                    if det.abs() < SOA_SINGULAR {
                        // Masked at the end; lanes are independent, so
                        // the garbage this cell accumulates is inert.
                        valid[i] = false;
                    }
                    let inv = det.inv();
                    let t11x = sy.s21 * inv;
                    let t21x = sx.s11 * t11x;
                    let tx = [t11x, -(t11x * sx.s22), t21x, sx.s12 - t21x * sx.s22];
                    let t11y = sx.s21 * inv;
                    let t21y = sy.s11 * t11y;
                    let ty = [t11y, -(t11y * sy.s22), t21y, sy.s12 - t21y * sy.s22];
                    for j in 0..4 {
                        g_re[j][i] = tx[j].re;
                        g_im[j][i] = tx[j].im;
                        g_re[4 + j][i] = ty[j].re;
                        g_im[4 + j][i] = ty[j].im;
                    }
                }
                if first {
                    // The tuned matrix itself: nonzero only where the
                    // sub-row parity matches the sub-column parity.
                    for r in 0..4 {
                        for c in 0..4 {
                            if r % 2 != c % 2 {
                                continue;
                            }
                            let t = (c % 2) * 4 + (r / 2) * 2 + c / 2;
                            let o = r * 4 + c;
                            acc_re[o][..m].copy_from_slice(&g_re[t][..m]);
                            acc_im[o][..m].copy_from_slice(&g_im[t][..m]);
                        }
                    }
                } else {
                    for c in 0..4 {
                        // Block-diagonal column: only sub-rows matching
                        // the column parity contribute, one per block
                        // row — a two-product update.
                        let t0 = (c % 2) * 4 + c / 2;
                        let t1 = (c % 2) * 4 + 2 + c / 2;
                        let a0 = c % 2;
                        let a1 = c % 2 + 2;
                        for r in 0..4 {
                            let o = r * 4 + c;
                            let s0 = r * 4 + a0;
                            let s1 = r * 4 + a1;
                            for i in 0..m {
                                let p0r = acc_re[s0][i] * g_re[t0][i] - acc_im[s0][i] * g_im[t0][i];
                                let p0i = acc_re[s0][i] * g_im[t0][i] + acc_im[s0][i] * g_re[t0][i];
                                let p1r = acc_re[s1][i] * g_re[t1][i] - acc_im[s1][i] * g_im[t1][i];
                                let p1i = acc_re[s1][i] * g_im[t1][i] + acc_im[s1][i] * g_re[t1][i];
                                nxt_re[o][i] = p0r + p1r;
                                nxt_im[o][i] = p0i + p1i;
                            }
                        }
                    }
                    std::mem::swap(&mut acc_re, &mut nxt_re);
                    std::mem::swap(&mut acc_im, &mut nxt_im);
                }
            }
        }
        first = false;
    }

    for (i, slot) in out.iter_mut().enumerate() {
        *slot = if valid[i] {
            let mut comps = [Complex::ZERO; 16];
            for (c, comp) in comps.iter_mut().enumerate() {
                *comp = Complex::new(acc_re[c][i], acc_im[c][i]);
            }
            WaveTransfer::from_components(comps, ctx.z0).to_s()
        } else {
            None
        };
    }
}

/// The shared, thread-safe compilation store behind [`PlanCache`]
/// handles: one mutex-guarded table of immutable compiled cores per
/// surface stack.
///
/// The mutex is cold by construction — a worker shard takes it only on
/// a local-handle miss (first sighting of a frequency on that shard),
/// holds it for a table lookup or one compilation, and never touches it
/// on the probe hot path. K panels × N fleets across W shards therefore
/// compile each `(stack, frequency)` plan at most once process-wide
/// without serializing steady-state serving.
#[derive(Debug)]
pub struct SharedPlanCache {
    stack: SurfaceStack,
    master: Mutex<Vec<Arc<PlanCore>>>,
}

impl SharedPlanCache {
    /// An empty shared store for one surface stack.
    pub fn new(stack: &SurfaceStack) -> Self {
        Self {
            stack: stack.clone(),
            master: Mutex::new(Vec::new()),
        }
    }

    /// A fresh shard-local handle over this store. Handles are cheap
    /// (`Arc` clone + empty local table) — make one per worker thread.
    pub fn handle(self: &Arc<Self>) -> PlanCache {
        PlanCache {
            shared: Arc::clone(self),
            local: RefCell::new(Vec::new()),
        }
    }

    /// The shared compiled core at `f`, compiling under the master lock
    /// on first process-wide request.
    fn core(&self, f: Hertz) -> Arc<PlanCore> {
        let mut master = self.master.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(core) = master.iter().find(|c| c.f.0.to_bits() == f.0.to_bits()) {
            return Arc::clone(core);
        }
        let core = Arc::new(PlanCore::compile(&self.stack, f));
        master.push(Arc::clone(&core));
        core
    }

    /// Number of distinct frequencies compiled process-wide.
    pub fn compiled_count(&self) -> usize {
        self.master.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A compile-once plan cache over the `(stack, frequency)` plane — the
/// panel-array amortization layer, as a **shard-local handle**.
///
/// A multi-panel deployment serves several surfaces cut from the *same*
/// design: every panel sweeping the same carrier would otherwise compile
/// its own identical [`StackEvaluator`]. `PlanCache` keys compiled plans
/// by frequency bit pattern and hands out shared [`Rc`] handles, so K
/// panels × F carriers cost `F` compilations instead of `K·F`.
///
/// Each handle's lookup table is single-threaded interior state
/// (`RefCell` + `Rc`): repeat lookups are lock-free on the owning
/// thread. Handles made from the same [`SharedPlanCache`]
/// (via [`SharedPlanCache::handle`]) share compiled cores across
/// threads — a local miss consults the shared store (one brief lock)
/// and wraps the immutable core with thread-local memos, so sharded
/// fleet serving never compiles the same plan twice nor contends on the
/// probe path. `PlanCache::new` creates a private store, which keeps
/// every single-threaded caller exactly as before.
#[derive(Clone, Debug)]
pub struct PlanCache {
    shared: Arc<SharedPlanCache>,
    local: RefCell<Vec<Rc<StackEvaluator>>>,
}

impl PlanCache {
    /// An empty cache for one surface stack (private shared store; use
    /// [`SharedPlanCache::handle`] to share compilations across
    /// threads).
    pub fn new(stack: &SurfaceStack) -> Self {
        Arc::new(SharedPlanCache::new(stack)).handle()
    }

    /// The shared store behind this handle — clone it across threads
    /// and call [`SharedPlanCache::handle`] per worker.
    pub fn shared(&self) -> Arc<SharedPlanCache> {
        Arc::clone(&self.shared)
    }

    /// The compiled plan at `f`, compiling on first process-wide
    /// request. Frequencies are keyed by bit pattern, matching the
    /// fleet engine's carrier deduplication. Repeat lookups on this
    /// handle are lock-free.
    pub fn plan(&self, f: Hertz) -> Rc<StackEvaluator> {
        if let Some(plan) = self
            .local
            .borrow()
            .iter()
            .find(|p| p.frequency().0.to_bits() == f.0.to_bits())
        {
            return Rc::clone(plan);
        }
        let plan = Rc::new(StackEvaluator::from_core(self.shared.core(f)));
        self.local.borrow_mut().push(Rc::clone(&plan));
        plan
    }

    /// Number of distinct frequencies compiled process-wide (shared
    /// across every handle of the same store).
    pub fn plan_count(&self) -> usize {
        self.shared.compiled_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{fr4_naive, fr4_optimized, rogers_reference};

    const F: Hertz = Hertz(2.44e9);

    fn max_diff(a: PolarizedS, b: PolarizedS) -> f64 {
        a.s11
            .max_abs_diff(b.s11)
            .max(a.s12.max_abs_diff(b.s12))
            .max(a.s21.max_abs_diff(b.s21))
            .max(a.s22.max_abs_diff(b.s22))
    }

    #[test]
    fn single_point_matches_naive_response() {
        for design in [fr4_optimized(), rogers_reference(), fr4_naive()] {
            let ev = StackEvaluator::new(&design.stack, F);
            for (vx, vy) in [(0.0, 0.0), (2.0, 15.0), (15.0, 2.0), (30.0, 30.0)] {
                let bias = BiasState::new(vx, vy);
                let naive = design.stack.response(F, bias).unwrap();
                let fast = ev.response(bias).unwrap();
                assert!(
                    max_diff(naive, fast) < 1e-12,
                    "{} at ({vx},{vy}): diff {}",
                    design.name,
                    max_diff(naive, fast)
                );
            }
        }
    }

    #[test]
    fn grid_matches_naive_per_point() {
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let vxs = [0.0, 4.0, 11.0, 30.0];
        let vys = [2.0, 6.0, 15.0];
        let grid = ev.eval_grid(&vxs, &vys);
        assert_eq!(grid.len(), vxs.len() * vys.len());
        for (iy, &vy) in vys.iter().enumerate() {
            for (ix, &vx) in vxs.iter().enumerate() {
                let naive = design.stack.response(F, BiasState::new(vx, vy)).unwrap();
                let fast = grid[iy * vxs.len() + ix].unwrap();
                assert!(max_diff(naive, fast) < 1e-12);
            }
        }
    }

    #[test]
    fn large_grid_takes_threaded_path_and_matches() {
        // 31×31 exceeds the sequential cutoff; force four workers so the
        // std::thread::scope row fan-out runs even on single-core hosts,
        // and check it agrees with the auto-threaded and naive paths.
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let volts: Vec<f64> = (0..31).map(|i| i as f64).collect();
        let grid = ev.eval_grid_threaded(&volts, &volts, 4);
        let auto = ev.eval_grid(&volts, &volts);
        for (i, (cell, auto_cell)) in grid.iter().zip(&auto).enumerate() {
            let (ix, iy) = (i % 31, i / 31);
            let naive = design
                .stack
                .response(F, BiasState::new(volts[ix], volts[iy]))
                .unwrap();
            assert!(max_diff(naive, cell.unwrap()) < 1e-12, "cell {i}");
            assert!(
                max_diff(cell.unwrap(), auto_cell.unwrap()) == 0.0,
                "cell {i}"
            );
        }
    }

    #[test]
    fn uneven_row_chunks_cover_every_cell() {
        // 3 workers over 20 rows (chunks of 7, 7, 6) — exercises the
        // remainder chunk of the fan-out.
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let vxs: Vec<f64> = (0..20).map(|i| 1.5 * i as f64).collect();
        let vys = vxs.clone();
        let threaded = ev.eval_grid_threaded(&vxs, &vys, 3);
        let sequential = ev.eval_grid_threaded(&vxs, &vys, 1);
        assert_eq!(threaded.len(), 400);
        for (a, b) in threaded.iter().zip(&sequential) {
            assert!(max_diff(a.unwrap(), b.unwrap()) == 0.0);
        }
    }

    #[test]
    fn plan_compresses_static_runs() {
        // fr4_optimized: QWP+·gap·QWP+·gap | BFS | gap | BFS | gap·QWP−·gap·QWP−
        // ⇒ 2 tuned panels and 3 compressed static segments.
        let ev = StackEvaluator::new(&fr4_optimized().stack, F);
        assert_eq!(ev.tuned_panel_count(), 2);
        assert_eq!(ev.core.steps.len(), 5);
    }

    #[test]
    fn one_panel_stack_is_bit_identical_to_naive() {
        // `PolarizedS::chain` returns a lone stage unchanged, so the
        // evaluator must not round-trip it through the transfer domain
        // — exercised for both fixed (QWP) and tuned (BFS) panels.
        let bias = BiasState::new(3.0, 21.0);
        for panel in fr4_optimized().stack.panels {
            let stack = SurfaceStack::new(vec![panel], vec![]);
            let ev = StackEvaluator::new(&stack, F);
            let naive = stack.response(F, bias).unwrap();
            assert_eq!(max_diff(naive, ev.response(bias).unwrap()), 0.0);
            let grid = ev.eval_grid(&[3.0], &[21.0]);
            assert_eq!(max_diff(naive, grid[0].unwrap()), 0.0);
        }
    }

    #[test]
    fn batch_matches_single_point_responses() {
        for design in [fr4_optimized(), rogers_reference(), fr4_naive()] {
            let ev = StackEvaluator::new(&design.stack, F);
            let biases: Vec<BiasState> = [(0.0, 0.0), (7.0, 13.0), (7.0, 13.0), (30.0, 2.5)]
                .iter()
                .map(|&(x, y)| BiasState::new(x, y))
                .collect();
            let batch = ev.eval_batch(&biases);
            assert_eq!(batch.len(), biases.len());
            for (b, fast) in biases.iter().zip(&batch) {
                let single = ev.response(*b).unwrap();
                assert!(
                    max_diff(single, fast.unwrap()) < 1e-12,
                    "{} at {:?}",
                    design.name,
                    b
                );
            }
        }
    }

    #[test]
    fn soa_batch_matches_reference_batch() {
        // The structure-of-arrays fast path against the per-cell fold,
        // across every catalog design and a batch long enough to cover
        // multiple kernel blocks (including a ragged tail).
        for design in [fr4_optimized(), rogers_reference(), fr4_naive()] {
            let ev = StackEvaluator::new(&design.stack, F);
            let biases: Vec<BiasState> = (0..150)
                .map(|i| BiasState::new((i % 13) as f64 * 2.3, (i % 7) as f64 * 4.1))
                .collect();
            assert!(ev.soa_eligible(), "{}", design.name);
            let soa = ev.eval_batch_soa(&biases);
            let reference = ev.eval_batch_reference(&biases);
            for (i, (a, b)) in soa.iter().zip(&reference).enumerate() {
                assert_eq!(a.is_some(), b.is_some(), "{} cell {i}", design.name);
                assert!(
                    max_diff(a.unwrap(), b.unwrap()) < 1e-12,
                    "{} cell {i}: diff {}",
                    design.name,
                    max_diff(a.unwrap(), b.unwrap())
                );
            }
        }
    }

    #[test]
    fn large_batch_takes_threaded_path_and_matches() {
        let design = fr4_optimized();
        let ev = StackEvaluator::new(&design.stack, F);
        let biases: Vec<BiasState> = (0..300)
            .map(|i| BiasState::new((i % 17) as f64 * 1.7, (i % 23) as f64 * 1.3))
            .collect();
        let batch = ev.eval_batch(&biases);
        for (b, fast) in biases.iter().zip(&batch) {
            let naive = design.stack.response(F, *b).unwrap();
            assert!(max_diff(naive, fast.unwrap()) < 1e-12);
        }
    }

    #[test]
    fn one_panel_batch_is_bit_identical_to_naive() {
        let bias = BiasState::new(3.0, 21.0);
        for panel in fr4_optimized().stack.panels {
            let stack = SurfaceStack::new(vec![panel], vec![]);
            let ev = StackEvaluator::new(&stack, F);
            let naive = stack.response(F, bias).unwrap();
            let batch = ev.eval_batch(&[bias, bias]);
            assert_eq!(max_diff(naive, batch[0].unwrap()), 0.0);
            assert_eq!(max_diff(naive, batch[1].unwrap()), 0.0);
        }
    }

    #[test]
    fn empty_batch_and_empty_stack_yield_nothing() {
        let ev = StackEvaluator::new(&fr4_optimized().stack, F);
        assert!(ev.eval_batch(&[]).is_empty());
        let opaque = StackEvaluator::new(&SurfaceStack::new(vec![], vec![]), F);
        assert!(opaque.eval_batch(&[BiasState::new(1.0, 1.0)])[0].is_none());
    }

    #[test]
    fn plan_cache_compiles_once_per_frequency() {
        let design = fr4_optimized();
        let cache = PlanCache::new(&design.stack);
        let f2 = Hertz(2.48e9);
        let a = cache.plan(F);
        let b = cache.plan(F);
        // Same frequency → the same shared plan, not a recompilation.
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.plan_count(), 1);
        let c = cache.plan(f2);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.plan_count(), 2);
        // Cached plans answer exactly like a fresh compilation.
        let fresh = StackEvaluator::new(&design.stack, F);
        let bias = BiasState::new(7.0, 13.0);
        assert_eq!(
            max_diff(a.response(bias).unwrap(), fresh.response(bias).unwrap()),
            0.0
        );
    }

    #[test]
    fn shared_cache_handles_share_compiled_cores() {
        let design = fr4_optimized();
        let shared = Arc::new(SharedPlanCache::new(&design.stack));
        let bias = BiasState::new(7.0, 13.0);

        // Two handles — two threads' worth — compile the frequency once.
        let h1 = shared.handle();
        let h2 = shared.handle();
        let p1 = h1.plan(F);
        let p2 = h2.plan(F);
        assert_eq!(shared.compiled_count(), 1);
        assert_eq!(h1.plan_count(), 1);
        // Distinct per-handle evaluators (thread-local memos) over the
        // same immutable core → bit-identical answers.
        assert!(!Rc::ptr_eq(&p1, &p2));
        assert!(Arc::ptr_eq(&p1.core, &p2.core));
        assert_eq!(
            max_diff(p1.response(bias).unwrap(), p2.response(bias).unwrap()),
            0.0
        );

        // And the store really is usable from other threads.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&shared);
        let from_worker = std::thread::scope(|scope| {
            scope
                .spawn(|| shared.handle().plan(F).response(bias).unwrap())
                .join()
                .unwrap()
        });
        assert_eq!(max_diff(from_worker, p1.response(bias).unwrap()), 0.0);
        assert_eq!(shared.compiled_count(), 1);
    }

    #[test]
    fn empty_stack_yields_none() {
        let stack = SurfaceStack::new(vec![], vec![]);
        let ev = StackEvaluator::new(&stack, F);
        assert!(ev.response(BiasState::new(0.0, 0.0)).is_none());
        assert!(ev.eval_grid(&[1.0], &[1.0])[0].is_none());
    }
}
