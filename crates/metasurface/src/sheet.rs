//! Anisotropic patterned sheets — the electrical model of one board.
//!
//! Each metasurface board carries a copper pattern that presents a
//! different shunt admittance to X- and Y-polarized fields (the "metallic
//! patterns act as admittance components" of the paper's Fig. 6 caption).
//! Per axis the pattern is a parallel LC tank: sheet inductance from the
//! printed strips, sheet capacitance from the gaps — optionally tuned by
//! a varactor in series with a coupling capacitance (the BFS pattern).
//!
//! **Dielectric ESR.** The pattern's gap capacitances fringe through the
//! substrate, so their quality factor is limited by the substrate loss
//! tangent: `ESR = tanδ·|X_C|`. This is the mechanism that ruins the
//! naive FR4 design (Figure 9): every resonant sheet multiplies the
//! material loss by its stored-energy factor, so a structure that is fine
//! on Rogers 5880 (`tanδ = 0.0009`) collapses on FR4 (`tanδ = 0.02`).
//! The optimized design recovers efficiency by using fewer, thinner,
//! lower-Q sheets — exactly the paper's §3.2 prescription.

use microwave::lumped::{capacitor, inductor};
use microwave::substrate::Slab;
use microwave::twoport::Abcd;
use microwave::varactor::Varactor;
use rfmath::complex::Complex;
use rfmath::units::{Farads, Henries, Hertz, Ohms, Volts};

/// One polarization axis of a patterned sheet.
#[derive(Clone, Debug)]
pub enum SheetBranch {
    /// Fixed pattern: parallel tank with printed L and C.
    Fixed {
        /// Sheet inductance.
        l: Henries,
        /// Sheet capacitance.
        c: Farads,
        /// Copper (pattern) loss resistance per leg.
        r: Ohms,
    },
    /// Varactor-tuned pattern: the tank capacitance is the diode in
    /// series with a fixed coupling capacitance.
    Tuned {
        /// Sheet inductance.
        l: Henries,
        /// Coupling (gap) capacitance in series with the diode.
        c_couple: Farads,
        /// The tuning diode.
        varactor: Varactor,
        /// Copper (pattern) loss resistance per leg.
        r: Ohms,
    },
    /// No pattern on this axis: the board is transparent apart from its
    /// dielectric slab.
    Transparent,
}

impl SheetBranch {
    /// Shunt admittance of this branch at frequency `f` and bias `v`
    /// (bias ignored for fixed/transparent branches).
    ///
    /// `loss_tangent` is the substrate's tan δ; it adds a dielectric ESR
    /// of `tanδ·|X_C|` to every capacitive element, coupling material
    /// quality to resonator loss.
    pub fn admittance(&self, f: Hertz, bias: Volts, loss_tangent: f64) -> Complex {
        match self {
            SheetBranch::Fixed { l, c, r } => {
                let xc = capacitor(*c, f);
                let esr = loss_tangent * xc.abs();
                let z_l = Complex::real(r.0) + inductor(*l, f);
                let z_c = Complex::real(r.0 + esr) + xc;
                z_l.inv() + z_c.inv()
            }
            SheetBranch::Tuned {
                l,
                c_couple,
                varactor,
                r,
            } => {
                let cd = varactor.capacitance(bias);
                let c_eff = Farads(cd.0 * c_couple.0 / (cd.0 + c_couple.0));
                let xc = capacitor(c_eff, f);
                // The coupling gap fringes through the substrate; the
                // diode junction has its own (small) loss in rs.
                let esr = loss_tangent * xc.abs();
                let z_l = Complex::real(r.0) + inductor(*l, f);
                let z_c = Complex::real(r.0 + varactor.rs.0 + esr) + xc;
                z_l.inv() + z_c.inv()
            }
            SheetBranch::Transparent => Complex::ZERO,
        }
    }

    /// True when this branch responds to bias changes.
    pub fn is_tuned(&self) -> bool {
        matches!(self, SheetBranch::Tuned { .. })
    }
}

/// A patterned board: per-axis branches printed on a dielectric slab.
#[derive(Clone, Debug)]
pub struct AnisotropicSheet {
    /// X-axis pattern.
    pub x: SheetBranch,
    /// Y-axis pattern.
    pub y: SheetBranch,
    /// The board the pattern is printed on.
    pub slab: Slab,
}

impl AnisotropicSheet {
    /// Per-axis ABCD of the board at `f`: half the slab, the shunt
    /// pattern admittance (with this slab's dielectric ESR), the other
    /// half.
    pub fn abcd_axis(&self, f: Hertz, branch: &SheetBranch, bias: Volts) -> Abcd {
        let half = Slab::new(
            self.slab.material.clone(),
            rfmath::units::Meters(self.slab.thickness.0 / 2.0),
        );
        let y = branch.admittance(f, bias, self.slab.material.loss_tangent);
        Abcd::slab(&half, f)
            .then(Abcd::shunt(y))
            .then(Abcd::slab(&half, f))
    }

    /// X-axis ABCD at `f` with bias `vx`.
    pub fn abcd_x(&self, f: Hertz, vx: Volts) -> Abcd {
        self.abcd_axis(f, &self.x, vx)
    }

    /// Y-axis ABCD at `f` with bias `vy`.
    pub fn abcd_y(&self, f: Hertz, vy: Volts) -> Abcd {
        self.abcd_axis(f, &self.y, vy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microwave::lumped::inductance_for_resonance;
    use microwave::substrate::{Material, ETA0};

    const F: Hertz = Hertz(2.44e9);

    fn fixed_tank(c_pf: f64) -> SheetBranch {
        let c = Farads::from_pf(c_pf);
        SheetBranch::Fixed {
            l: inductance_for_resonance(c, F),
            c,
            r: Ohms(0.1),
        }
    }

    #[test]
    fn transparent_branch_has_zero_admittance() {
        let y = SheetBranch::Transparent.admittance(F, Volts(5.0), 0.02);
        assert_eq!(y, Complex::ZERO);
    }

    #[test]
    fn fixed_tank_is_nearly_open_at_resonance() {
        // Parallel resonance ⇒ small shunt admittance ⇒ transparent.
        let y = fixed_tank(0.4).admittance(F, Volts(0.0), 0.0009);
        assert!(y.abs() < 1e-3, "|Y| = {}", y.abs());
    }

    #[test]
    fn dielectric_esr_adds_conductance() {
        // The same tank on FR4 has markedly more real (lossy) admittance
        // near resonance than on Rogers.
        let y_rogers = fixed_tank(0.4).admittance(F, Volts(0.0), 0.0009);
        let y_fr4 = fixed_tank(0.4).admittance(F, Volts(0.0), 0.02);
        assert!(
            y_fr4.re > 2.5 * y_rogers.re,
            "FR4 {} vs Rogers {}",
            y_fr4.re,
            y_rogers.re
        );
    }

    #[test]
    fn tuned_branch_moves_with_bias() {
        let b = SheetBranch::Tuned {
            l: Henries::from_nh(7.3),
            c_couple: Farads::from_pf(1.0),
            varactor: Varactor::smv1233(),
            r: Ohms(0.5),
        };
        let y_lo = b.admittance(F, Volts(2.0), 0.02);
        let y_hi = b.admittance(F, Volts(15.0), 0.02);
        assert!((y_lo - y_hi).abs() > 1e-4, "bias must move the admittance");
        assert!(b.is_tuned());
        assert!(!fixed_tank(0.4).is_tuned());
    }

    #[test]
    fn anisotropic_sheet_differentiates_axes() {
        // Same inductance, different capacitance: the two axes resonate
        // at different frequencies and so differ in phase at F.
        let l = inductance_for_resonance(Farads::from_pf(0.38), F);
        let sheet = AnisotropicSheet {
            x: SheetBranch::Fixed {
                l,
                c: Farads::from_pf(0.32),
                r: Ohms(0.5),
            },
            y: SheetBranch::Fixed {
                l,
                c: Farads::from_pf(0.44),
                r: Ohms(0.5),
            },
            slab: Slab::from_mm(Material::FR4, 0.8),
        };
        let sx = sheet.abcd_x(F, Volts(0.0)).to_s(ETA0);
        let sy = sheet.abcd_y(F, Volts(0.0)).to_s(ETA0);
        let dphi = (sx.transmission_phase() - sy.transmission_phase()).abs();
        assert!(dphi > 0.05, "axes must differ in phase, got {dphi} rad");
    }

    #[test]
    fn sheet_networks_are_passive() {
        let sheet = AnisotropicSheet {
            x: SheetBranch::Tuned {
                l: Henries::from_nh(7.3),
                c_couple: Farads::from_pf(1.0),
                varactor: Varactor::smv1233(),
                r: Ohms(0.5),
            },
            y: fixed_tank(0.4),
            slab: Slab::from_mm(Material::FR4, 0.8),
        };
        for v in [0.0, 5.0, 15.0, 30.0] {
            assert!(sheet.abcd_x(F, Volts(v)).to_s(ETA0).is_passive(1e-9));
            assert!(sheet.abcd_y(F, Volts(v)).to_s(ETA0).is_passive(1e-9));
        }
    }

    #[test]
    fn inductive_and_capacitive_meander_branches() {
        // A meander-line QWP sheet: inductive on X (negative susceptance),
        // capacitive on Y (positive susceptance).
        let lx = SheetBranch::Fixed {
            l: Henries::from_nh(29.7),
            c: Farads::from_pf(0.001), // resonance far above band
            r: Ohms(0.3),
        };
        let cy = SheetBranch::Fixed {
            l: Henries::from_nh(3000.0), // resonance far below band
            c: Farads::from_pf(0.143),
            r: Ohms(0.3),
        };
        let yx = lx.admittance(F, Volts(0.0), 0.0009);
        let yy = cy.admittance(F, Volts(0.0), 0.0009);
        assert!(yx.im < 0.0, "inductive sheet susceptance is negative");
        assert!(yy.im > 0.0, "capacitive sheet susceptance is positive");
    }
}
