//! # metasurface — the LLAMA programmable polarization rotator
//!
//! The paper's core artifact: a tunable metasurface built from two
//! quarter-wave plates at ±45° around a varactor-tuned birefringent
//! structure (BFS), implemented here as a circuit-level simulation that
//! reproduces the design study of §3.2:
//!
//! * [`geometry`] — the Figure 6 unit-cell dimensions and panel lattice;
//! * [`sheet`] — anisotropic patterned boards as per-axis LC tanks with
//!   dielectric-ESR loss (the FR4-vs-Rogers mechanism);
//! * [`stack`] — multi-board cascades with exact multiple-reflection
//!   accounting, producing the full dual-polarization response;
//! * [`evaluator`] — the batched surface-response engine: per-frequency
//!   compiled cascade plans with separable per-axis caching and
//!   parallel bias-grid evaluation;
//! * [`designs`] — the three §3.2 designs: the Rogers 5880 reference,
//!   the naive FR4 substitution, and LLAMA's optimized FR4 stack
//!   (Figures 8, 9, 10);
//! * [`bias`] — the (Vx, Vy) → rotation-angle map (Table 1), both from
//!   the circuit model and from the paper's published grid;
//! * [`response`] — the deployed-surface API: transmissive and
//!   reflective Jones responses under a bias state;
//! * [`power`] — the 15 nA leakage / buffer-capacitor power model;
//! * [`tables`] — the paper's Table 1 data embedded for comparison;
//! * [`fabrication`] — the $5-per-unit cost model of §4.
//!
//! ## Example: rotate a mismatched wave back into alignment
//!
//! ```
//! use metasurface::response::Metasurface;
//! use metasurface::stack::BiasState;
//! use rfmath::jones::JonesVector;
//! use rfmath::units::Hertz;
//!
//! let mut surface = Metasurface::llama();
//! let f = Hertz::from_ghz(2.44);
//!
//! // A horizontally polarized wave crossing the surface…
//! let probe = JonesVector::horizontal();
//! surface.set_bias(BiasState::new(15.0, 2.0));
//! let rotated = surface.transmission(f).apply(probe);
//!
//! // …comes out rotated by tens of degrees.
//! assert!(rotated.orientation().to_degrees().0.abs() > 20.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bias;
pub mod designs;
pub mod evaluator;
pub mod fabrication;
pub mod geometry;
pub mod power;
pub mod response;
pub mod sheet;
pub mod stack;
pub mod tables;

pub use bias::RotationMap;
pub use designs::{fr4_naive, fr4_optimized, rogers_reference, Design};
pub use evaluator::{PlanCache, SharedPlanCache, StackEvaluator};
pub use response::{Metasurface, SurfaceResponse};
pub use stack::{BiasState, SurfaceStack};
