//! The batched-engine equivalence contract: `StackEvaluator` (cached,
//! separable, grid-parallel) must match naive per-point
//! `SurfaceStack::response` to 1e-12 across random designs, frequencies
//! and bias grids. Every consumer of the engine — heatmaps, rotation
//! maps, the optimizer's probe loop — leans on this property.

use metasurface::designs::{fr4_naive, fr4_optimized, rfid_900mhz, rogers_reference};
use metasurface::evaluator::StackEvaluator;
use metasurface::sheet::{AnisotropicSheet, SheetBranch};
use metasurface::stack::{BiasState, Panel, SurfaceStack};
use microwave::polarized::PolarizedS;
use microwave::substrate::{Material, Slab};
use microwave::varactor::Varactor;
use proptest::prelude::*;
use rfmath::units::{Farads, Henries, Hertz, Meters, Ohms, Radians};

/// Largest |Δ| across all four scattering blocks.
fn max_diff(a: PolarizedS, b: PolarizedS) -> f64 {
    a.s11
        .max_abs_diff(b.s11)
        .max(a.s12.max_abs_diff(b.s12))
        .max(a.s21.max_abs_diff(b.s21))
        .max(a.s22.max_abs_diff(b.s22))
}

/// One polarization branch: fixed tank, varactor-tuned tank, or bare
/// dielectric.
fn branch() -> BoxedStrategy<SheetBranch> {
    prop_oneof![
        (0.5f64..40.0, 0.05f64..2.0, 0.05f64..1.0).prop_map(|(l_nh, c_pf, r)| {
            SheetBranch::Fixed {
                l: Henries::from_nh(l_nh),
                c: Farads::from_pf(c_pf),
                r: Ohms(r),
            }
        }),
        (2.0f64..12.0, 0.3f64..3.0, 0.05f64..1.0).prop_map(|(l_nh, cc_pf, r)| {
            SheetBranch::Tuned {
                l: Henries::from_nh(l_nh),
                c_couple: Farads::from_pf(cc_pf),
                varactor: Varactor::smv1233(),
                r: Ohms(r),
            }
        }),
        Just(SheetBranch::Transparent),
    ]
    .boxed()
}

/// A randomly patterned board at a random mounting rotation.
fn panel() -> BoxedStrategy<Panel> {
    (branch(), branch(), 0.4f64..3.2, -1.6f64..1.6, 0usize..2)
        .prop_map(|(x, y, thickness_mm, rotation, material)| {
            let material = if material == 0 {
                Material::FR4
            } else {
                Material::ROGERS_5880
            };
            Panel {
                sheet: AnisotropicSheet {
                    x,
                    y,
                    slab: Slab::from_mm(material, thickness_mm),
                },
                rotation: Radians(rotation),
            }
        })
        .boxed()
}

/// A random stack: 1–4 panels with random air gaps between them.
fn stack() -> BoxedStrategy<SurfaceStack> {
    (
        prop::collection::vec(panel(), 1..5),
        prop::collection::vec(0.004f64..0.04, 4..5),
    )
        .prop_map(|(panels, gaps)| {
            let gaps = gaps[..panels.len() - 1]
                .iter()
                .map(|&g| Meters(g))
                .collect();
            SurfaceStack::new(panels, gaps)
        })
        .boxed()
}

/// A random bias-grid axis (2–4 voltages in the supply range).
fn axis() -> BoxedStrategy<Vec<f64>> {
    prop::collection::vec(0.0f64..30.0, 2..5).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random stacks: the compiled plan's grid evaluation equals naive
    /// per-point cascades cell for cell.
    #[test]
    fn random_stacks_grid_matches_naive(
        stack in stack(),
        f_ghz in 1.8f64..3.0,
        vxs in axis(),
        vys in axis(),
    ) {
        let f = Hertz::from_ghz(f_ghz);
        let evaluator = StackEvaluator::new(&stack, f);
        let grid = evaluator.eval_grid(&vxs, &vys);
        prop_assert_eq!(grid.len(), vxs.len() * vys.len());
        for (iy, &vy) in vys.iter().enumerate() {
            for (ix, &vx) in vxs.iter().enumerate() {
                let naive = stack.response(f, BiasState::new(vx, vy));
                let fast = grid[iy * vxs.len() + ix];
                match (naive, fast) {
                    (Some(naive), Some(fast)) => prop_assert!(
                        max_diff(naive, fast) < 1e-12,
                        "cell ({vx:.2},{vy:.2}) diff {}",
                        max_diff(naive, fast)
                    ),
                    (None, None) => {}
                    _ => prop_assert!(false, "Some/None mismatch at ({vx:.2},{vy:.2})"),
                }
            }
        }
    }

    /// Random stacks: single-point evaluation (the optimizer's probe
    /// path, with warm voltage memos) equals the naive cascade.
    #[test]
    fn random_stacks_single_point_matches_naive(
        stack in stack(),
        f_ghz in 1.8f64..3.0,
        vx in 0.0f64..30.0,
        vy in 0.0f64..30.0,
    ) {
        let f = Hertz::from_ghz(f_ghz);
        let evaluator = StackEvaluator::new(&stack, f);
        let bias = BiasState::new(vx, vy);
        for _ in 0..2 {
            // Second pass hits the voltage memos.
            match (stack.response(f, bias), evaluator.response(bias)) {
                (Some(naive), Some(fast)) => prop_assert!(
                    max_diff(naive, fast) < 1e-12,
                    "diff {}",
                    max_diff(naive, fast)
                ),
                (None, None) => {}
                _ => prop_assert!(false, "Some/None mismatch"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The catalog designs (the stacks every published figure uses)
    /// agree between the engines across frequency and bias grids.
    #[test]
    fn catalog_designs_grid_matches_naive(
        which in 0usize..4,
        f_ghz in 2.2f64..2.7,
        vxs in axis(),
        vys in axis(),
    ) {
        let design = match which {
            0 => fr4_optimized(),
            1 => rogers_reference(),
            2 => fr4_naive(),
            _ => rfid_900mhz(),
        };
        let f = if which == 3 {
            Hertz(f_ghz / 2.667 * 1e9)
        } else {
            Hertz::from_ghz(f_ghz)
        };
        let evaluator = StackEvaluator::new(&design.stack, f);
        let grid = evaluator.eval_grid(&vxs, &vys);
        for (iy, &vy) in vys.iter().enumerate() {
            for (ix, &vx) in vxs.iter().enumerate() {
                let naive = design
                    .stack
                    .response(f, BiasState::new(vx, vy))
                    .expect("catalog cascade exists");
                let fast = grid[iy * vxs.len() + ix].expect("batched cascade exists");
                prop_assert!(
                    max_diff(naive, fast) < 1e-12,
                    "{} at ({vx:.2},{vy:.2}): diff {}",
                    design.name,
                    max_diff(naive, fast)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The structure-of-arrays batch kernel agrees with the per-cell
    /// reference fold to 1e-12 on random stacks and bias batches —
    /// including batches with repeated biases (the memo-hit path) and
    /// batches large enough to cross the SoA dispatch threshold.
    #[test]
    fn soa_batch_matches_reference(
        stack in stack(),
        f_ghz in 1.8f64..3.0,
        biases in prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 0..24),
        repeat in 0usize..8,
    ) {
        let f = Hertz::from_ghz(f_ghz);
        let evaluator = StackEvaluator::new(&stack, f);
        let mut batch: Vec<BiasState> = biases
            .iter()
            .map(|&(vx, vy)| BiasState::new(vx, vy))
            .collect();
        // Duplicate a prefix so the batch exercises repeated biases.
        let dupes: Vec<BiasState> = batch.iter().take(repeat).copied().collect();
        batch.extend(dupes);
        let fast = evaluator.eval_batch(&batch);
        let reference = evaluator.eval_batch_reference(&batch);
        prop_assert_eq!(fast.len(), reference.len());
        for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => prop_assert!(
                    max_diff(*a, *b) < 1e-12,
                    "batch cell {i} diff {}",
                    max_diff(*a, *b)
                ),
                (None, None) => {}
                _ => prop_assert!(false, "Some/None mismatch at batch cell {i}"),
            }
        }
    }
}
