//! Property-based tests on the assembled surface: passivity and
//! reciprocity across the whole (bias, frequency) plane for all three
//! designs, bias-map continuity, and panel-economics monotonicity.

use metasurface::bias::RotationMap;
use metasurface::designs::{fr4_naive, fr4_optimized, rfid_900mhz, rogers_reference};
use metasurface::fabrication::{estimate_bom, volume_discount};
use metasurface::geometry::PanelGeometry;
use metasurface::stack::BiasState;
use proptest::prelude::*;
use rfmath::units::Hertz;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every design is passive and reciprocal at every bias and in-band
    /// frequency — the master physical invariant of the layer cascade.
    #[test]
    fn all_designs_passive_reciprocal(
        which in 0usize..4,
        vx in 0.0f64..30.0,
        vy in 0.0f64..30.0,
        f_ghz in 2.1f64..2.8,
    ) {
        let design = match which {
            0 => fr4_optimized(),
            1 => rogers_reference(),
            2 => fr4_naive(),
            _ => rfid_900mhz(),
        };
        // The 915 MHz design is probed in its own band.
        let f = if which == 3 {
            Hertz(f_ghz / 2.667 * 1e9)
        } else {
            Hertz::from_ghz(f_ghz)
        };
        let r = design
            .stack
            .response(f, BiasState::new(vx, vy))
            .expect("cascade exists");
        prop_assert!(r.is_passive(1e-9), "{} active at ({vx:.1},{vy:.1}) {f:?}", design.name);
        prop_assert!(r.is_reciprocal(1e-8), "{} non-reciprocal", design.name);
    }

    /// Transmission + reflection + dissipation accounting: output power
    /// never exceeds input on either polarization axis.
    #[test]
    fn energy_accounting(vx in 0.0f64..30.0, vy in 0.0f64..30.0) {
        let design = fr4_optimized();
        let r = design
            .stack
            .response(Hertz::from_ghz(2.44), BiasState::new(vx, vy))
            .unwrap();
        let out_x = r.efficiency_x()
            + r.s11.a.norm_sqr()
            + r.s11.c.norm_sqr();
        let out_y = r.efficiency_y()
            + r.s11.b.norm_sqr()
            + r.s11.d.norm_sqr();
        prop_assert!(out_x <= 1.0 + 1e-9, "x-axis budget {out_x}");
        prop_assert!(out_y <= 1.0 + 1e-9, "y-axis budget {out_y}");
    }

    /// The bias→rotation map is continuous: neighbouring interpolated
    /// points never jump by more than a few degrees.
    #[test]
    fn rotation_map_is_continuous(v in 2.0f64..14.5) {
        let map = RotationMap::from_design(
            &fr4_optimized(),
            Hertz::from_ghz(2.44),
            &[2.0, 4.0, 6.0, 10.0, 15.0],
        );
        let a = map.rotation_deg(BiasState::new(v, 6.0)).0;
        let b = map.rotation_deg(BiasState::new(v + 0.4, 6.0)).0;
        prop_assert!((a - b).abs() < 8.0, "jump {a:.1} → {b:.1} at {v:.2} V");
    }

    /// Volume discounts are monotone non-increasing in run size, and the
    /// BOM respects them.
    #[test]
    fn economics_monotone(n1 in 1usize..5000, n2 in 1usize..5000) {
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(volume_discount(hi) <= volume_discount(lo));
        let geometry = PanelGeometry::llama_prototype();
        let b_lo = estimate_bom(&fr4_optimized(), &geometry, lo);
        let b_hi = estimate_bom(&fr4_optimized(), &geometry, hi);
        prop_assert!(b_hi.total_usd() <= b_lo.total_usd() + 1e-9);
    }
}
