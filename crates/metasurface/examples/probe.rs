//! Probe the three §3.2 designs: per-frequency efficiency and rotation
//! under a fixed bias, printed as a quick design-comparison table.

use metasurface::designs::{fr4_naive, fr4_optimized, rogers_reference};
use metasurface::stack::BiasState;
use rfmath::jones::JonesVector;
use rfmath::units::Hertz;

fn main() {
    let bias = BiasState::new(6.0, 6.0);
    for d in [rogers_reference(), fr4_naive(), fr4_optimized()] {
        println!("== {}", d.name);
        for f_ghz in [2.0f64, 2.2, 2.4, 2.44, 2.5, 2.6, 2.8] {
            match d.stack.response(Hertz::from_ghz(f_ghz), bias) {
                Some(r) => println!(
                    "  {f_ghz:.2} GHz: effX={:6.2} dB effY={:6.2} dB",
                    r.efficiency_x_db().0,
                    r.efficiency_y_db().0
                ),
                None => println!("  {f_ghz:.2} GHz: OPAQUE"),
            }
        }
    }
    let d = fr4_optimized();
    println!("== bias sweep (2.44 GHz, optimized): x-pol in -> orientation/ellipticity out");
    for (vx, vy) in [
        (2.0, 2.0),
        (2.0, 6.0),
        (2.0, 15.0),
        (6.0, 2.0),
        (6.0, 6.0),
        (6.0, 15.0),
        (15.0, 2.0),
        (15.0, 6.0),
        (15.0, 15.0),
        (30.0, 2.0),
        (2.0, 30.0),
    ] {
        let r = d
            .stack
            .response(Hertz::from_ghz(2.44), BiasState::new(vx, vy))
            .unwrap();
        let out = r.transmission_jones().apply(JonesVector::horizontal());
        let ori = out.orientation().to_degrees().0;
        let ell = out.ellipticity().to_degrees().0;
        println!(
            "  Vx={vx:4} Vy={vy:4}: effX={:6.2} dB  orient={ori:7.2}°  ellip={ell:6.2}°",
            r.efficiency_x_db().0
        );
    }
}
