//! Property-based tests for the RSSI report codec: arbitrary reports
//! round-trip, every single-bit corruption is detected, and truncations
//! never panic.

use bytes::BytesMut;
use devices::report::{crc16, DecodeError, ReportPacket, PACKET_LEN};
use proptest::prelude::*;
use rfmath::units::{Dbm, Seconds};

proptest! {
    /// Any representable report survives encode→decode intact.
    #[test]
    fn round_trip(
        seq in any::<u32>(),
        t_us in 0u64..(1u64 << 52),
        centi_db in -32768i32..=32767,
    ) {
        let power = Dbm(centi_db as f64 / 100.0);
        let p = ReportPacket {
            seq,
            t_micros: t_us,
            power,
        };
        let decoded = ReportPacket::decode(p.encode()).expect("decode");
        prop_assert_eq!(decoded.seq, seq);
        prop_assert_eq!(decoded.t_micros, t_us);
        prop_assert!((decoded.power.0 - power.0).abs() < 1e-9);
    }

    /// Every single-bit flip anywhere in the packet is rejected.
    #[test]
    fn single_bit_flips_detected(
        seq in any::<u32>(),
        t_us in 0u64..(1u64 << 40),
        centi_db in -20000i32..0,
        byte_idx in 0usize..PACKET_LEN,
        bit in 0u8..8,
    ) {
        let p = ReportPacket {
            seq,
            t_micros: t_us,
            power: Dbm(centi_db as f64 / 100.0),
        };
        let mut data = BytesMut::from(&p.encode()[..]);
        data[byte_idx] ^= 1 << bit;
        let result = ReportPacket::decode(data.freeze());
        prop_assert!(result.is_err(), "flip at byte {byte_idx} bit {bit} undetected");
    }

    /// Truncated packets return `Truncated`, never panic.
    #[test]
    fn truncation_is_graceful(len in 0usize..PACKET_LEN) {
        let p = ReportPacket::new(1, Seconds(1.0), Dbm(-50.0));
        let data = p.encode().slice(0..len);
        prop_assert_eq!(ReportPacket::decode(data), Err(DecodeError::Truncated));
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn garbage_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = ReportPacket::decode(bytes::Bytes::from(data));
    }

    /// CRC16 distinguishes any two payloads differing in one byte.
    #[test]
    fn crc_sensitivity(
        payload in prop::collection::vec(any::<u8>(), 1..32),
        idx in 0usize..31,
        delta in 1u8..=255,
    ) {
        prop_assume!(idx < payload.len());
        let mut other = payload.clone();
        other[idx] = other[idx].wrapping_add(delta);
        prop_assert_ne!(crc16(&payload), crc16(&other));
    }
}
