//! Human respiration target (paper §5.2.2, Figure 23).
//!
//! The sensing case study: a person between the transceiver pair and the
//! metasurface; chest motion modulates a reflected path's length by a
//! few millimetres at the breathing rate, and the surface's reflective
//! gain is what lifts that modulation above the noise at low transmit
//! power. The model provides the modulated-path parameters the
//! propagation layer turns into a time-varying receive power.

use rfmath::units::{Db, Meters, Seconds};

/// A breathing human as a radar target.
#[derive(Clone, Debug, PartialEq)]
pub struct HumanTarget {
    /// Breathing rate in breaths per minute (adults: 12–20 bpm).
    pub breaths_per_minute: f64,
    /// Peak-to-peak chest displacement.
    pub chest_displacement: Meters,
    /// Reflection loss off the torso (RCS-derived, dB, positive).
    pub reflection_loss_db: Db,
    /// Phase of the breathing cycle at t = 0, radians.
    pub initial_phase: f64,
    /// Round-trip distance of the path scattering off the chest.
    pub path_length: Meters,
}

impl HumanTarget {
    /// A resting adult subject, as in the paper's setup: ≈15 bpm,
    /// ≈1 cm peak-to-peak chest travel, ≈16 dB reflection loss (an adult
    /// torso presents ~0.3–1 m² of RCS at 2.4 GHz).
    pub fn resting_adult(path_length: Meters) -> Self {
        Self {
            breaths_per_minute: 15.0,
            chest_displacement: Meters(0.010),
            reflection_loss_db: Db(16.0),
            initial_phase: 0.0,
            path_length,
        }
    }

    /// Breathing rate in hertz.
    pub fn rate_hz(&self) -> f64 {
        self.breaths_per_minute / 60.0
    }

    /// Path-length modulation tuple `(amplitude_m, rate_hz, phase)` in
    /// the form the propagation layer's [`propagation::rays::Path`]
    /// expects. Chest travel is one-way; the reflected path sees double.
    pub fn modulation(&self) -> (f64, f64, f64) {
        (
            self.chest_displacement.0, // ±half p-p each way × 2 for round trip
            self.rate_hz(),
            self.initial_phase,
        )
    }

    /// Amplitude scaling of the reflected path (linear, ≤ 1):
    /// `10^(−loss/20)`.
    pub fn reflection_amplitude(&self) -> f64 {
        10f64.powf(-self.reflection_loss_db.0 / 20.0)
    }

    /// Obstruction loss when this body stands *in* the line of sight
    /// instead of beside it (the §5.2.2 "person walks between AP and
    /// surface" event): the torso reflects part of the incident energy
    /// away (its radar reflection loss, ~16 dB below the direct wave)
    /// and absorbs most of the rest, leaving diffraction around the
    /// body as the dominant through-component — a 10–15 dB shadow at
    /// 2.4 GHz in indoor measurements. We model it as three quarters of
    /// the reflection loss, which lands a resting adult at 12 dB.
    pub fn blockage_loss_db(&self) -> Db {
        Db(0.75 * self.reflection_loss_db.0)
    }

    /// Chest displacement from rest at time `t` (meters, signed).
    pub fn displacement_at(&self, t: Seconds) -> f64 {
        0.5 * self.chest_displacement.0
            * (std::f64::consts::TAU * self.rate_hz() * t.0 + self.initial_phase).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resting_rate_is_quarter_hz() {
        let h = HumanTarget::resting_adult(Meters(3.0));
        assert!((h.rate_hz() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reflection_amplitude_matches_db() {
        let h = HumanTarget::resting_adult(Meters(3.0));
        let expected = 10f64.powf(-16.0 / 20.0);
        assert!(
            (h.reflection_amplitude() - expected).abs() < 1e-6,
            "{} vs {expected}",
            h.reflection_amplitude()
        );
    }

    #[test]
    fn displacement_oscillates_at_breathing_rate() {
        let h = HumanTarget::resting_adult(Meters(3.0));
        let period = 60.0 / h.breaths_per_minute;
        let d0 = h.displacement_at(Seconds(0.0));
        let d_full = h.displacement_at(Seconds(period));
        assert!((d0 - d_full).abs() < 1e-12, "periodic in the breath cycle");
        let d_quarter = h.displacement_at(Seconds(period / 4.0));
        assert!((d_quarter - 0.005).abs() < 1e-9, "peak at quarter cycle");
    }

    #[test]
    fn blockage_loss_is_a_reasonable_body_shadow() {
        let h = HumanTarget::resting_adult(Meters(3.0));
        let loss = h.blockage_loss_db().0;
        assert!(
            (10.0..=15.0).contains(&loss),
            "body shadow should land in the measured 10–15 dB band: {loss} dB"
        );
    }

    #[test]
    fn modulation_tuple_is_consistent() {
        let h = HumanTarget::resting_adult(Meters(3.0));
        let (amp, rate, phase) = h.modulation();
        assert_eq!(amp, 0.010);
        assert!((rate - 0.25).abs() < 1e-12);
        assert_eq!(phase, 0.0);
    }
}
