//! # devices — the endpoints and fixtures of the LLAMA testbed
//!
//! Simulation counterparts of every piece of hardware on the paper's
//! bench:
//!
//! * [`usrp`] — the USRP N210 + UBX-40 tone transceiver and its
//!   Goertzel power-measurement chain (§4);
//! * [`wifi`] — the Netgear N300 AP and ESP8266 Arduino station with
//!   quantized RSSI and 802.11g rate adaptation (Figures 2a, 20);
//! * [`ble`] — the MetaMotionR wearable and Raspberry Pi 3 central with
//!   advertising channels and a decode cliff (Figure 2b);
//! * [`turntable`] — the remote-controlled rotation fixture behind the
//!   §3.4 estimation procedure (Figure 12);
//! * [`human`] — the breathing subject of the §5.2.2 sensing study
//!   (Figure 23);
//! * [`report`] — the binary RSSI-report protocol between receiver and
//!   controller, with CRC validation and a lossy-transport fault
//!   injector;
//! * [`profile`] — radio-level device profiles (antenna, carrier, noise,
//!   sensitivity) the fleet engine instantiates populations from.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ble;
pub mod human;
pub mod profile;
pub mod report;
pub mod turntable;
pub mod usrp;
pub mod wifi;

pub use ble::{BleAdvertiser, BleCentral};
pub use human::HumanTarget;
pub use profile::{DeviceProfile, Radio};
pub use report::{LossyTransport, ReportPacket};
pub use turntable::Turntable;
pub use usrp::{UsrpConfig, UsrpReceiver};
pub use wifi::{AccessPoint, WifiStation};
