//! Remote-controlled turntable (paper Figure 12 caption: "the antenna
//! that needs to be rotated is fixed to a turntable and rotated via
//! remote control").
//!
//! The §3.4 rotation-estimation procedure needs fine, repeatable antenna
//! roll control; the model tracks commanded vs actual position with a
//! finite slew rate and step quantization.

use rfmath::units::{Degrees, Seconds};

/// A motorized antenna rotation fixture.
#[derive(Clone, Debug, PartialEq)]
pub struct Turntable {
    /// Current actual position.
    position: Degrees,
    /// Commanded target position.
    target: Degrees,
    /// Slew rate, degrees per second.
    pub slew_deg_per_s: f64,
    /// Smallest commandable step.
    pub step_resolution: Degrees,
    /// Simulation time of the last update.
    last_update: Seconds,
}

impl Turntable {
    /// A hobby-grade pan fixture: 30°/s slew, 0.5° steps.
    pub fn new() -> Self {
        Self {
            position: Degrees(0.0),
            target: Degrees(0.0),
            slew_deg_per_s: 30.0,
            step_resolution: Degrees(0.5),
            last_update: Seconds(0.0),
        }
    }

    /// A fixture already parked at `position` — mounting a device
    /// mid-scene (the mobility simulator starts each rotating device's
    /// turntable at its existing antenna mount instead of slewing in
    /// from zero).
    pub fn at(position: Degrees) -> Self {
        Self {
            position,
            target: position,
            ..Self::new()
        }
    }

    /// Commands a new absolute position (quantized to the resolution).
    pub fn command(&mut self, target: Degrees) {
        let steps = (target.0 / self.step_resolution.0).round();
        self.target = Degrees(steps * self.step_resolution.0);
    }

    /// Advances the mechanism to simulation time `now`.
    pub fn update(&mut self, now: Seconds) {
        let dt = (now.0 - self.last_update.0).max(0.0);
        self.last_update = now;
        let max_travel = self.slew_deg_per_s * dt;
        let delta = self.target.0 - self.position.0;
        if delta.abs() <= max_travel {
            self.position = self.target;
        } else {
            self.position = Degrees(self.position.0 + max_travel * delta.signum());
        }
    }

    /// Actual mechanical position now.
    pub fn position(&self) -> Degrees {
        self.position
    }

    /// True when the mechanism has reached its commanded target.
    pub fn settled(&self) -> bool {
        (self.position.0 - self.target.0).abs() < 1e-9
    }

    /// Time needed to travel to `target` from the current position.
    pub fn travel_time(&self, target: Degrees) -> Seconds {
        Seconds((target.0 - self.position.0).abs() / self.slew_deg_per_s)
    }
}

impl Default for Turntable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_quantizes_to_resolution() {
        let mut t = Turntable::new();
        t.command(Degrees(10.26));
        t.update(Seconds(100.0));
        assert_eq!(t.position().0, 10.5);
    }

    #[test]
    fn slew_limits_progress() {
        let mut t = Turntable::new();
        t.command(Degrees(90.0));
        t.update(Seconds(1.0)); // 30°/s × 1 s
        assert!((t.position().0 - 30.0).abs() < 1e-9);
        assert!(!t.settled());
        t.update(Seconds(3.0));
        assert!(t.settled());
        assert_eq!(t.position().0, 90.0);
    }

    #[test]
    fn travel_time_is_distance_over_rate() {
        let t = Turntable::new();
        assert!((t.travel_time(Degrees(90.0)).0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_travel_works() {
        let mut t = Turntable::new();
        t.command(Degrees(20.0));
        t.update(Seconds(10.0));
        t.command(Degrees(-20.0));
        t.update(Seconds(20.0));
        assert_eq!(t.position().0, -20.0);
    }

    #[test]
    fn parked_fixture_starts_settled_at_its_mount() {
        let mut t = Turntable::at(Degrees(-53.0));
        assert_eq!(t.position().0, -53.0);
        assert!(t.settled());
        // And slews away from the mount like any other fixture.
        t.command(Degrees(-47.0));
        t.update(Seconds(1.0));
        assert_eq!(t.position().0, -47.0);
    }

    #[test]
    fn out_of_order_updates_are_safe() {
        let mut t = Turntable::new();
        t.command(Degrees(10.0));
        t.update(Seconds(5.0));
        // A stale timestamp must not move the mechanism backwards.
        let pos = t.position();
        t.update(Seconds(1.0));
        assert_eq!(t.position(), pos);
    }
}
