//! USRP N210 + UBX-40 software-defined transceiver model (paper §4).
//!
//! The controlled experiments use a USRP pair: the transmitter sends a
//! continuous 500 kHz cosine; the receiver samples at 1 MHz and reports
//! tone power. The model reproduces that measurement chain — tunable
//! carrier, calibrated tone generation, AWGN at the receiver's noise
//! floor, Goertzel power extraction — on top of the propagation crate's
//! link amplitudes.

use propagation::noise::NoiseModel;
use propagation::signal::{received_tone, Capture};
use rand::rngs::StdRng;
use rfmath::complex::Complex;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Dbm, Hertz, Watts};

/// USRP configuration limits (UBX-40 covers the full ISM band).
#[derive(Clone, Debug, PartialEq)]
pub struct UsrpConfig {
    /// RF carrier frequency.
    pub carrier: Hertz,
    /// Baseband tone offset (the paper's 500 kHz cosine).
    pub tone: Hertz,
    /// Receiver sampling rate (1 MHz).
    pub sample_rate: Hertz,
    /// Transmit power at the antenna port.
    pub tx_power: Watts,
}

impl UsrpConfig {
    /// The paper's default configuration: 2.44 GHz carrier, 500 kHz
    /// tone, 1 MHz sampling.
    pub fn paper_default() -> Self {
        Self {
            carrier: Hertz::from_ghz(2.44),
            tone: Hertz::from_khz(500.0),
            sample_rate: Hertz::from_mhz(1.0),
            tx_power: Watts::from_mw(50.0),
        }
    }

    /// Validates against UBX-40 hardware limits (400 MHz – 6 GHz RF,
    /// up to 40 MHz of bandwidth).
    pub fn validate(&self) -> Result<(), String> {
        if !(400e6..=6e9).contains(&self.carrier.0) {
            return Err(format!("carrier {} outside UBX-40 range", self.carrier));
        }
        if self.tone.0 * 2.0 > self.sample_rate.0 {
            return Err("tone violates Nyquist at the configured rate".to_string());
        }
        if self.sample_rate.0 > 40e6 {
            return Err("sample rate exceeds UBX-40 bandwidth".to_string());
        }
        if self.tx_power.0 > 0.1 {
            return Err("UBX-40 output saturates above +20 dBm".to_string());
        }
        Ok(())
    }
}

/// A receiving USRP: captures tone transmissions with thermal noise and
/// estimates their power.
#[derive(Debug)]
pub struct UsrpReceiver {
    /// Radio configuration.
    pub config: UsrpConfig,
    /// Front-end noise model.
    pub noise: NoiseModel,
    rng: StdRng,
}

impl UsrpReceiver {
    /// Creates a receiver with a deterministic noise stream.
    pub fn new(config: UsrpConfig, seed: &SeedSplitter) -> Self {
        Self {
            config,
            noise: NoiseModel::usrp_1mhz(),
            rng: seed.stream("usrp-rx-noise"),
        }
    }

    /// Captures `samples` IQ points of a tone arriving with the given
    /// complex link amplitude (√W at the antenna port).
    pub fn capture(&mut self, rx_amplitude: Complex, samples: usize) -> Capture {
        received_tone(
            rx_amplitude,
            self.config.sample_rate,
            self.config.tone,
            self.noise.noise_watts(),
            samples,
            &mut self.rng,
        )
    }

    /// One power measurement: capture and extract the tone bin, dBm.
    ///
    /// `samples = 4096` gives the ~4 ms dwell the sweep's per-state
    /// measurement window allows.
    pub fn measure_dbm(&mut self, rx_amplitude: Complex, samples: usize) -> Dbm {
        self.capture(rx_amplitude, samples)
            .tone_power_dbm(self.config.tone)
    }

    /// The paper's baseline recipe: average many captures (≈30 s of
    /// samples) in the linear domain.
    pub fn baseline_dbm(&mut self, rx_amplitude: Complex, captures: usize) -> Dbm {
        let caps: Vec<Capture> = (0..captures.max(1))
            .map(|_| self.capture(rx_amplitude, 4096))
            .collect();
        let mean_w = caps
            .iter()
            .map(|c| c.tone_power(self.config.tone).0)
            .sum::<f64>()
            / caps.len() as f64;
        Watts(mean_w).to_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert!(UsrpConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn config_validation_catches_violations() {
        let mut c = UsrpConfig::paper_default();
        c.carrier = Hertz::from_ghz(10.0);
        assert!(c.validate().is_err());

        let mut c = UsrpConfig::paper_default();
        c.tone = Hertz::from_khz(700.0);
        assert!(c.validate().is_err(), "Nyquist violation");

        let mut c = UsrpConfig::paper_default();
        c.tx_power = Watts(1.0);
        assert!(c.validate().is_err(), "saturation");
    }

    #[test]
    fn measurement_recovers_known_amplitude() {
        let seed = SeedSplitter::new(11);
        let mut rx = UsrpReceiver::new(UsrpConfig::paper_default(), &seed);
        // −50 dBm arrival: amplitude √(1e-8 W).
        let amp = Complex::from_polar(1e-4, 0.7);
        let est = rx.measure_dbm(amp, 8192);
        assert!((est.0 + 50.0).abs() < 0.5, "measured {est}");
    }

    #[test]
    fn weak_signals_hit_the_noise_floor() {
        let seed = SeedSplitter::new(12);
        let mut rx = UsrpReceiver::new(UsrpConfig::paper_default(), &seed);
        // −150 dBm arrival: far below kTB+NF. The tone-bin noise floor
        // is kTB+NF − 10·log10(N) ≈ −144 dBm at N = 4096, so averaged
        // estimates sit well above the true power — the measurement is
        // noise-limited, not signal-limited.
        let amp = Complex::from_polar(10f64.powf(-150.0 / 20.0) * (1e-3f64).sqrt(), 0.0);
        let est = rx.baseline_dbm(amp, 30);
        assert!(est.0 > -147.0, "noise-floor limited: {est}");
        assert!(est.0 < -135.0, "still far below the full-band floor: {est}");
    }

    #[test]
    fn baseline_averaging_tightens_estimates() {
        let seed = SeedSplitter::new(13);
        let mut rx = UsrpReceiver::new(UsrpConfig::paper_default(), &seed);
        let amp = Complex::from_polar(3e-6, 0.0); // ≈ −80 dBm, near-ish floor
        let singles: Vec<f64> = (0..12).map(|_| rx.measure_dbm(amp, 1024).0).collect();
        let spread = rfmath::stats::max(&singles) - rfmath::stats::min(&singles);
        let avg_a = rx.baseline_dbm(amp, 30).0;
        let avg_b = rx.baseline_dbm(amp, 30).0;
        assert!(
            (avg_a - avg_b).abs() < spread.max(1e-9),
            "averaged estimates ({avg_a:.2}, {avg_b:.2}) should agree better \
             than single captures spread ({spread:.2})"
        );
    }

    #[test]
    fn receiver_is_deterministic_per_seed() {
        let amp = Complex::from_polar(1e-5, 0.0);
        let a = UsrpReceiver::new(UsrpConfig::paper_default(), &SeedSplitter::new(5))
            .measure_dbm(amp, 2048);
        let b = UsrpReceiver::new(UsrpConfig::paper_default(), &SeedSplitter::new(5))
            .measure_dbm(amp, 2048);
        assert_eq!(a.0, b.0);
    }
}
