//! Device profiles for fleet construction: the radio-level identity of
//! one endpoint class, bundled so the fleet engine can instantiate
//! heterogeneous populations ("12 ESP8266 stations and 20 BLE
//! wearables") without re-deriving antennas, carriers, noise models and
//! sensitivities at every call site.
//!
//! A profile is pure description — no RNG state — so it can be cloned
//! freely across a 32-device fleet; the stateful measurement chains
//! ([`crate::wifi::WifiStation`], [`crate::ble::BleCentral`]) stay
//! per-instance.

use propagation::antenna::Antenna;
use propagation::noise::NoiseModel;
use rfmath::units::{Hertz, Watts};

/// Radio technology of a fleet endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Radio {
    /// 802.11g station (Figure 20's ESP8266 class).
    Wifi,
    /// BLE peripheral (Figure 2b's wearable class).
    Ble,
    /// Lab-grade USRP endpoint (the §4 controlled links).
    Usrp,
}

/// The radio-level identity of one endpoint class.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Display name of the hardware class.
    pub name: &'static str,
    /// Radio technology.
    pub radio: Radio,
    /// Receive antenna of the device.
    pub antenna: Antenna,
    /// Carrier its network operates on.
    pub carrier: Hertz,
    /// Transmit power of its uplink peer (AP / phone / USRP).
    pub tx_power: Watts,
    /// Receiver noise description (bandwidth + noise figure).
    pub noise: NoiseModel,
    /// Sensitivity floor: below this received power the device cannot
    /// hold its link at all (decode cliff / minimum MCS).
    pub sensitivity_dbm: f64,
}

impl DeviceProfile {
    /// The Figure 20 low-cost Wi-Fi IoT station: ESP8266 PCB antenna on
    /// an 802.11g 20 MHz channel.
    pub fn wifi_esp8266() -> Self {
        Self {
            name: "ESP8266 Wi-Fi station",
            radio: Radio::Wifi,
            antenna: Antenna::esp8266_pcb(),
            carrier: Hertz::from_ghz(2.442),
            tx_power: Watts::from_mw(100.0),
            noise: NoiseModel::wifi_20mhz(),
            sensitivity_dbm: -88.0,
        }
    }

    /// The Figure 2(b) BLE wearable: chip antenna, 1 mW advertising, a
    /// 2 MHz channel with a sharp decode cliff.
    pub fn ble_wearable() -> Self {
        Self {
            name: "MetaMotionR BLE wearable",
            radio: Radio::Ble,
            antenna: Antenna::wearable_chip(),
            carrier: Hertz(2.426e9),
            tx_power: Watts::from_mw(1.0),
            noise: NoiseModel::ble_2mhz(),
            sensitivity_dbm: -94.0,
        }
    }

    /// The §4 controlled USRP endpoint with a directional panel.
    pub fn usrp_directional() -> Self {
        Self {
            name: "USRP N210 (directional panel)",
            radio: Radio::Usrp,
            antenna: Antenna::directional_panel(),
            carrier: Hertz::from_ghz(2.44),
            tx_power: Watts::from_mw(50.0),
            noise: NoiseModel::usrp_1mhz(),
            sensitivity_dbm: -100.0,
        }
    }

    /// True when `rx_dbm` clears the device's sensitivity floor.
    pub fn is_decodable(&self, rx_dbm: f64) -> bool {
        rx_dbm >= self.sensitivity_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_hardware_differs() {
        let wifi = DeviceProfile::wifi_esp8266();
        let ble = DeviceProfile::ble_wearable();
        assert_ne!(wifi.radio, ble.radio);
        assert!(wifi.tx_power.0 > ble.tx_power.0, "AP outpowers a wearable");
        assert!(
            ble.noise.bandwidth.0 < wifi.noise.bandwidth.0,
            "BLE channels are narrower"
        );
        assert_ne!(wifi.carrier.0, ble.carrier.0);
    }

    #[test]
    fn sensitivity_gates_decodability() {
        let ble = DeviceProfile::ble_wearable();
        assert!(ble.is_decodable(-90.0));
        assert!(!ble.is_decodable(-95.0));
    }
}
