//! Bluetooth Low Energy endpoints: a MetaMotionR-class wearable sensor
//! advertising to a Raspberry Pi 3 central — the link of Figure 2(b).
//!
//! BLE adds two behaviours Wi-Fi lacks: advertising channel hopping
//! (37/38/39 sit at different frequencies, so fading differs per
//! channel) and very low transmit power (0 dBm class), which is what
//! makes the wearable link so fragile under polarization mismatch.

use rand::rngs::StdRng;
use rand::Rng;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Dbm, Hertz};

use propagation::noise::NoiseModel;

/// BLE advertising channels and their center frequencies.
pub const ADVERTISING_CHANNELS: [(u8, f64); 3] = [(37, 2.402e9), (38, 2.426e9), (39, 2.480e9)];

/// A BLE advertiser (the wearable).
#[derive(Clone, Debug, PartialEq)]
pub struct BleAdvertiser {
    /// Transmit power, dBm (MetaMotionR advertises at 0 dBm).
    pub tx_power_dbm: Dbm,
    /// Advertising interval, seconds.
    pub adv_interval_s: f64,
}

impl BleAdvertiser {
    /// A MetaMotionR-class wearable.
    pub fn metamotion_r() -> Self {
        Self {
            tx_power_dbm: Dbm(0.0),
            adv_interval_s: 0.1,
        }
    }

    /// The advertising channel used at event `n` (round-robin).
    pub fn channel_at(&self, n: u64) -> (u8, Hertz) {
        let (ch, f) = ADVERTISING_CHANNELS[(n % 3) as usize];
        (ch, Hertz(f))
    }
}

/// A BLE central's RSSI chain (the Raspberry Pi).
#[derive(Debug)]
pub struct BleCentral {
    /// Readings clamp here (BlueZ reports −110 min).
    pub rssi_floor: Dbm,
    /// Reading jitter standard deviation, dB (BLE RSSI is coarse).
    pub jitter_db: f64,
    /// Receiver noise model (2 MHz channel).
    pub noise: NoiseModel,
    rng: StdRng,
}

impl BleCentral {
    /// A Raspberry Pi 3 with its on-board radio.
    pub fn raspberry_pi3(seed: &SeedSplitter) -> Self {
        Self {
            rssi_floor: Dbm(-110.0),
            jitter_db: 2.0,
            noise: NoiseModel::ble_2mhz(),
            rng: seed.stream("rpi-ble-rssi"),
        }
    }

    /// One RSSI reading of an advertisement received at `true_power`.
    pub fn read_rssi(&mut self, true_power: Dbm) -> Dbm {
        let jitter = rfmath::rng::gaussian(&mut self.rng, self.jitter_db);
        Dbm((true_power.0 + jitter).round().max(self.rssi_floor.0))
    }

    /// Batch of readings for distribution experiments.
    pub fn read_rssi_batch(&mut self, true_power: Dbm, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.read_rssi(true_power).0).collect()
    }

    /// Probability an advertisement is decoded at the given power: BLE's
    /// sensitivity cliff sits near −95 dBm for 1M PHY.
    pub fn decode_probability(&self, rx: Dbm) -> f64 {
        1.0 / (1.0 + (-(rx.0 + 95.0) / 2.0).exp())
    }

    /// Expected advertisements decoded out of `sent` at a fixed power.
    pub fn expected_decoded(&mut self, rx: Dbm, sent: usize) -> usize {
        let p = self.decode_probability(rx);
        (0..sent).filter(|_| self.rng.gen::<f64>() < p).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_cycle_round_robin() {
        let adv = BleAdvertiser::metamotion_r();
        assert_eq!(adv.channel_at(0).0, 37);
        assert_eq!(adv.channel_at(1).0, 38);
        assert_eq!(adv.channel_at(2).0, 39);
        assert_eq!(adv.channel_at(3).0, 37);
    }

    #[test]
    fn channel_frequencies_span_the_band() {
        let lo = Hertz(ADVERTISING_CHANNELS[0].1);
        let hi = Hertz(ADVERTISING_CHANNELS[2].1);
        assert!(hi.0 - lo.0 > 70e6, "channels span most of the ISM band");
    }

    #[test]
    fn rssi_centers_on_truth() {
        let mut c = BleCentral::raspberry_pi3(&SeedSplitter::new(31));
        let batch = c.read_rssi_batch(Dbm(-65.0), 3000);
        let mean = rfmath::stats::mean(&batch);
        assert!((mean + 65.0).abs() < 0.3, "mean = {mean}");
        // BLE jitter is visibly coarser than Wi-Fi's.
        assert!(rfmath::stats::std_dev(&batch) > 1.5);
    }

    #[test]
    fn decode_cliff_sits_near_sensitivity() {
        let c = BleCentral::raspberry_pi3(&SeedSplitter::new(32));
        assert!(c.decode_probability(Dbm(-110.0)) < 0.01);
        assert!(c.decode_probability(Dbm(-80.0)) > 0.99);
        let edge = c.decode_probability(Dbm(-95.0));
        assert!(
            (edge - 0.5).abs() < 0.05,
            "50% point at sensitivity: {edge}"
        );
    }

    #[test]
    fn mismatch_penalty_kills_delivery_at_range() {
        // A 0 dBm advertiser whose link sits at −88 dBm matched drops to
        // −100 dBm mismatched: delivery collapses — the Figure 2(b)
        // story in packet terms.
        let mut c = BleCentral::raspberry_pi3(&SeedSplitter::new(33));
        let matched = c.expected_decoded(Dbm(-88.0), 1000);
        let mismatched = c.expected_decoded(Dbm(-100.0), 1000);
        assert!(matched > 900, "matched link healthy: {matched}/1000");
        assert!(
            mismatched < 150,
            "mismatched link broken: {mismatched}/1000"
        );
    }

    #[test]
    fn advertiser_defaults_match_hardware() {
        let adv = BleAdvertiser::metamotion_r();
        assert_eq!(adv.tx_power_dbm, Dbm(0.0));
        assert!(adv.adv_interval_s > 0.0);
    }
}
