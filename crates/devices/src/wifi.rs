//! Wi-Fi endpoint models: a Netgear N300-class 802.11g AP and an
//! ESP8266-based Arduino station — the low-cost IoT link of Figures 2(a)
//! and 20.
//!
//! The figures are RSSI *distributions*: quantized dB readings jittered
//! by fading and the chip's coarse measurement. The model layers RSSI
//! quantization, reading jitter and saturation on top of a true received
//! power, and maps SNR to 802.11g data rates for throughput estimates.

use rand::rngs::StdRng;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Db, Dbm};

use propagation::noise::NoiseModel;

/// 802.11g data rates and their minimum SNR requirements (dB) — standard
/// receiver sensitivity ladder.
pub const RATE_LADDER: [(f64, f64); 8] = [
    (6.0, 6.0),
    (9.0, 7.8),
    (12.0, 9.0),
    (18.0, 10.8),
    (24.0, 17.0),
    (36.0, 18.8),
    (48.0, 24.0),
    (54.0, 24.6),
];

/// An ESP8266-class Wi-Fi station's RSSI measurement chain.
#[derive(Debug)]
pub struct WifiStation {
    /// RSSI readings are clamped to this floor (chip reports −100 min).
    pub rssi_floor: Dbm,
    /// RSSI readings saturate at this ceiling (≈ −10 dBm).
    pub rssi_ceiling: Dbm,
    /// Standard deviation of per-reading jitter, dB.
    pub jitter_db: f64,
    /// Receiver noise model (20 MHz channel).
    pub noise: NoiseModel,
    rng: StdRng,
}

impl WifiStation {
    /// An ESP8266 station with its characteristically coarse RSSI.
    pub fn esp8266(seed: &SeedSplitter) -> Self {
        Self {
            rssi_floor: Dbm(-100.0),
            rssi_ceiling: Dbm(-10.0),
            jitter_db: 1.2,
            noise: NoiseModel::wifi_20mhz(),
            rng: seed.stream("esp8266-rssi"),
        }
    }

    /// One RSSI reading for a true received power: jittered, rounded to
    /// 1 dB, clamped to the chip's reporting range.
    pub fn read_rssi(&mut self, true_power: Dbm) -> Dbm {
        let jitter = rfmath::rng::gaussian(&mut self.rng, self.jitter_db);
        let raw = true_power.0 + jitter;
        Dbm(raw.round().clamp(self.rssi_floor.0, self.rssi_ceiling.0))
    }

    /// A batch of RSSI readings (for distribution experiments).
    pub fn read_rssi_batch(&mut self, true_power: Dbm, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.read_rssi(true_power).0).collect()
    }

    /// Highest 802.11g rate sustainable at the given received power,
    /// Mbit/s; `None` when even the base rate's SNR is unmet.
    pub fn achievable_rate_mbps(&self, rx: Dbm) -> Option<f64> {
        let snr = self.noise.snr_db(rx).0;
        RATE_LADDER
            .iter()
            .rev()
            .find(|(_, min_snr)| snr >= *min_snr)
            .map(|(rate, _)| *rate)
    }

    /// Frame success probability at the given power: a smooth logistic
    /// around the base-rate threshold (captures the fragile-link regime
    /// the paper's IoT experiments live in).
    pub fn frame_success_probability(&self, rx: Dbm) -> f64 {
        let snr = self.noise.snr_db(rx).0;
        1.0 / (1.0 + (-(snr - 6.0) / 1.5).exp())
    }
}

/// A Netgear N300-class AP: fixed transmit power, beacon cadence.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessPoint {
    /// Transmit power at the antenna port, dBm (100 mW regulatory cap).
    pub tx_power_dbm: Dbm,
    /// Beacon interval, seconds.
    pub beacon_interval_s: f64,
}

impl AccessPoint {
    /// A stock N300 configuration.
    pub fn netgear_n300() -> Self {
        Self {
            tx_power_dbm: Dbm(20.0),
            beacon_interval_s: 0.1024,
        }
    }

    /// Effective throughput of a link to a station given the received
    /// power at the station: rate × frame success.
    pub fn downlink_throughput_mbps(&self, station: &WifiStation, rx: Dbm) -> f64 {
        match station.achievable_rate_mbps(rx) {
            Some(rate) => rate * station.frame_success_probability(rx),
            None => 0.0,
        }
    }
}

/// Link margin between a received power and the SNR needed for a target
/// rate; negative when the rate is unreachable.
pub fn rate_margin_db(noise: &NoiseModel, rx: Dbm, rate_mbps: f64) -> Db {
    let needed = RATE_LADDER
        .iter()
        .find(|(r, _)| *r >= rate_mbps)
        .map(|(_, snr)| *snr)
        .unwrap_or(f64::INFINITY);
    Db(noise.snr_db(rx).0 - needed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station() -> WifiStation {
        WifiStation::esp8266(&SeedSplitter::new(21))
    }

    #[test]
    fn rssi_is_quantized_and_clamped() {
        let mut s = station();
        for _ in 0..100 {
            let r = s.read_rssi(Dbm(-42.3)).0;
            assert_eq!(r, r.round(), "RSSI must be integer dB");
            assert!((-100.0..=-10.0).contains(&r));
        }
        // Saturation at the ceiling.
        assert_eq!(s.read_rssi(Dbm(5.0)).0, -10.0);
        assert_eq!(s.read_rssi(Dbm(-150.0)).0, -100.0);
    }

    #[test]
    fn rssi_distribution_centers_on_truth() {
        let mut s = station();
        let batch = s.read_rssi_batch(Dbm(-45.0), 3000);
        let mean = rfmath::stats::mean(&batch);
        assert!((mean + 45.0).abs() < 0.2, "mean = {mean}");
        let sd = rfmath::stats::std_dev(&batch);
        assert!(sd > 0.8 && sd < 2.0, "sd = {sd}");
    }

    #[test]
    fn rate_ladder_is_monotone() {
        let mut prev_rate = 0.0;
        let mut prev_snr = 0.0;
        for (rate, snr) in RATE_LADDER {
            assert!(rate > prev_rate && snr > prev_snr);
            prev_rate = rate;
            prev_snr = snr;
        }
    }

    #[test]
    fn stronger_signal_buys_higher_rate() {
        let s = station();
        let weak = s.achievable_rate_mbps(Dbm(-90.0));
        let strong = s.achievable_rate_mbps(Dbm(-40.0));
        assert_eq!(strong, Some(54.0));
        assert!(weak.unwrap_or(0.0) < 54.0);
    }

    #[test]
    fn ten_db_gain_moves_multiple_rate_steps() {
        // The system-level meaning of the paper's +10 dB: several MCS
        // steps of headroom for a marginal link.
        let s = station();
        let before = s.achievable_rate_mbps(Dbm(-86.0)).unwrap_or(0.0);
        let after = s.achievable_rate_mbps(Dbm(-76.0)).unwrap_or(0.0);
        assert!(after >= before + 10.0, "{before} → {after} Mbps");
    }

    #[test]
    fn frame_success_is_sigmoid() {
        let s = station();
        assert!(s.frame_success_probability(Dbm(-100.0)) < 0.1);
        assert!(s.frame_success_probability(Dbm(-50.0)) > 0.99);
        // The logistic midpoint sits at SNR = 6 dB, i.e. −88 dBm over a
        // −94 dBm floor.
        let mid = s.frame_success_probability(Dbm(-88.0));
        assert!(mid > 0.3 && mid < 0.7, "transition region: {mid}");
    }

    #[test]
    fn throughput_combines_rate_and_success() {
        let ap = AccessPoint::netgear_n300();
        let s = station();
        assert_eq!(ap.downlink_throughput_mbps(&s, Dbm(-120.0)), 0.0);
        let good = ap.downlink_throughput_mbps(&s, Dbm(-40.0));
        assert!((good - 54.0).abs() < 1.0, "strong link ≈ full rate: {good}");
    }

    #[test]
    fn margin_is_signed() {
        let noise = NoiseModel::wifi_20mhz();
        assert!(rate_margin_db(&noise, Dbm(-50.0), 54.0).0 > 0.0);
        assert!(rate_margin_db(&noise, Dbm(-92.0), 54.0).0 < 0.0);
    }
}
