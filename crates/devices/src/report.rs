//! RSSI report wire format.
//!
//! The endpoint receiver streams its power measurements to the
//! centralized controller (paper Figure 5: "Signal Power Measurements").
//! We give that link a concrete little binary protocol — fixed header,
//! sequence number, timestamp, power field, checksum — encoded with
//! `bytes`, plus a lossy transport wrapper for failure-injection tests.
//!
//! ```text
//!  0       2       3        7              15        17       19
//!  +-------+-------+--------+---------------+---------+--------+
//!  | magic | ver   | seq    | t_micros      | dbm_c   | crc    |
//!  | 2 B   | 1 B   | 4 B    | 8 B           | 2 B     | 2 B    |
//!  +-------+-------+--------+---------------+---------+--------+
//! ```
//!
//! `dbm_c` is the power in centi-dBm (signed), covering ±327 dBm with
//! 0.01 dB resolution — ample for RSSI.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::Rng;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Dbm, Seconds};

/// Protocol magic (ASCII "LM").
pub const MAGIC: u16 = 0x4C4D;

/// Protocol version this codec speaks.
pub const VERSION: u8 = 1;

/// Encoded packet size in bytes.
pub const PACKET_LEN: usize = 19;

/// A power report as carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReportPacket {
    /// Monotone sequence number.
    pub seq: u32,
    /// Receiver timestamp in microseconds.
    pub t_micros: u64,
    /// Measured power, dBm.
    pub power: Dbm,
}

/// Decode failure reasons.
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    /// Fewer bytes than a packet.
    Truncated,
    /// Wrong magic bytes.
    BadMagic(u16),
    /// Unsupported version.
    BadVersion(u8),
    /// Checksum mismatch.
    BadChecksum {
        /// CRC carried in the packet.
        expected: u16,
        /// CRC computed over the payload.
        computed: u16,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "packet truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadChecksum { expected, computed } => {
                write!(f, "checksum mismatch: {expected:#06x} vs {computed:#06x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// CRC-16/CCITT-FALSE over a byte slice.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

impl ReportPacket {
    /// Builds a report from a timestamp and power reading.
    pub fn new(seq: u32, at: Seconds, power: Dbm) -> Self {
        Self {
            seq,
            t_micros: (at.0 * 1e6).round().max(0.0) as u64,
            power,
        }
    }

    /// Receiver timestamp as seconds.
    pub fn timestamp(&self) -> Seconds {
        Seconds(self.t_micros as f64 / 1e6)
    }

    /// Encodes to the 19-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(PACKET_LEN);
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(self.seq);
        buf.put_u64(self.t_micros);
        let centi = (self.power.0 * 100.0).round().clamp(-32768.0, 32767.0) as i16;
        buf.put_i16(centi);
        let crc = crc16(&buf);
        buf.put_u16(crc);
        buf.freeze()
    }

    /// Decodes from wire form, validating magic, version and checksum.
    pub fn decode(mut data: Bytes) -> Result<Self, DecodeError> {
        if data.len() < PACKET_LEN {
            return Err(DecodeError::Truncated);
        }
        let payload = data.slice(0..PACKET_LEN - 2);
        let magic = data.get_u16();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let seq = data.get_u32();
        let t_micros = data.get_u64();
        let centi = data.get_i16();
        let expected = data.get_u16();
        let computed = crc16(&payload);
        if expected != computed {
            return Err(DecodeError::BadChecksum { expected, computed });
        }
        Ok(Self {
            seq,
            t_micros,
            power: Dbm(centi as f64 / 100.0),
        })
    }
}

/// A lossy, corrupting transport between receiver and controller — the
/// failure-injection harness for controller robustness tests.
#[derive(Debug)]
pub struct LossyTransport {
    /// Probability a packet is dropped entirely.
    pub drop_probability: f64,
    /// Probability one byte of a surviving packet is flipped.
    pub corrupt_probability: f64,
    rng: StdRng,
    /// Count of packets dropped so far.
    pub dropped: u64,
    /// Count of packets corrupted so far.
    pub corrupted: u64,
}

impl LossyTransport {
    /// Creates a transport with the given fault rates.
    pub fn new(drop_probability: f64, corrupt_probability: f64, seed: &SeedSplitter) -> Self {
        Self {
            drop_probability,
            corrupt_probability,
            rng: seed.stream("report-transport"),
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Sends a packet through the faulty channel: `None` when dropped,
    /// otherwise the (possibly corrupted) bytes.
    pub fn send(&mut self, packet: &ReportPacket) -> Option<Bytes> {
        if self.rng.gen::<f64>() < self.drop_probability {
            self.dropped += 1;
            return None;
        }
        let mut data = BytesMut::from(&packet.encode()[..]);
        if self.rng.gen::<f64>() < self.corrupt_probability {
            let idx = self.rng.gen_range(0..data.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            data[idx] ^= bit;
            self.corrupted += 1;
        }
        Some(data.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = ReportPacket::new(42, Seconds(1.234567), Dbm(-47.25));
        let decoded = ReportPacket::decode(p.encode()).unwrap();
        assert_eq!(decoded.seq, 42);
        assert_eq!(decoded.t_micros, 1_234_567);
        assert_eq!(decoded.power, Dbm(-47.25));
    }

    #[test]
    fn power_resolution_is_centi_db() {
        let p = ReportPacket::new(0, Seconds(0.0), Dbm(-47.256));
        let decoded = ReportPacket::decode(p.encode()).unwrap();
        assert!((decoded.power.0 + 47.26).abs() < 1e-9);
    }

    #[test]
    fn packet_length_is_fixed() {
        let p = ReportPacket::new(7, Seconds(9.0), Dbm(-60.0));
        assert_eq!(p.encode().len(), PACKET_LEN);
    }

    #[test]
    fn truncated_rejected() {
        let p = ReportPacket::new(7, Seconds(9.0), Dbm(-60.0));
        let bytes = p.encode();
        let short = bytes.slice(0..PACKET_LEN - 3);
        assert_eq!(ReportPacket::decode(short), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let p = ReportPacket::new(7, Seconds(9.0), Dbm(-60.0));
        let mut data = BytesMut::from(&p.encode()[..]);
        data[0] = 0x00;
        match ReportPacket::decode(data.freeze()) {
            Err(DecodeError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_rejected() {
        let p = ReportPacket::new(7, Seconds(9.0), Dbm(-60.0));
        let mut data = BytesMut::from(&p.encode()[..]);
        data[2] = 99;
        match ReportPacket::decode(data.freeze()) {
            Err(DecodeError::BadVersion(99)) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let p = ReportPacket::new(1000, Seconds(5.5), Dbm(-33.5));
        // Flip every byte position in turn (except magic/version, which
        // have their own checks): CRC must catch each.
        for idx in 3..PACKET_LEN {
            let mut data = BytesMut::from(&p.encode()[..]);
            data[idx] ^= 0x10;
            let result = ReportPacket::decode(data.freeze());
            assert!(result.is_err(), "flip at byte {idx} went undetected");
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn lossy_transport_drops_and_corrupts() {
        let seed = SeedSplitter::new(77);
        let mut t = LossyTransport::new(0.3, 0.2, &seed);
        let p = ReportPacket::new(1, Seconds(0.0), Dbm(-50.0));
        let mut delivered = 0;
        let mut decoded_ok = 0;
        let n = 2000;
        for _ in 0..n {
            if let Some(bytes) = t.send(&p) {
                delivered += 1;
                if ReportPacket::decode(bytes).is_ok() {
                    decoded_ok += 1;
                }
            }
        }
        let drop_rate = 1.0 - delivered as f64 / n as f64;
        assert!((drop_rate - 0.3).abs() < 0.05, "drop rate = {drop_rate}");
        // Corrupted survivors mostly fail decode (a flip in the magic
        // region is caught by the magic check; elsewhere by CRC).
        let corrupt_seen = delivered - decoded_ok;
        assert!(
            corrupt_seen as f64 / delivered as f64 > 0.1,
            "corruption must surface as decode failures"
        );
        assert_eq!(t.dropped + delivered, n);
    }

    #[test]
    fn sequence_numbers_detect_loss() {
        // The controller-side recipe: gaps in seq = dropped reports.
        let seed = SeedSplitter::new(78);
        let mut t = LossyTransport::new(0.5, 0.0, &seed);
        let mut received = Vec::new();
        for seq in 0..100u32 {
            let p = ReportPacket::new(seq, Seconds(seq as f64 * 0.01), Dbm(-50.0));
            if let Some(bytes) = t.send(&p) {
                received.push(ReportPacket::decode(bytes).unwrap().seq);
            }
        }
        let mut gaps = 0;
        for w in received.windows(2) {
            if w[1] != w[0] + 1 {
                gaps += 1;
            }
        }
        assert!(gaps > 5, "expected visible sequence gaps, saw {gaps}");
    }
}
