//! Criterion bench for Figure 11: the bias-family efficiency sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::experiments::fig11;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_bias_efficiency");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(15));
    g.sample_size(15);
    g.bench_function("fig11_family", |b| b.iter(|| fig11(41)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
