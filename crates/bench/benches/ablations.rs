//! Ablation benches for the design choices DESIGN.md calls out:
//! one vs two BFS layers (the Eq. 12 bandwidth argument), sweep
//! parameter (N, T) settings, and the 915 MHz scaled design.

use control::sweep::{coarse_to_fine, SweepConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use metasurface::designs::rfid_900mhz;
use metasurface::stack::BiasState;
use rfmath::units::{Hertz, Seconds, Volts};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(25));
    g.sample_size(10);

    // Sweep-parameter ablation: the paper's (N=2, T=5) vs denser probes.
    for (n, t) in [(1usize, 7usize), (2, 5), (3, 4)] {
        g.bench_function(format!("sweep_n{n}_t{t}"), |b| {
            b.iter(|| {
                let cfg = SweepConfig {
                    iterations: n,
                    steps_per_axis: t,
                    v_min: Volts(0.0),
                    v_max: Volts(30.0),
                    switch_period: Seconds(0.02),
                };
                let mut sys = LlamaSystem::new(Scenario::transmissive_default());
                sys.sweep = cfg;
                sys.optimize()
            })
        });
    }

    // Frequency-scaled design: response evaluation at 915 MHz.
    g.bench_function("design_915mhz_response", |b| {
        let d = rfid_900mhz();
        b.iter(|| d.stack.response(Hertz(0.915e9), BiasState::new(6.0, 6.0)))
    });

    // Pure-algorithm sweep without the physics (search overhead alone).
    g.bench_function("sweep_algorithm_only", |b| {
        b.iter(|| {
            coarse_to_fine(&SweepConfig::paper_default(), |p| {
                -((p.vx.0 - 17.0).powi(2) + (p.vy.0 - 8.0).powi(2))
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
