//! Fleet-serving engine benches: the 32-device mixed Wi-Fi/BLE probe
//! grid (shared-plan batch vs naive per-device loop) and end-to-end
//! scheduler runs for every policy (the PR-3 acceptance numbers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llama_core::fleet::{Fleet, FleetEvaluator, Scheduler};
use metasurface::stack::BiasState;
use std::time::Duration;

fn probe_grid() -> Vec<BiasState> {
    let mut biases = Vec::new();
    for ix in 0..7 {
        for iy in 0..7 {
            biases.push(BiasState::new(
                30.0 * ix as f64 / 6.0,
                30.0 * iy as f64 / 6.0,
            ));
        }
    }
    biases
}

fn fleet_32_probe_grid(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(32, 2021);
    let biases = probe_grid();
    let mut g = c.benchmark_group("fleet_32_probe_grid");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("naive_per_device", |b| {
        b.iter(|| fleet.naive_powers_matrix(black_box(&biases)))
    });
    g.bench_function("shared_plan", |b| {
        // Cold cost included: the scheduler compiles the plans once per
        // run, so the timed region does too.
        b.iter(|| FleetEvaluator::new(&fleet).powers_matrix(black_box(&biases)))
    });
    g.finish();
}

fn fleet_32_scheduler_policies(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(32, 2021);
    let mut g = c.benchmark_group("fleet_32_scheduler");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("max_min", |b| b.iter(|| Scheduler::max_min().run(&fleet)));
    g.bench_function("favor_0", |b| b.iter(|| Scheduler::favor(0).run(&fleet)));
    g.bench_function("time_division", |b| {
        b.iter(|| Scheduler::time_division().run(&fleet))
    });
    g.finish();
}

criterion_group!(benches, fleet_32_probe_grid, fleet_32_scheduler_policies);
criterion_main!(benches);
