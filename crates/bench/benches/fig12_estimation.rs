//! Criterion bench for Figure 12: the full turntable estimation
//! procedure (three orientation scans plus a 49-point bias sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::experiments::fig12;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_estimation");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(20));
    g.sample_size(10);
    g.bench_function("fig12_procedure", |b| b.iter(|| fig12(2021)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
