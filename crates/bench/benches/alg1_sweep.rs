//! Criterion bench for Algorithm 1: coarse-to-fine vs full scan against
//! the live link model.

use control::sweep::SweepConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("alg1_sweep");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(30));
    g.sample_size(10);
    g.bench_function("coarse_to_fine_n2_t5", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::transmissive_default());
            sys.optimize()
        })
    });
    g.bench_function("full_scan_31x31", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::transmissive_default());
            sys.sweep = SweepConfig::full_scan();
            sys.optimize()
        })
    });
    g.bench_function("realtime_event_loop", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::transmissive_default());
            sys.optimize_realtime()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
