//! Criterion bench for Figures 8-10: the three design-efficiency sweeps
//! (our "HFSS solve" of the layer cascade).

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::experiments::{fig10, fig8, fig9};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_10_s21_designs");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(15));
    g.sample_size(20);
    g.bench_function("fig8_rogers_reference", |b| b.iter(|| fig8(41)));
    g.bench_function("fig9_fr4_naive", |b| b.iter(|| fig9(41)));
    g.bench_function("fig10_fr4_optimized", |b| b.iter(|| fig10(41)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
