//! Criterion bench for Figures 18/19: one capacity point (optimize at a
//! single transmit power) per environment; the studies run ten of these.

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use propagation::antenna::Antenna;
use propagation::environment::Environment;
use rfmath::units::Watts;
use std::time::Duration;

fn point(antenna: Antenna, environment: Environment) -> f64 {
    let mut sys = LlamaSystem::new(
        Scenario::transmissive_default()
            .with_distance_cm(1000.0)
            .with_antennas(antenna)
            .with_environment(environment)
            .with_tx_power(Watts::from_mw(5.0))
            .with_seed(2021),
    );
    sys.optimize().best_power_dbm.0
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_19_capacity");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("fig18b_point_directional_anechoic", |b| {
        b.iter(|| point(Antenna::directional_panel(), Environment::anechoic()))
    });
    g.bench_function("fig19a_point_omni_laboratory", |b| {
        b.iter(|| point(Antenna::omni_6dbi(), Environment::laboratory(2021)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
