//! Criterion bench for Figure 15: a full (Vx, Vy) power heatmap at one
//! paper distance (the per-panel cost of the 7-distance study).

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_heatmaps");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(20));
    g.sample_size(10);
    g.bench_function("heatmap_13x13_at_36cm", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::transmissive_default().with_distance_cm(36.0));
            sys.power_heatmap(13)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
