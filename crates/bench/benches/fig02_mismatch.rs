//! Criterion bench for Figure 2: RSSI-distribution generation for the
//! Wi-Fi and BLE mismatch studies.

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::experiments::{fig2a, fig2b};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_mismatch");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(20);
    g.bench_function("fig2a_wifi", |b| b.iter(|| fig2a(2021, 500)));
    g.bench_function("fig2b_ble", |b| b.iter(|| fig2b(2021, 500)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
