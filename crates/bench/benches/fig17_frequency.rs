//! Criterion bench for Figure 17: one optimize-vs-baseline point of the
//! frequency study (the full band sweep is 11 of these).

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use rfmath::units::Hertz;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_frequency");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("optimize_at_2_48ghz", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(
                Scenario::transmissive_default()
                    .with_frequency(Hertz::from_ghz(2.48))
                    .with_seed(2021),
            );
            sys.optimize()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
