//! Micro-benches for the batched surface-response engine: single-point
//! evaluation and the 31×31 heatmap grid, naive cascade vs
//! `StackEvaluator` (the PR-2 acceptance numbers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metasurface::designs::fr4_optimized;
use metasurface::evaluator::StackEvaluator;
use metasurface::stack::BiasState;
use rfmath::units::Hertz;
use std::time::Duration;

const F: Hertz = Hertz(2.44e9);

fn volts_31() -> Vec<f64> {
    (0..31).map(|i| i as f64).collect()
}

fn stack_response_single(c: &mut Criterion) {
    let design = fr4_optimized();
    let mut g = c.benchmark_group("stack_response_single");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(2000);
    g.bench_function("naive", |b| {
        b.iter(|| {
            design
                .stack
                .response(F, black_box(BiasState::new(7.0, 13.0)))
        })
    });
    let evaluator = StackEvaluator::new(&design.stack, F);
    g.bench_function("batched", |b| {
        b.iter(|| evaluator.response(black_box(BiasState::new(7.0, 13.0))))
    });
    g.finish();
}

fn heatmap_31x31_naive_vs_batched(c: &mut Criterion) {
    let design = fr4_optimized();
    let volts = volts_31();
    let mut g = c.benchmark_group("heatmap_31x31_naive_vs_batched");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(volts.len() * volts.len());
            for &vy in &volts {
                for &vx in &volts {
                    out.push(design.stack.response(F, BiasState::new(vx, vy)));
                }
            }
            out
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            // One-shot cost included: the plan is compiled inside the
            // timed region, exactly what a cold heatmap call pays.
            StackEvaluator::new(&design.stack, F).eval_grid(&volts, &volts)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    stack_response_single,
    heatmap_31x31_naive_vs_batched
);
criterion_main!(benches);
