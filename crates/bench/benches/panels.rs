//! Panel-array benches: the 4-panel, 32-device probe grids (shared plan
//! caches vs the naive per-panel loops), the end-to-end panel scheduler
//! against single-panel `MaxMin`, and the many-fleet server against
//! serial execution (the PR-4 acceptance numbers).

use control::server::FleetServer;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llama_core::fleet::{Fleet, Scheduler};
use llama_core::panels::{serve_fleets, Assignment, PanelArray, PanelScheduler};
use metasurface::stack::BiasState;
use std::time::Duration;

fn probe_grid() -> Vec<BiasState> {
    let mut biases = Vec::new();
    for ix in 0..7 {
        for iy in 0..7 {
            biases.push(BiasState::new(
                30.0 * ix as f64 / 6.0,
                30.0 * iy as f64 / 6.0,
            ));
        }
    }
    biases
}

fn panel_4x32_probe_grid(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(32, 2021);
    let array = PanelArray::uniform(fleet.design.clone(), 4);
    let assignment = array.assign(&fleet, &Assignment::ByOrientation);
    let biases = probe_grid();
    let mut g = c.benchmark_group("panel_4x32_probe_grid");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("naive_per_panel", |b| {
        b.iter(|| array.naive_panel_matrices(&fleet, &assignment, black_box(&biases)))
    });
    g.bench_function("shared_plan_cache", |b| {
        // Cold cost included: the panel scheduler compiles the shared
        // caches once per run, so the timed region does too.
        b.iter(|| array.batched_panel_matrices(&fleet, &assignment, black_box(&biases)))
    });
    g.finish();
}

fn panel_4x32_scheduler(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(32, 2021);
    let array = PanelArray::uniform(fleet.design.clone(), 4);
    let mut g = c.benchmark_group("panel_4x32_scheduler");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("panel_max_min", |b| {
        b.iter(|| PanelScheduler::max_min().run(&fleet, &array))
    });
    g.bench_function("single_panel_max_min", |b| {
        b.iter(|| Scheduler::max_min().run(&fleet))
    });
    g.finish();
}

fn server_8_fleets(c: &mut Criterion) {
    let fleets: Vec<Fleet> = (0..8u64)
        .map(|s| Fleet::mixed_wifi_ble(8, 3000 + s))
        .collect();
    let scheduler = Scheduler::max_min();
    let server = FleetServer::new(rfmath::par::available_threads().min(8));
    let mut g = c.benchmark_group("server_8_fleets");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| fleets.iter().map(|f| scheduler.run(f)).collect::<Vec<_>>())
    });
    g.bench_function("concurrent", |b| {
        b.iter(|| serve_fleets(&server, &scheduler, black_box(&fleets)))
    });
    g.finish();
}

criterion_group!(
    benches,
    panel_4x32_probe_grid,
    panel_4x32_scheduler,
    server_8_fleets
);
criterion_main!(benches);
