//! Panel-array benches: the 4-panel, 32-device probe grids (shared plan
//! caches vs the naive per-panel loops), the end-to-end panel scheduler
//! against single-panel `MaxMin`, and the many-fleet server against
//! serial execution (the PR-4 acceptance numbers).

use control::server::FleetServer;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llama_core::fleet::{Fleet, Scheduler};
use llama_core::panels::{serve_fleets, Assignment, PanelArray, PanelScheduler};
use metasurface::stack::BiasState;
use std::time::Duration;

fn probe_grid() -> Vec<BiasState> {
    let mut biases = Vec::new();
    for ix in 0..7 {
        for iy in 0..7 {
            biases.push(BiasState::new(
                30.0 * ix as f64 / 6.0,
                30.0 * iy as f64 / 6.0,
            ));
        }
    }
    biases
}

fn panel_4x32_probe_grid(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(32, 2021);
    let array = PanelArray::uniform(fleet.design.clone(), 4);
    let assignment = array.assign(&fleet, &Assignment::ByOrientation);
    let biases = probe_grid();
    let mut g = c.benchmark_group("panel_4x32_probe_grid");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("naive_per_panel", |b| {
        b.iter(|| array.naive_panel_matrices(&fleet, &assignment, black_box(&biases)))
    });
    g.bench_function("shared_plan_cache", |b| {
        // Cold cost included: the panel scheduler compiles the shared
        // caches once per run, so the timed region does too.
        b.iter(|| array.batched_panel_matrices(&fleet, &assignment, black_box(&biases)))
    });
    g.finish();
}

fn panel_4x32_scheduler(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(32, 2021);
    let array = PanelArray::uniform(fleet.design.clone(), 4);
    let mut g = c.benchmark_group("panel_4x32_scheduler");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("panel_max_min", |b| {
        b.iter(|| PanelScheduler::max_min().run(&fleet, &array))
    });
    g.bench_function("single_panel_max_min", |b| {
        b.iter(|| Scheduler::max_min().run(&fleet))
    });
    g.finish();
}

fn server_8_fleets(c: &mut Criterion) {
    let fleets: Vec<Fleet> = (0..8u64)
        .map(|s| Fleet::mixed_wifi_ble(8, 3000 + s))
        .collect();
    let scheduler = Scheduler::max_min();
    let workers = rfmath::par::available_threads().min(8);
    let server = FleetServer::new(workers);
    let mut g = c.benchmark_group("server_8_fleets");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| fleets.iter().map(|f| scheduler.run(f)).collect::<Vec<_>>())
    });
    g.bench_function("concurrent", |b| {
        b.iter(|| serve_fleets(&server, &scheduler, black_box(&fleets)))
    });
    g.finish();

    // Per-thread scaling report: efficiency is wall-clock speedup over
    // the serial loop divided by the worker count; queue wait and steal
    // counts come from the sharded queue's instrumented pass.
    let time_min = |iters: u32, routine: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        routine();
        for _ in 0..iters {
            let t = std::time::Instant::now();
            routine();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let serial_ms = time_min(5, &mut || {
        black_box(fleets.iter().map(|f| scheduler.run(f)).collect::<Vec<_>>());
    });
    let concurrent_ms = time_min(5, &mut || {
        black_box(serve_fleets(&server, &scheduler, &fleets));
    });
    let (_, stats) = server.try_serve_with_stats(fleets.iter().collect(), |_, fleet: &Fleet| {
        scheduler.run(fleet)
    });
    let speedup = serial_ms / concurrent_ms.max(1e-12);
    eprintln!(
        "server_8_fleets/concurrent: {workers} workers x {} shards, speedup {speedup:.2}x, \
         efficiency {:.2}, {} steals, mean queue wait {:.4} ms",
        stats.shards,
        speedup / workers.max(1) as f64,
        stats.steals,
        stats.mean_queue_wait.0 * 1e3,
    );
}

criterion_group!(
    benches,
    panel_4x32_probe_grid,
    panel_4x32_scheduler,
    server_8_fleets
);
criterion_main!(benches);
