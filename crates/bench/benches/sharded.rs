//! PR-8 hot-loop benches under the Criterion harness: the SoA batch
//! kernel vs the per-cell reference fold on a 24×24 probe grid, and the
//! warm mobility tick vs its allocation-churn baseline. These are the
//! two numbers `scripts/bench-criterion` tracks across branches
//! (save a baseline on `main`, compare on the branch, fail on a >10%
//! regression) — keep the group/function IDs stable.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llama_core::fleet::Fleet;
use llama_core::panels::{PanelArray, PanelScheduler};
use llama_core::sim::{DynamicFleet, MobilitySim, SimConfig};
use metasurface::designs::fr4_optimized;
use metasurface::evaluator::StackEvaluator;
use metasurface::stack::BiasState;
use rfmath::units::{Hertz, Seconds};
use std::time::Duration;

const F: Hertz = Hertz(2.44e9);

/// The 24×24 distinct-bias grid from `perf::run_sharded`, mirroring the
/// dedup shape of a real probe sweep.
fn probe_biases() -> Vec<BiasState> {
    let grid = 24usize;
    (0..grid * grid)
        .map(|i| {
            BiasState::new(
                30.0 * (i % grid) as f64 / (grid - 1) as f64,
                30.0 * (i / grid) as f64 / (grid - 1) as f64,
            )
        })
        .collect()
}

fn probe_grid(c: &mut Criterion) {
    let design = fr4_optimized();
    let plan = StackEvaluator::new(&design.stack, F);
    let biases = probe_biases();
    let mut g = c.benchmark_group("probe_grid");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(6));
    g.sample_size(30);
    g.bench_function("reference", |b| {
        b.iter(|| plan.eval_batch_reference(black_box(&biases)))
    });
    g.bench_function("soa", |b| b.iter(|| plan.eval_batch(black_box(&biases))));
    g.finish();
}

fn mobility_tick(c: &mut Criterion) {
    let (devices, ticks, panels) = (8usize, 10usize, 2usize);
    let seed = 2021u64;
    let duration = Seconds(ticks as f64);
    let sim_design = Fleet::mixed_wifi_ble(1, seed).design.clone();
    let array = PanelArray::distributed(sim_design, panels);
    let scheduler = PanelScheduler::max_min();
    let mut g = c.benchmark_group("mobility_tick");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("churn_baseline", |b| {
        b.iter(|| {
            let mut roaming = DynamicFleet::roaming_mixed(devices, seed, duration);
            MobilitySim::new(
                scheduler.clone(),
                SimConfig::default().with_churn_baseline(true),
            )
            .run(black_box(&mut roaming), &array, ticks)
        })
    });
    g.bench_function("warm", |b| {
        b.iter(|| {
            let mut roaming = DynamicFleet::roaming_mixed(devices, seed, duration);
            MobilitySim::new(scheduler.clone(), SimConfig::default()).run(
                black_box(&mut roaming),
                &array,
                ticks,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, probe_grid, mobility_tick);
criterion_main!(benches);
