//! Criterion bench for Figure 16: one optimize-vs-baseline point of the
//! distance study.

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_power_vs_distance");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(15));
    g.sample_size(10);
    g.bench_function("optimize_at_36cm", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::transmissive_default().with_distance_cm(36.0));
            sys.optimize()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
