//! Criterion bench for Figure 20: the IoT link distribution experiment
//! (one Algorithm-1 optimization plus paired RSSI batches per channel
//! realization — 16 realizations per call).

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::experiments::fig20;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_iot");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(20));
    g.sample_size(10);
    g.bench_function("fig20_distributions", |b| b.iter(|| fig20(2021, 500)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
