//! Criterion bench for Table 1: extracting the 7x7 rotation grid from
//! the circuit model and comparing it to the paper's table.

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::experiments::table1;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_rotation");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(15);
    g.bench_function("table1_grid_and_comparison", |b| b.iter(table1));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
