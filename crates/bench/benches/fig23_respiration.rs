//! Criterion bench for Figure 23: one 60 s sensing run (with surface).

use criterion::{criterion_group, criterion_main, Criterion};
use devices::human::HumanTarget;
use llama_core::scenario::Scenario;
use llama_core::sensing::{run_sensing, SensingConfig};
use metasurface::response::Metasurface;
use rfmath::units::{Meters, Watts};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig23_respiration");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(20));
    g.sample_size(10);
    let scenario = Scenario::reflective_default()
        .with_distance_cm(200.0)
        .with_tx_power(Watts::from_mw(5.0))
        .with_seed(2021);
    let human = HumanTarget::resting_adult(Meters(4.2));
    let surface = Metasurface::llama();
    g.bench_function("sensing_60s_with_surface", |b| {
        b.iter(|| run_sensing(&scenario, &human, Some(&surface), &SensingConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
