//! Joint multi-surface benches: the coupled-evaluation hot path
//! (superposed K-panel field vs the zero-coupling short circuit) and
//! the end-to-end joint scheduler against the independent per-panel
//! search on the office-floor zoo room (the PR-9 acceptance numbers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llama_core::fleet::Fleet;
use llama_core::panels::{Assignment, CoupledEvaluator, JointConfig, PanelArray, PanelScheduler};
use llama_core::rooms;
use metasurface::stack::BiasState;
use propagation::coupling::CouplingConfig;
use std::time::Duration;

fn coupled_eval_16x3(c: &mut Criterion) {
    let fleet = Fleet::mixed_wifi_ble(16, 2021);
    let array = PanelArray::distributed(fleet.design.clone(), 3);
    let assignment = array.assign(&fleet, &Assignment::BestReference);
    // A batch of bias vectors per iteration keeps each timed region in
    // the hundreds of microseconds, well clear of timer noise for the
    // 10% baseline gate.
    let probe_set: Vec<Vec<BiasState>> = (0..32)
        .map(|p| {
            (0..3)
                .map(|k| {
                    BiasState::new(
                        (4.0 + 7.0 * k as f64 + 0.9 * p as f64) % 30.0,
                        (25.0 - 6.0 * k as f64 + 1.7 * p as f64) % 30.0,
                    )
                })
                .collect()
        })
        .collect();
    let mut g = c.benchmark_group("coupled_eval_16x3");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    let mut coupled = CoupledEvaluator::new(
        &fleet,
        &array,
        &assignment,
        CouplingConfig::indoor_default(),
    );
    g.bench_function("superposed", |b| {
        b.iter(|| {
            probe_set
                .iter()
                .map(|biases| coupled.powers_dbm(black_box(biases)).len())
                .sum::<usize>()
        })
    });
    let mut home_only =
        CoupledEvaluator::new(&fleet, &array, &assignment, CouplingConfig::disabled());
    g.bench_function("zero_coupling", |b| {
        b.iter(|| {
            probe_set
                .iter()
                .map(|biases| home_only.powers_dbm(black_box(biases)).len())
                .sum::<usize>()
        })
    });
    g.finish();
}

fn joint_office_floor(c: &mut Criterion) {
    let scenario = rooms::build("office-floor", 2021).expect("zoo room exists");
    let fleet = scenario.fleet.fleet().clone();
    let array = scenario.array.clone();
    let mut g = c.benchmark_group("joint_office_floor");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(8));
    g.sample_size(10);
    g.bench_function("independent", |b| {
        b.iter(|| PanelScheduler::max_min().run(&fleet, &array))
    });
    g.bench_function("joint_refined", |b| {
        b.iter(|| {
            PanelScheduler::max_min()
                .with_joint(JointConfig::default())
                .run(&fleet, &array)
        })
    });
    g.finish();
}

criterion_group!(benches, coupled_eval_16x3, joint_office_floor);
criterion_main!(benches);
