//! Criterion bench for Figures 21/22: one reflective heatmap panel and
//! one reflective optimize-vs-baseline point.

use criterion::{criterion_group, criterion_main, Criterion};
use llama_core::scenario::Scenario;
use llama_core::system::LlamaSystem;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig21_22_reflective");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(12));
    g.sample_size(10);
    g.bench_function("fig21_heatmap_13x13_at_36cm", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::reflective_default().with_distance_cm(36.0));
            sys.power_heatmap(13)
        })
    });
    g.bench_function("fig22_optimize_at_36cm", |b| {
        b.iter(|| {
            let mut sys = LlamaSystem::new(Scenario::reflective_default().with_distance_cm(36.0));
            sys.optimize()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
