//! A counting global allocator for debug-assert builds.
//!
//! The PR-8 hot-loop work (arena-rebound [`propagation::link::PreparedLink`]s,
//! scratch-buffer probes, the SoA batch kernel) is only verifiable if the
//! repository can *count* allocations: "allocation-free" claimed in a doc
//! comment regresses silently, a counter asserted in CI does not.
//!
//! In builds with `debug_assertions` the [`CountingAllocator`] is installed
//! as the global allocator: every `alloc`/`alloc_zeroed`/`realloc` bumps a
//! relaxed atomic before deferring to the system allocator. Release builds
//! compile the hook out entirely — the system allocator is used directly
//! and [`enabled`] reports `false`, so perf artifacts stamp
//! `"allocs_per_tick": null` instead of a number measured with counting
//! overhead.
//!
//! The counter is process-global: a measurement is only meaningful when no
//! other thread allocates concurrently (run measuring tests with a filter,
//! as CI does).

// The one crate-sanctioned use of `unsafe`: `GlobalAlloc` is an unsafe
// trait by definition. Everything else in the workspace stays under
// `deny(unsafe_code)`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed since process start (debug-assert builds
/// only; stays zero in release).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocation calls.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(debug_assertions)]
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Whether allocation counting is compiled in (true in debug-assert
/// builds, false in release).
pub fn enabled() -> bool {
    cfg!(debug_assertions)
}

/// Total allocation calls observed so far (0 when counting is compiled
/// out).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result plus the number of allocation calls
/// it made. Only meaningful when [`enabled`] and no other thread
/// allocates concurrently.
pub fn allocs_during<O>(f: impl FnOnce() -> O) -> (O, u64) {
    let before = alloc_count();
    let out = f();
    (out, alloc_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_observes_a_heap_allocation() {
        let (_, n) = allocs_during(|| std::hint::black_box(Vec::<u64>::with_capacity(32)));
        if enabled() {
            assert!(n >= 1, "a fresh Vec allocation must be counted");
        } else {
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn pure_arithmetic_is_allocation_free() {
        let (sum, n) = allocs_during(|| (0..1000u64).sum::<u64>());
        assert_eq!(sum, 499_500);
        if enabled() {
            assert_eq!(n, 0);
        }
    }
}
