//! Chaos harness behind `expts --chaos`: sweeps seeded fault rates over
//! a scenario-zoo room and emits the degradation curve as a
//! machine-checkable JSON artifact.
//!
//! Three gates make the curve trustworthy:
//!
//! * **zero-fault identity** — the room under [`FaultPlan::none`] must
//!   reproduce the fault-free baseline *bitwise*, tick for tick
//!   (allocation, served power, duty, applied biases). If the fault
//!   plumbing perturbs a healthy run by one ULP, the report fails;
//! * **graceful degradation** — at the 5% and 10% fault points
//!   (panel-outage + report-loss + PSU-glitch rates set together, plus
//!   one scripted mid-run outage of panel 0) the room must still serve:
//!   finite worst-device power, mean duty above [`DUTY_FLOOR`], and the
//!   orphaned sub-fleet actually re-homed;
//! * **no panics anywhere** — every point runs the full warm engine;
//!   reaching the report at all is the isolation proof.
//!
//! Higher rates (20%, 30%) are measured and recorded for the curve but
//! not gated — a room three panels dark most ticks is allowed to
//! starve, it just has to do so without crashing.

use std::sync::Arc;

use llama_core::faults::{FaultPlan, FaultWindow, PanelOutage};
use llama_core::rooms;
use llama_core::sim::SimReport;
use llama_core::telemetry::{RecorderHandle, RingRecorder};
use rfmath::units::Seconds;

use crate::perf::stamp_report;

/// Fault rates swept for the degradation curve.
pub const RATES: [f64; 4] = [0.05, 0.10, 0.20, 0.30];

/// Minimum device-weighted mean serving duty the gated (5% and 10%)
/// points must keep. The healthy zoo rooms sit near 0.9; a 0.2 floor
/// means "degraded but clearly alive" with headroom for the scripted
/// outage's re-home cold searches.
pub const DUTY_FLOOR: f64 = 0.2;

/// One measured point of the degradation curve.
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// The shared fault rate of this point (0 = fault-free baseline).
    pub rate: f64,
    /// Device-weighted mean serving duty.
    pub mean_duty: f64,
    /// Mean worst-served device power, dBm.
    pub mean_min_power_dbm: f64,
    /// Panel×tick outages the run degraded through.
    pub outaged_panel_ticks: usize,
    /// Devices re-homed off dark panels.
    pub reassignments: usize,
    /// Probe-report deliveries lost (each billed retry airtime).
    pub reports_lost: usize,
    /// Searches whose every retry was lost (bias held).
    pub reports_exhausted: usize,
    /// PSU settling glitches billed.
    pub psu_glitches: usize,
    /// Hysteresis handoffs (fault re-homes excluded).
    pub handoffs: usize,
}

impl ChaosPoint {
    fn from_sim(rate: f64, report: &SimReport) -> Self {
        Self {
            rate,
            mean_duty: report.mean_duty(),
            mean_min_power_dbm: report.mean_served_min_power_dbm(),
            outaged_panel_ticks: report.total_outaged_panel_ticks(),
            reassignments: report.total_fault_reassignments(),
            reports_lost: report.total_reports_lost(),
            reports_exhausted: report.total_reports_exhausted(),
            psu_glitches: report.total_psu_glitches(),
            handoffs: report.handoffs,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"rate\": {:.2}, \"mean_duty\": {:.6}, \"mean_min_power_dbm\": {:.3}, \
             \"outaged_panel_ticks\": {}, \"reassignments\": {}, \"reports_lost\": {}, \
             \"reports_exhausted\": {}, \"psu_glitches\": {}, \"handoffs\": {}}}",
            self.rate,
            self.mean_duty,
            self.mean_min_power_dbm,
            self.outaged_panel_ticks,
            self.reassignments,
            self.reports_lost,
            self.reports_exhausted,
            self.psu_glitches,
            self.handoffs,
        )
    }
}

/// The full chaos sweep over one room, ready to gate CI on.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Catalog name of the room swept.
    pub room: String,
    /// Root seed of room and fault draws alike.
    pub seed: u64,
    /// The duty floor the gated points were held to.
    pub duty_floor: f64,
    /// Whether the zero-fault run was bit-identical to the baseline.
    pub zero_fault_identical: bool,
    /// The fault-free baseline point.
    pub baseline: ChaosPoint,
    /// One point per swept rate, ascending.
    pub points: Vec<ChaosPoint>,
    /// Aggregated telemetry block from the ring recorder that rode
    /// along with every rate-point run (single-line JSON object). The
    /// baseline and zero-fault identity runs stay untraced so the
    /// bitwise gate compares exactly what it always compared.
    pub telemetry: String,
}

impl ChaosReport {
    /// Sweeps room `name` under `seed` (`Err` on an unknown room,
    /// listing the catalog).
    pub fn run(name: &str, seed: u64) -> Result<Self, String> {
        let build = |seed| {
            rooms::build(name, seed).ok_or_else(|| {
                format!(
                    "unknown scenario {name:?}; known scenarios: {}",
                    rooms::SCENARIOS.join(", ")
                )
            })
        };

        let baseline_report = build(seed)?.run();
        let baseline = ChaosPoint::from_sim(0.0, &baseline_report);

        // Gate 1: the empty plan must be bitwise inert.
        let zero_report = build(seed)?.run_with_faults(FaultPlan::none());
        let zero_fault_identical = bitwise_identical(&baseline_report, &zero_report);

        // The degradation curve. Every nonzero point also scripts a
        // mid-run outage of panel 0, so the orphan re-home machinery is
        // exercised at every rate (stochastic outages alone might miss
        // a short room at the low rates).
        let mut points = Vec::with_capacity(RATES.len());
        let recorder = RecorderHandle::new(Arc::new(RingRecorder::default()));
        for &rate in RATES.iter() {
            let mut plan = FaultPlan::with_rates(seed, rate, rate, rate);
            plan.outages.push(PanelOutage {
                panel: 0,
                window: FaultWindow {
                    start: Seconds(3.0),
                    duration: Seconds(3.0),
                },
            });
            let report = build(seed)?.run_traced(plan, recorder.clone());
            points.push(ChaosPoint::from_sim(rate, &report));
        }

        Ok(Self {
            room: name.to_string(),
            seed,
            duty_floor: DUTY_FLOOR,
            zero_fault_identical,
            baseline,
            points,
            telemetry: recorder.aggregate_json(),
        })
    }

    /// True when every gate holds: zero-fault identity, and the 5%/10%
    /// points still serving (finite power, duty above the floor, the
    /// scripted outage's orphans actually re-homed).
    pub fn passes(&self) -> bool {
        self.zero_fault_identical
            && self
                .points
                .iter()
                .filter(|p| p.rate <= 0.10 + 1e-9)
                .all(|p| {
                    p.mean_duty >= self.duty_floor
                        && p.mean_min_power_dbm.is_finite()
                        && p.reassignments > 0
                })
    }

    /// Human-readable sweep summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "chaos sweep: {room}, seed {seed}\n\
             zero-fault identity: {ident}\n\
             {r:>6} {d:>10} {p:>12} {o:>8} {m:>8} {l:>6} {x:>6} {g:>6}\n",
            room = self.room,
            seed = self.seed,
            ident = if self.zero_fault_identical {
                "bitwise"
            } else {
                "BROKEN"
            },
            r = "rate",
            d = "duty",
            p = "min dBm",
            o = "outages",
            m = "rehomes",
            l = "lost",
            x = "exhst",
            g = "glitch",
        );
        for p in std::iter::once(&self.baseline).chain(&self.points) {
            out.push_str(&format!(
                "{:>6.2} {:>10.3} {:>12.1} {:>8} {:>8} {:>6} {:>6} {:>6}\n",
                p.rate,
                p.mean_duty,
                p.mean_min_power_dbm,
                p.outaged_panel_ticks,
                p.reassignments,
                p.reports_lost,
                p.reports_exhausted,
                p.psu_glitches,
            ));
        }
        out.push_str(&format!(
            "duty floor {:.2} at rates <= 0.10 — {}",
            self.duty_floor,
            if self.passes() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Renders the sweep as a JSON document (hand-assembled; no
    /// external dependencies), stamped with machine topology and the
    /// highest-rate fault configuration swept.
    pub fn to_json(&self) -> String {
        let top = RATES[RATES.len() - 1];
        let mut stamp_plan = FaultPlan::with_rates(self.seed, top, top, top);
        stamp_plan.outages.push(PanelOutage {
            panel: 0,
            window: FaultWindow {
                start: Seconds(3.0),
                duration: Seconds(3.0),
            },
        });
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"chaos_room\": \"{}\",\n", self.room));
        stamp_report(&mut out, &stamp_plan, &self.telemetry);
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"duty_floor\": {:.2},\n", self.duty_floor));
        out.push_str(&format!(
            "  \"zero_fault_identical\": {},\n",
            self.zero_fault_identical
        ));
        out.push_str(&format!("  \"baseline\": {},\n", self.baseline.to_json()));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", p.to_json()));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"pass\": {}\n", self.passes()));
        out.push_str("}\n");
        out
    }
}

/// One-shot joint-mode smoke for the chaos lane: runs the room's
/// joint-vs-independent comparison twice under the same seed and
/// demands (a) bitwise determinism across the two runs and (b) the
/// descent's monotonicity contract (the joint score never ends below
/// the independent starting point). Returns a one-line summary on
/// success, a diagnosis on violation or an unknown room.
pub fn joint_smoke(name: &str, seed: u64) -> Result<String, String> {
    use llama_core::panels::JointConfig;
    let build = || {
        rooms::build(name, seed).ok_or_else(|| {
            format!(
                "unknown scenario {name:?}; known scenarios: {}",
                rooms::SCENARIOS.join(", ")
            )
        })
    };
    let (ind_a, joint_a) = build()?.joint_comparison(JointConfig::default());
    let (_, joint_b) = build()?.joint_comparison(JointConfig::default());
    if !joint_a.same_allocation(&joint_b)
        || joint_a.score.to_bits() != joint_b.score.to_bits()
        || joint_a.probes != joint_b.probes
    {
        return Err(format!(
            "joint search is not deterministic on {name:?}: scores {} vs {}",
            joint_a.score, joint_b.score
        ));
    }
    let stats = joint_a
        .joint
        .ok_or_else(|| "joint run reported no descent stats".to_string())?;
    if stats.lift_db < -1e-9 {
        return Err(format!(
            "joint search regressed below its independent start on {name:?}: {} dB",
            stats.lift_db
        ));
    }
    Ok(format!(
        "joint smoke: {name}, seed {seed} — deterministic; independent {:.1} dBm, \
         joint {:.1} dBm ({:+.3} dB, {} rounds{}, cross energy {:.1}%)",
        ind_a.min_power_dbm(),
        joint_a.min_power_dbm(),
        stats.lift_db,
        stats.rounds,
        if stats.converged { ", converged" } else { "" },
        stats.cross_energy_fraction * 100.0,
    ))
}

/// Bit-for-bit tick comparison of two runs: allocation, served power,
/// throughput, duty and applied biases all compared on raw bits.
fn bitwise_identical(a: &SimReport, b: &SimReport) -> bool {
    a.ticks.len() == b.ticks.len()
        && a.handoffs == b.handoffs
        && a.ticks.iter().zip(&b.ticks).all(|(x, y)| {
            x.outcome.same_allocation(&y.outcome)
                && x.served_min_power_dbm.to_bits() == y.served_min_power_dbm.to_bits()
                && x.served_throughput_bits_hz.to_bits() == y.served_throughput_bits_hz.to_bits()
                && x.applied == y.applied
                && x.panel_duty.len() == y.panel_duty.len()
                && x.panel_duty
                    .iter()
                    .zip(&y.panel_duty)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_room_lists_the_catalog() {
        let err = ChaosReport::run("no-such-room", 1).unwrap_err();
        assert!(err.contains("office-floor"));
        assert!(err.contains("conference-room"));
        assert!(joint_smoke("no-such-room", 1)
            .unwrap_err()
            .contains("office-floor"));
    }

    #[test]
    fn joint_smoke_is_deterministic_and_monotone() {
        let line = joint_smoke("office-floor", crate::SEED).unwrap();
        assert!(line.contains("deterministic"));
        assert!(line.contains("rounds"));
    }

    #[test]
    fn office_floor_survives_the_sweep_and_serializes() {
        let report = ChaosReport::run("office-floor", crate::SEED).unwrap();
        assert!(report.passes(), "{}", report.summary());
        assert!(report.zero_fault_identical);
        // The scripted outage guarantees degradation is visible at
        // every nonzero point.
        for p in &report.points {
            assert!(p.outaged_panel_ticks > 0);
            assert!(p.reassignments > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"chaos_room\": \"office-floor\""));
        assert!(json.contains("\"machine\""));
        assert!(json.contains("\"faults\""));
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"mode\": \"ring\""));
        // The scripted outage means the ring saw real fault traffic:
        // the per-phase tick spans must be populated.
        assert!(json.contains("sim.phase.reopt_ns"));
        assert!(json.contains("\"zero_fault_identical\": true"));
        assert!(json.contains("\"pass\": true"));
        assert!(report.summary().contains("PASS"));
    }
}
