//! `expts --calibrate-fig20`: sweep the link-model calibration knobs
//! against the paper's Figure 20 mode gap.
//!
//! The seed ROADMAP records a fidelity gap: the modeled
//! with/without-surface mode gap comes out near ~5 dB where the paper
//! shows ~10 dB. The candidate culprits are calibration constants, not
//! physics: surface insertion loss (the prototype may lose less than
//! the circuit model), the omni-scatter cross-polar discrimination
//! (purer scatter deepens the no-surface mismatch floor), and the
//! transmissive shadow factor (how hard the panel shadows near-axis
//! clutter). This sweep grids all three, reruns the Figure 20
//! distribution study at each point, and ranks the combinations by
//! distance to the paper's gap.

use llama_core::experiments::fig20_calibrated;
use propagation::link::LinkTuning;

/// The paper's Figure 20 with/without-surface mode gap, dB.
pub const PAPER_MODE_GAP_DB: f64 = 10.0;

/// One evaluated knob combination.
#[derive(Clone, Debug)]
pub struct CalibrationPoint {
    /// Extra surface insertion loss per interaction, dB.
    pub surface_excess_loss_db: f64,
    /// Scatter XPD override, dB (`None` = model default).
    pub scatter_xpd_db: Option<f64>,
    /// Extra transmissive near-axis shadow, dB.
    pub shadow_extra_db: f64,
    /// Resulting Figure 20 mode gap, dB.
    pub mode_gap_db: f64,
}

impl CalibrationPoint {
    /// Distance to the paper's gap, dB.
    pub fn error_db(&self) -> f64 {
        (self.mode_gap_db - PAPER_MODE_GAP_DB).abs()
    }
}

/// Runs the grid sweep with `samples` RSSI draws per distribution and
/// returns every point, best fit first. The loss axis extends below
/// −2 dB (the PR 3 sweep hit its best fits at the old −2 dB edge, so
/// the boundary itself was suspect — the optimum could have been
/// outside the grid).
pub fn sweep(seed: u64, samples: usize) -> Vec<CalibrationPoint> {
    let losses = [-4.0, -3.0, -2.0, -1.0, 0.0, 1.0];
    let xpds = [None, Some(8.0), Some(14.0), Some(20.0)];
    let shadows = [0.0, 6.0, 12.0];
    let mut points = Vec::new();
    for &surface_excess_loss_db in &losses {
        for &scatter_xpd_db in &xpds {
            for &shadow_extra_db in &shadows {
                let tuning = LinkTuning {
                    surface_excess_loss_db,
                    scatter_xpd_db,
                    shadow_extra_db,
                };
                let d = fig20_calibrated(seed, samples, tuning);
                points.push(CalibrationPoint {
                    surface_excess_loss_db,
                    scatter_xpd_db,
                    shadow_extra_db,
                    mode_gap_db: d.mode_gap_db,
                });
            }
        }
    }
    points.sort_by(|a, b| a.error_db().total_cmp(&b.error_db()));
    points
}

/// Renders the sweep as a ranked table with a best-fit verdict.
pub fn report(seed: u64, samples: usize) -> String {
    let points = sweep(seed, samples);
    let mut out = String::from(
        "== Figure 20 calibration sweep (paper mode gap ~10 dB)\n\
         rank  loss(dB)  scatterXPD(dB)  shadow(dB)  mode gap(dB)  |err|\n",
    );
    for (i, p) in points.iter().enumerate().take(12) {
        let xpd = p
            .scatter_xpd_db
            .map(|x| format!("{x:>6.1}"))
            .unwrap_or_else(|| " model".to_string());
        out.push_str(&format!(
            "{:>4}  {:>8.1}  {xpd:>14}  {:>10.1}  {:>12.2}  {:>5.2}\n",
            i + 1,
            p.surface_excess_loss_db,
            p.shadow_extra_db,
            p.mode_gap_db,
            p.error_db()
        ));
    }
    let best = &points[0];
    let default = points
        .iter()
        .find(|p| {
            p.surface_excess_loss_db == 0.0
                && p.scatter_xpd_db.is_none()
                && p.shadow_extra_db == 0.0
        })
        .expect("default point is part of the grid");
    out.push_str(&format!(
        "\nuncalibrated model: {:.2} dB gap ({:.2} dB short of the paper)\n",
        default.mode_gap_db,
        default.error_db()
    ));
    out.push_str(&format!(
        "best fit: loss {:+.1} dB, scatter XPD {}, shadow {:+.1} dB -> {:.2} dB gap (|err| {:.2} dB)\n",
        best.surface_excess_loss_db,
        best.scatter_xpd_db
            .map(|x| format!("{x:.1} dB"))
            .unwrap_or_else(|| "model default".into()),
        best.shadow_extra_db,
        best.mode_gap_db,
        best.error_db()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_point_reproduces_fig20() {
        // The (0, model, 0) grid point must be plain fig20.
        let p = sweep(7, 8);
        let default = p
            .iter()
            .find(|c| {
                c.surface_excess_loss_db == 0.0
                    && c.scatter_xpd_db.is_none()
                    && c.shadow_extra_db == 0.0
            })
            .unwrap();
        let reference = llama_core::experiments::fig20(7, 8);
        assert_eq!(default.mode_gap_db, reference.mode_gap_db);
    }

    #[test]
    fn points_are_ranked_by_error() {
        let p = sweep(7, 4);
        for w in p.windows(2) {
            assert!(w[0].error_db() <= w[1].error_db() + 1e-12);
        }
        // 6 losses (extended below −2 dB) × 4 XPDs × 3 shadows.
        assert_eq!(p.len(), 6 * 4 * 3);
    }
}
