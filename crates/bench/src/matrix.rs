//! `expts --matrix` — the many-fleet serving matrix.
//!
//! Runs the cross product of `--fleets × --devices × --threads ×
//! --shards` (each a comma-separated list) through the sharded
//! work-stealing [`FleetServer`], recording wall-clock, throughput,
//! speedup over a serial baseline, steals and queue wait for every
//! cell, and renders the same table as markdown, CSV and JSON — one
//! run, three artifacts, so sweep results can be pasted into a PR
//! description, loaded into a spreadsheet, or diffed in CI without
//! re-measuring.

use std::collections::HashMap;

use control::server::FleetServer;
use llama_core::fleet::{Fleet, Scheduler};
use llama_core::panels::serve_fleets;

use crate::perf::{allocs_json, machine_json};

/// Base seed for the matrix fleets (offset per fleet index so the jobs
/// are distinct but reproducible).
const MATRIX_SEED: u64 = 7000;

/// The four swept axes. Empty lists are rejected at parse time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixAxes {
    /// Concurrent fleets per serve call.
    pub fleets: Vec<usize>,
    /// Devices per fleet.
    pub devices: Vec<usize>,
    /// Worker threads in the pool.
    pub threads: Vec<usize>,
    /// Shard deques jobs are hashed across.
    pub shards: Vec<usize>,
}

impl MatrixAxes {
    /// The default sweep: one fleet-size point, one device point, a
    /// 1-vs-all-cores thread axis and a 1-vs-4 shard axis — small
    /// enough to run as a smoke, wide enough to show the scaling shape.
    pub fn default_axes() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut threads = vec![1, cores];
        threads.dedup();
        Self {
            fleets: vec![8],
            devices: vec![8],
            threads,
            shards: vec![1, 4],
        }
    }

    /// Parses one comma-separated axis list (`"1,2,8"`); rejects empty
    /// lists, zeros and malformed entries.
    pub fn parse_list(flag: &str, raw: &str) -> Result<Vec<usize>, String> {
        let mut out = Vec::new();
        for part in raw.split(',') {
            match part.trim().parse::<usize>() {
                Ok(n) if n > 0 => out.push(n),
                _ => {
                    return Err(format!(
                        "{flag} takes a comma-separated list of positive integers; \
                         got {raw:?}"
                    ))
                }
            }
        }
        if out.is_empty() {
            return Err(format!("{flag} list is empty"));
        }
        Ok(out)
    }

    /// Total cells in the cross product.
    pub fn cells(&self) -> usize {
        self.fleets.len() * self.devices.len() * self.threads.len() * self.shards.len()
    }
}

/// One measured cell of the cross product.
#[derive(Clone, Copy, Debug)]
pub struct MatrixCell {
    /// Concurrent fleets served.
    pub fleets: usize,
    /// Devices per fleet.
    pub devices: usize,
    /// Worker threads.
    pub threads: usize,
    /// Shard deques.
    pub shards: usize,
    /// Mean wall-clock per serve, ms.
    pub mean_ms: f64,
    /// Best-of-N wall-clock per serve, ms.
    pub min_ms: f64,
    /// Fleets served per second at the best-of-N time.
    pub fleets_per_sec: f64,
    /// Serial / concurrent best-of-N ratio for this (fleets, devices)
    /// workload.
    pub speedup_vs_serial: f64,
    /// Cross-shard steals during the instrumented pass.
    pub steals: usize,
    /// Mean stage-to-pop queue wait per job, ms.
    pub mean_queue_wait_ms: f64,
}

/// The assembled sweep.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Whether the reduced quick-mode iteration budget was used.
    pub quick: bool,
    /// The swept axes.
    pub axes: MatrixAxes,
    /// One row per cross-product cell, in axis order.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// Measures every cell of `axes`. Serial baselines are measured
    /// once per distinct `(fleets, devices)` workload and shared across
    /// the thread/shard cells.
    pub fn run(axes: MatrixAxes, quick: bool) -> Self {
        let iters = if quick { 2 } else { 4 };
        let scheduler = Scheduler::max_min();
        let mut serial_mins: HashMap<(usize, usize), f64> = HashMap::new();
        let mut cells = Vec::with_capacity(axes.cells());
        for &fleets_n in &axes.fleets {
            for &devices_n in &axes.devices {
                let fleets: Vec<Fleet> = (0..fleets_n as u64)
                    .map(|s| Fleet::mixed_wifi_ble(devices_n, MATRIX_SEED + s))
                    .collect();
                let serial_min = *serial_mins.entry((fleets_n, devices_n)).or_insert_with(|| {
                    time_min_ms(iters, || {
                        fleets.iter().map(|f| scheduler.run(f)).collect::<Vec<_>>()
                    })
                    .1
                });
                for &threads in &axes.threads {
                    for &shards in &axes.shards {
                        let server = FleetServer::new(threads).with_shards(shards);
                        let (mean_ms, min_ms) =
                            time_min_ms(iters, || serve_fleets(&server, &scheduler, &fleets));
                        let (_, stats) = server
                            .try_serve_with_stats(fleets.iter().collect(), |_, f: &Fleet| {
                                scheduler.run(f)
                            });
                        cells.push(MatrixCell {
                            fleets: fleets_n,
                            devices: devices_n,
                            threads,
                            shards,
                            mean_ms,
                            min_ms,
                            fleets_per_sec: fleets_n as f64 / (min_ms / 1e3).max(1e-12),
                            speedup_vs_serial: serial_min / min_ms.max(1e-12),
                            steals: stats.steals,
                            mean_queue_wait_ms: stats.mean_queue_wait.0 * 1e3,
                        });
                    }
                }
            }
        }
        Self { quick, axes, cells }
    }

    /// True when every cell measured a finite, positive wall-clock.
    pub fn passes(&self) -> bool {
        !self.cells.is_empty()
            && self
                .cells
                .iter()
                .all(|c| c.min_ms.is_finite() && c.min_ms > 0.0)
    }

    /// The markdown table (also the console summary).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| fleets | devices | threads | shards | mean ms | min ms | fleets/s \
             | speedup | steals | queue wait ms |\n\
             |---|---|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.3} | {:.1} | {:.2} | {} | {:.4} |\n",
                c.fleets,
                c.devices,
                c.threads,
                c.shards,
                c.mean_ms,
                c.min_ms,
                c.fleets_per_sec,
                c.speedup_vs_serial,
                c.steals,
                c.mean_queue_wait_ms
            ));
        }
        out
    }

    /// The CSV table (same columns as the markdown).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "fleets,devices,threads,shards,mean_ms,min_ms,fleets_per_sec,\
             speedup_vs_serial,steals,mean_queue_wait_ms\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{:.3},{:.4},{},{:.6}\n",
                c.fleets,
                c.devices,
                c.threads,
                c.shards,
                c.mean_ms,
                c.min_ms,
                c.fleets_per_sec,
                c.speedup_vs_serial,
                c.steals,
                c.mean_queue_wait_ms
            ));
        }
        out
    }

    /// The JSON document (hand-assembled, machine/alloc stamped like
    /// every bench artifact).
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 8,\n");
        out.push_str(&machine_json());
        out.push_str(&allocs_json());
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"axes\": {{\"fleets\": [{}], \"devices\": [{}], \"threads\": [{}], \
             \"shards\": [{}]}},\n",
            list(&self.axes.fleets),
            list(&self.axes.devices),
            list(&self.axes.threads),
            list(&self.axes.shards)
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"fleets\": {}, \"devices\": {}, \"threads\": {}, \"shards\": {}, \
                 \"mean_ms\": {:.6}, \"min_ms\": {:.6}, \"fleets_per_sec\": {:.3}, \
                 \"speedup_vs_serial\": {:.4}, \"steals\": {}, \
                 \"mean_queue_wait_ms\": {:.6}}}{comma}\n",
                c.fleets,
                c.devices,
                c.threads,
                c.shards,
                c.mean_ms,
                c.min_ms,
                c.fleets_per_sec,
                c.speedup_vs_serial,
                c.steals,
                c.mean_queue_wait_ms
            ));
        }
        out.push_str(&format!("  ],\n  \"pass\": {}\n}}\n", self.passes()));
        out
    }
}

/// Local mean/min timer (mirrors the perf harness: one untimed warm-up,
/// then `iters` timed runs).
fn time_min_ms<O>(iters: u64, mut routine: impl FnMut() -> O) -> (f64, f64) {
    std::hint::black_box(routine());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let started = std::time::Instant::now();
        std::hint::black_box(routine());
        let ms = started.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
    }
    (total / iters as f64, min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_list_accepts_commas_and_rejects_junk() {
        assert_eq!(
            MatrixAxes::parse_list("--threads", "1,2,8").unwrap(),
            vec![1, 2, 8]
        );
        assert_eq!(MatrixAxes::parse_list("--shards", " 4 ").unwrap(), vec![4]);
        assert!(MatrixAxes::parse_list("--fleets", "").is_err());
        assert!(MatrixAxes::parse_list("--fleets", "2,0").is_err());
        assert!(MatrixAxes::parse_list("--devices", "two").is_err());
    }

    #[test]
    fn tiny_matrix_measures_every_cell_in_all_three_formats() {
        let axes = MatrixAxes {
            fleets: vec![2],
            devices: vec![2],
            threads: vec![1, 2],
            shards: vec![1, 2],
        };
        assert_eq!(axes.cells(), 4);
        let report = MatrixReport::run(axes, true);
        assert_eq!(report.cells.len(), 4);
        assert!(report.passes());
        let md = report.to_markdown();
        assert_eq!(md.lines().count(), 2 + 4);
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("fleets,devices,threads,shards"));
        let json = report.to_json();
        assert!(json.contains("\"axes\""));
        assert!(json.contains("\"threads\": [1, 2]"));
        assert!(json.contains("\"allocs_per_tick\""));
        assert!(json.contains("\"pass\": true"));
    }
}
