//! `expts --matrix` — the many-fleet serving matrix.
//!
//! Runs the cross product of `--rooms × --policy × --fleets × --devices
//! × --threads × --shards` (each a comma-separated list) through the
//! sharded work-stealing [`FleetServer`], recording wall-clock,
//! throughput, speedup over a serial baseline, steals, queue wait *and*
//! the served MaxMin headline (worst device power across the cell's
//! jobs — the figure the legacy `--panels` report carried as its
//! single-shape summary) for every cell, and renders the same table as
//! markdown, CSV and JSON — one run, three artifacts, so sweep results
//! can be pasted into a PR description, loaded into a spreadsheet, or
//! diffed in CI without re-measuring.
//!
//! The `--rooms` axis accepts scenario-zoo names (the cell serves
//! copies of the room's t = 0 fleet over the room's mounted panel
//! array; the `--devices` axis is reported as the room's own device
//! count) plus the `synthetic` pseudo-room (the historical
//! `mixed_wifi_ble` line fleet on a distributed two-panel array). The
//! `--policy` axis selects the per-panel scheduling objective:
//! `maxmin`, `favor` (device 0 favored) or `timedivision`.

use control::server::FleetServer;
use llama_core::fleet::{Fleet, Scheduler};
use llama_core::panels::{serve_panel_fleets, PanelArray, PanelScheduler};
use llama_core::rooms;

use crate::perf::stamp_report;

/// Base seed for the matrix fleets (offset per fleet index so the jobs
/// are distinct but reproducible).
const MATRIX_SEED: u64 = 7000;

/// The `--rooms` pseudo-entry selecting the synthetic line fleet.
pub const SYNTHETIC_ROOM: &str = "synthetic";

/// The names the `--policy` axis accepts.
pub const POLICIES: [&str; 3] = ["maxmin", "favor", "timedivision"];

/// The six swept axes. Empty lists are rejected at parse time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixAxes {
    /// Workload rooms: zoo names plus [`SYNTHETIC_ROOM`].
    pub rooms: Vec<String>,
    /// Scheduling policies (see [`POLICIES`]).
    pub policies: Vec<String>,
    /// Concurrent fleets per serve call.
    pub fleets: Vec<usize>,
    /// Devices per fleet (synthetic room only; zoo rooms bring their
    /// own populations).
    pub devices: Vec<usize>,
    /// Worker threads in the pool.
    pub threads: Vec<usize>,
    /// Shard deques jobs are hashed across.
    pub shards: Vec<usize>,
}

impl MatrixAxes {
    /// The default sweep: the synthetic workload under max-min, one
    /// fleet-size point, one device point, a 1-vs-all-cores thread axis
    /// and a 1-vs-4 shard axis — small enough to run as a smoke, wide
    /// enough to show the scaling shape.
    pub fn default_axes() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut threads = vec![1, cores];
        threads.dedup();
        Self {
            rooms: vec![SYNTHETIC_ROOM.to_string()],
            policies: vec!["maxmin".to_string()],
            fleets: vec![8],
            devices: vec![8],
            threads,
            shards: vec![1, 4],
        }
    }

    /// Parses one comma-separated axis list (`"1,2,8"`); rejects empty
    /// lists, zeros and malformed entries.
    pub fn parse_list(flag: &str, raw: &str) -> Result<Vec<usize>, String> {
        let mut out = Vec::new();
        for part in raw.split(',') {
            match part.trim().parse::<usize>() {
                Ok(n) if n > 0 => out.push(n),
                _ => {
                    return Err(format!(
                        "{flag} takes a comma-separated list of positive integers; \
                         got {raw:?}"
                    ))
                }
            }
        }
        if out.is_empty() {
            return Err(format!("{flag} list is empty"));
        }
        Ok(out)
    }

    /// Parses a comma-separated name list validated against `allowed`.
    pub fn parse_names(flag: &str, raw: &str, allowed: &[&str]) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        for part in raw.split(',') {
            let name = part.trim();
            if !allowed.contains(&name) {
                return Err(format!(
                    "{flag} got unknown name {name:?}; known: {}",
                    allowed.join(", ")
                ));
            }
            out.push(name.to_string());
        }
        if out.is_empty() {
            return Err(format!("{flag} list is empty"));
        }
        Ok(out)
    }

    /// The names the `--rooms` axis accepts.
    pub fn known_rooms() -> Vec<&'static str> {
        let mut rooms: Vec<&'static str> = vec![SYNTHETIC_ROOM];
        rooms.extend(rooms::SCENARIOS);
        rooms
    }

    /// Total cells in the cross product.
    pub fn cells(&self) -> usize {
        self.rooms.len()
            * self.policies.len()
            * self.fleets.len()
            * self.devices.len()
            * self.threads.len()
            * self.shards.len()
    }
}

/// One measured cell of the cross product.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Workload room (`synthetic` or a zoo name).
    pub room: String,
    /// Scheduling policy.
    pub policy: String,
    /// Concurrent fleets served.
    pub fleets: usize,
    /// Devices per fleet (a zoo room reports its own population).
    pub devices: usize,
    /// Worker threads.
    pub threads: usize,
    /// Shard deques.
    pub shards: usize,
    /// Mean wall-clock per serve, ms.
    pub mean_ms: f64,
    /// Best-of-N wall-clock per serve, ms.
    pub min_ms: f64,
    /// Fleets served per second at the best-of-N time.
    pub fleets_per_sec: f64,
    /// Serial / concurrent best-of-N ratio for this workload.
    pub speedup_vs_serial: f64,
    /// Worst served device power across the cell's jobs, dBm — the
    /// legacy `--panels` single-shape headline, folded per cell.
    pub min_power_dbm: f64,
    /// Cross-shard steals during the instrumented pass.
    pub steals: usize,
    /// Mean stage-to-pop queue wait per job, ms.
    pub mean_queue_wait_ms: f64,
}

/// The assembled sweep.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Whether the reduced quick-mode iteration budget was used.
    pub quick: bool,
    /// The swept axes.
    pub axes: MatrixAxes,
    /// One row per cross-product cell, in axis order.
    pub cells: Vec<MatrixCell>,
    /// Aggregated telemetry block from the ring recorder attached to
    /// every cell's stats pass (single-line JSON object). Timed passes
    /// stay recorder-free so the speedup columns are unperturbed.
    pub telemetry: String,
}

/// Builds the scheduler for one `--policy` name.
fn scheduler_for(policy: &str) -> PanelScheduler {
    match policy {
        "favor" => PanelScheduler {
            base: Scheduler::favor(0),
            ..PanelScheduler::max_min()
        },
        "timedivision" => PanelScheduler::time_division(),
        _ => PanelScheduler::max_min(),
    }
}

/// Builds one cell workload: `fleets_n` jobs of `(fleet, array)`.
fn jobs_for(room: &str, fleets_n: usize, devices_n: usize) -> Vec<(Fleet, PanelArray)> {
    if room == SYNTHETIC_ROOM {
        (0..fleets_n as u64)
            .map(|s| {
                let fleet = Fleet::mixed_wifi_ble(devices_n, MATRIX_SEED + s);
                let array = PanelArray::distributed(fleet.design.clone(), 2);
                (fleet, array)
            })
            .collect()
    } else {
        let scenario = rooms::build(room, MATRIX_SEED).expect("axis names validated at parse time");
        let fleet = scenario.fleet.fleet().clone();
        let array = scenario.array;
        (0..fleets_n)
            .map(|_| (fleet.clone(), array.clone()))
            .collect()
    }
}

impl MatrixReport {
    /// Measures every cell of `axes`. Serial baselines (and the served
    /// min-power headline) are measured once per distinct workload and
    /// shared across that workload's thread/shard cells.
    pub fn run(axes: MatrixAxes, quick: bool) -> Self {
        let iters = if quick { 2 } else { 4 };
        let mut cells = Vec::with_capacity(axes.cells());
        let recorder = llama_core::telemetry::RecorderHandle::new(std::sync::Arc::new(
            llama_core::telemetry::RingRecorder::default(),
        ));
        for room in &axes.rooms {
            for policy in &axes.policies {
                let scheduler = scheduler_for(policy);
                for &fleets_n in &axes.fleets {
                    for &devices_n in &axes.devices {
                        let jobs = jobs_for(room, fleets_n, devices_n);
                        let reported_devices = jobs
                            .first()
                            .map(|(fleet, _)| fleet.len())
                            .unwrap_or(devices_n);
                        let (_, serial_min) = time_min_ms(iters, || {
                            jobs.iter()
                                .map(|(f, a)| scheduler.run(f, a))
                                .collect::<Vec<_>>()
                        });
                        // The folded --panels headline: worst served
                        // device power across the cell's jobs (server
                        // results are bit-identical to serial runs).
                        let min_power_dbm = jobs
                            .iter()
                            .map(|(f, a)| scheduler.run(f, a).min_power_dbm())
                            .fold(f64::INFINITY, f64::min);
                        for &threads in &axes.threads {
                            for &shards in &axes.shards {
                                let server = FleetServer::new(threads).with_shards(shards);
                                let (mean_ms, min_ms) = time_min_ms(iters, || {
                                    serve_panel_fleets(&server, &scheduler, &jobs)
                                });
                                let server = server.with_recorder(recorder.clone());
                                let (_, stats) = server.try_serve_with_stats(
                                    jobs.iter().collect(),
                                    |_, (f, a): &(Fleet, PanelArray)| scheduler.run(f, a),
                                );
                                cells.push(MatrixCell {
                                    room: room.clone(),
                                    policy: policy.clone(),
                                    fleets: fleets_n,
                                    devices: reported_devices,
                                    threads,
                                    shards,
                                    mean_ms,
                                    min_ms,
                                    fleets_per_sec: fleets_n as f64 / (min_ms / 1e3).max(1e-12),
                                    speedup_vs_serial: serial_min / min_ms.max(1e-12),
                                    min_power_dbm,
                                    steals: stats.steals,
                                    mean_queue_wait_ms: stats.mean_queue_wait.0 * 1e3,
                                });
                            }
                        }
                    }
                }
            }
        }
        Self {
            quick,
            axes,
            cells,
            telemetry: recorder.aggregate_json(),
        }
    }

    /// True when every cell measured a finite, positive wall-clock and
    /// a finite served min power.
    pub fn passes(&self) -> bool {
        !self.cells.is_empty()
            && self
                .cells
                .iter()
                .all(|c| c.min_ms.is_finite() && c.min_ms > 0.0 && c.min_power_dbm.is_finite())
    }

    /// The markdown table (also the console summary).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| room | policy | fleets | devices | threads | shards | mean ms | min ms \
             | fleets/s | speedup | min dBm | steals | queue wait ms |\n\
             |---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.1} | {:.2} | {:.2} | {} \
                 | {:.4} |\n",
                c.room,
                c.policy,
                c.fleets,
                c.devices,
                c.threads,
                c.shards,
                c.mean_ms,
                c.min_ms,
                c.fleets_per_sec,
                c.speedup_vs_serial,
                c.min_power_dbm,
                c.steals,
                c.mean_queue_wait_ms
            ));
        }
        out
    }

    /// The CSV table (same columns as the markdown).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "room,policy,fleets,devices,threads,shards,mean_ms,min_ms,fleets_per_sec,\
             speedup_vs_serial,min_power_dbm,steals,mean_queue_wait_ms\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6},{:.6},{:.3},{:.4},{:.4},{},{:.6}\n",
                c.room,
                c.policy,
                c.fleets,
                c.devices,
                c.threads,
                c.shards,
                c.mean_ms,
                c.min_ms,
                c.fleets_per_sec,
                c.speedup_vs_serial,
                c.min_power_dbm,
                c.steals,
                c.mean_queue_wait_ms
            ));
        }
        out
    }

    /// The JSON document (hand-assembled, machine/alloc stamped like
    /// every bench artifact).
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let names = |v: &[String]| {
            v.iter()
                .map(|n| format!("{n:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 9,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"axes\": {{\"rooms\": [{}], \"policies\": [{}], \"fleets\": [{}], \
             \"devices\": [{}], \"threads\": [{}], \"shards\": [{}]}},\n",
            names(&self.axes.rooms),
            names(&self.axes.policies),
            list(&self.axes.fleets),
            list(&self.axes.devices),
            list(&self.axes.threads),
            list(&self.axes.shards)
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"room\": {:?}, \"policy\": {:?}, \"fleets\": {}, \"devices\": {}, \
                 \"threads\": {}, \"shards\": {}, \"mean_ms\": {:.6}, \"min_ms\": {:.6}, \
                 \"fleets_per_sec\": {:.3}, \"speedup_vs_serial\": {:.4}, \
                 \"min_power_dbm\": {:.4}, \"steals\": {}, \
                 \"mean_queue_wait_ms\": {:.6}}}{comma}\n",
                c.room,
                c.policy,
                c.fleets,
                c.devices,
                c.threads,
                c.shards,
                c.mean_ms,
                c.min_ms,
                c.fleets_per_sec,
                c.speedup_vs_serial,
                c.min_power_dbm,
                c.steals,
                c.mean_queue_wait_ms
            ));
        }
        out.push_str(&format!("  ],\n  \"pass\": {}\n}}\n", self.passes()));
        out
    }
}

/// Local mean/min timer (mirrors the perf harness: one untimed warm-up,
/// then `iters` timed runs).
fn time_min_ms<O>(iters: u64, mut routine: impl FnMut() -> O) -> (f64, f64) {
    std::hint::black_box(routine());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let started = std::time::Instant::now();
        std::hint::black_box(routine());
        let ms = started.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
    }
    (total / iters as f64, min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_list_accepts_commas_and_rejects_junk() {
        assert_eq!(
            MatrixAxes::parse_list("--threads", "1,2,8").unwrap(),
            vec![1, 2, 8]
        );
        assert_eq!(MatrixAxes::parse_list("--shards", " 4 ").unwrap(), vec![4]);
        assert!(MatrixAxes::parse_list("--fleets", "").is_err());
        assert!(MatrixAxes::parse_list("--fleets", "2,0").is_err());
        assert!(MatrixAxes::parse_list("--devices", "two").is_err());
    }

    #[test]
    fn parse_names_validates_against_the_catalog() {
        let rooms = MatrixAxes::known_rooms();
        assert_eq!(
            MatrixAxes::parse_names("--rooms", "synthetic, office-floor", &rooms).unwrap(),
            vec!["synthetic".to_string(), "office-floor".to_string()]
        );
        assert!(MatrixAxes::parse_names("--rooms", "atrium", &rooms).is_err());
        assert_eq!(
            MatrixAxes::parse_names("--policy", "maxmin,favor", &POLICIES).unwrap(),
            vec!["maxmin".to_string(), "favor".to_string()]
        );
        assert!(MatrixAxes::parse_names("--policy", "fairness", &POLICIES).is_err());
    }

    #[test]
    fn tiny_matrix_measures_every_cell_in_all_three_formats() {
        let axes = MatrixAxes {
            fleets: vec![2],
            devices: vec![2],
            threads: vec![1, 2],
            shards: vec![1, 2],
            ..MatrixAxes::default_axes()
        };
        assert_eq!(axes.cells(), 4);
        let report = MatrixReport::run(axes, true);
        assert_eq!(report.cells.len(), 4);
        assert!(report.passes());
        let md = report.to_markdown();
        assert_eq!(md.lines().count(), 2 + 4);
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("room,policy,fleets,devices,threads,shards"));
        let json = report.to_json();
        assert!(json.contains("\"axes\""));
        assert!(json.contains("\"threads\": [1, 2]"));
        assert!(json.contains("\"allocs_per_tick\""));
        assert!(json.contains("\"pass\": true"));
    }

    #[test]
    fn policy_and_room_axes_multiply_the_cross_product() {
        // One zoo room under two policies: 2 rooms-cells × 2 policies,
        // single-point remaining axes. Zoo cells report the room's own
        // device count and a finite served min power (the folded
        // --panels headline).
        let axes = MatrixAxes {
            rooms: vec![SYNTHETIC_ROOM.to_string(), "conference-room".to_string()],
            policies: vec!["maxmin".to_string(), "favor".to_string()],
            fleets: vec![2],
            devices: vec![2],
            threads: vec![1],
            shards: vec![1],
        };
        assert_eq!(axes.cells(), 4);
        let report = MatrixReport::run(axes, true);
        assert_eq!(report.cells.len(), 4);
        assert!(report.passes());
        let zoo: Vec<&MatrixCell> = report
            .cells
            .iter()
            .filter(|c| c.room == "conference-room")
            .collect();
        assert_eq!(zoo.len(), 2);
        for cell in zoo {
            assert_eq!(cell.devices, 8, "the room brings its own population");
            assert!(cell.min_power_dbm.is_finite());
        }
        assert!(report.to_csv().contains("conference-room,favor"));
        assert!(report
            .to_json()
            .contains("\"policies\": [\"maxmin\", \"favor\"]"));
    }
}
