//! Self-contained timing harness behind `expts --bench-json`: measures
//! the batched surface-response engine against the naive per-point path
//! and emits a machine-readable summary (`BENCH_PR2.json`) so the
//! repository's perf trajectory accumulates run over run.
//!
//! The harness is deliberately dependency-free (wall-clock means over a
//! fixed warm-up + sample budget, like the Criterion shim) and doubles
//! as a CI smoke: [`PerfReport::passes`] fails loudly when the batched
//! engine stops beating the naive path by a healthy margin.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use control::server::FleetServer;
use llama_core::fleet::{Fleet, FleetEvaluator, Scheduler};
use llama_core::panels::{serve_fleets, PanelArray, PanelScheduler};
use llama_core::scenario::Scenario;
use llama_core::sim::{DynamicFleet, HandoffPolicy, MobilitySim, SimConfig};
use llama_core::system::LlamaSystem;
use metasurface::designs::fr4_optimized;
use metasurface::evaluator::StackEvaluator;
use metasurface::response::SurfaceResponse;
use metasurface::stack::BiasState;
use propagation::link::PreparedLink;
use rfmath::telemetry::{null_block_json, RecorderHandle, RingRecorder};
use rfmath::units::Hertz;
use rfmath::units::Seconds;

use crate::alloc_counter;

/// Band-center frequency every workload runs at.
const F: Hertz = Hertz(2.44e9);

/// Minimum naive-vs-batched speedup on the 31×31 heatmap before the
/// smoke fails (the PR acceptance bar is 5×; the floor leaves headroom
/// for noisy shared CI machines).
const SPEEDUP_FLOOR: f64 = 3.0;

/// Machine topology stamped into every bench artifact: how many
/// logical cores the host exposes and how many worker threads the
/// parallel runtime actually uses. Single-core artifacts (like a 0.99×
/// parallel "speedup" measured on a one-core runner) are then visible
/// in the JSON instead of being silently committed.
pub fn machine_json() -> String {
    format!(
        "  \"machine\": {{\"logical_cores\": {}, \"threads_used\": {}}},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rfmath::par::available_threads()
    )
}

/// The active fault configuration stamped into every bench and scenario
/// artifact: seed, stochastic rates, scripted-fault counts and the
/// retry budget. Fault-free artifacts carry the all-zero stamp, so a
/// number measured under injected faults can never be mistaken for a
/// healthy-hardware baseline (or vice versa).
pub fn faults_json(plan: &llama_core::faults::FaultPlan) -> String {
    format!(
        "  \"faults\": {{\"seed\": {}, \"panel_outage_rate\": {:.4}, \
         \"report_loss_rate\": {:.4}, \"psu_glitch_rate\": {:.4}, \
         \"scripted_outages\": {}, \"dead_columns\": {}, \
         \"max_report_attempts\": {}}},\n",
        plan.seed,
        plan.panel_outage_rate,
        plan.report_loss_rate,
        plan.psu_glitch_rate,
        plan.outages.len(),
        plan.dead_columns.len(),
        plan.retry.max_attempts,
    )
}

/// Warm-up ticks before the steady-state allocation count starts, and
/// measured ticks it averages over.
const ALLOC_WARMUP_TICKS: usize = 2;
const ALLOC_MEASURED_TICKS: usize = 8;
/// Devices the allocation kernel probes per simulated tick.
const ALLOC_KERNEL_DEVICES: usize = 8;

/// Steady-state heap allocations per simulated tick of the per-device
/// mobility hot kernel: one scratch-buffer power probe plus a memoized
/// bias sweep through the compiled plan for each of
/// [`ALLOC_KERNEL_DEVICES`] devices — the per-tick work PR 8 moved onto
/// arena rebinds, scratch probes and plan memos. Measured after
/// [`ALLOC_WARMUP_TICKS`] warm-up ticks (buffers grown, memos
/// populated), averaged over [`ALLOC_MEASURED_TICKS`] ticks, and cached
/// for the process. `None` when the counting allocator is compiled out
/// (release builds — artifacts then stamp `null` instead of a number
/// measured without counting).
pub fn allocs_per_tick() -> Option<f64> {
    static CACHE: OnceLock<Option<f64>> = OnceLock::new();
    *CACHE.get_or_init(measure_allocs_per_tick)
}

fn measure_allocs_per_tick() -> Option<f64> {
    if !alloc_counter::enabled() {
        return None;
    }
    let design = fr4_optimized();
    let plan = StackEvaluator::new(&design.stack, F);
    let response = SurfaceResponse::new(F, plan.response(BiasState::new(6.0, 6.0)));
    let link = PreparedLink::new(Scenario::transmissive_default().link());
    let mut scratch = Vec::new();
    let biases: Vec<BiasState> = (0..9)
        .map(|i| BiasState::new(3.0 * (i % 3) as f64, 3.0 * (i / 3) as f64))
        .collect();
    let mut tick = || {
        for _ in 0..ALLOC_KERNEL_DEVICES {
            std::hint::black_box(link.received_dbm_scratch(Some(&response), &mut scratch));
            for &bias in &biases {
                std::hint::black_box(plan.response(bias));
            }
        }
    };
    for _ in 0..ALLOC_WARMUP_TICKS {
        tick();
    }
    let (_, allocs) = alloc_counter::allocs_during(|| {
        for _ in 0..ALLOC_MEASURED_TICKS {
            tick();
        }
    });
    Some(allocs as f64 / ALLOC_MEASURED_TICKS as f64)
}

/// The `allocs_per_tick` stamp every bench/scenario artifact carries
/// next to the machine stamp: the steady-state hot-kernel allocation
/// count in debug-assert builds, `null` in release builds (where the
/// counting hook is compiled out).
pub fn allocs_json() -> String {
    match allocs_per_tick() {
        Some(v) => format!("  \"allocs_per_tick\": {v:.2},\n"),
        None => String::from("  \"allocs_per_tick\": null,\n"),
    }
}

/// The shared stamp block every committed BENCH/scenario/chaos/matrix
/// artifact carries right after its identity line: machine topology,
/// steady-state allocation count, the active fault configuration, and
/// the aggregated telemetry block (`{"mode": "null"}` for an
/// uninstrumented run, the full counter/histogram summary when a
/// recorder was attached). One helper, one format — a writer cannot
/// drift from the others. `telemetry` must be a single-line JSON object
/// (see [`rfmath::telemetry::Recorder::aggregate_json`]).
pub fn stamp_report(out: &mut String, plan: &llama_core::faults::FaultPlan, telemetry: &str) {
    out.push_str(&machine_json());
    out.push_str(&allocs_json());
    out.push_str(&faults_json(plan));
    out.push_str(&format!("  \"telemetry\": {telemetry},\n"));
}

/// One timed workload.
#[derive(Clone, Debug)]
pub struct BenchSample {
    /// Workload name.
    pub name: &'static str,
    /// Mean wall-clock per iteration, milliseconds.
    pub mean_ms: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// The full timing summary.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Whether the run used the reduced quick-mode sample budget.
    pub quick: bool,
    /// Individual workload timings.
    pub samples: Vec<BenchSample>,
    /// Naive / batched best-of-N time ratio on the 31×31 heatmap (min
    /// over samples on both sides, so one preempted sample cannot fail
    /// the gate).
    pub heatmap_31x31_speedup: f64,
    /// Naive / batched best-of-N time ratio on single-point evaluation.
    pub single_point_speedup: f64,
    /// Aggregated telemetry block (single-line JSON object; the null
    /// block when no recorder was attached to the workloads).
    pub telemetry: String,
}

impl PerfReport {
    /// True when the batched engine clears the regression floor.
    pub fn passes(&self) -> bool {
        self.heatmap_31x31_speedup >= SPEEDUP_FLOOR
    }

    /// Renders the report as a JSON document (no external dependencies,
    /// so the format is assembled by hand).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 2,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ms\": {:.6}, \"iters\": {}}}{comma}\n",
                s.name, s.mean_ms, s.iters
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"single_point_speedup\": {:.2},\n",
            self.single_point_speedup
        ));
        out.push_str(&format!(
            "  \"heatmap_31x31_speedup\": {:.2},\n",
            self.heatmap_31x31_speedup
        ));
        out.push_str(&format!(
            "  \"speedup_floor\": {SPEEDUP_FLOOR:.1},\n  \"pass\": {}\n}}\n",
            self.passes()
        ));
        out
    }

    /// One-line console summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== Batched-engine perf summary\n");
        for s in &self.samples {
            out.push_str(&format!("{:>38}: {:>10.3} ms/iter\n", s.name, s.mean_ms));
        }
        out.push_str(&format!(
            "{:>38}: {:>10.1} x\n{:>38}: {:>10.1} x (floor {SPEEDUP_FLOOR:.1}, pass: {})\n",
            "single-point speedup",
            self.single_point_speedup,
            "heatmap 31x31 speedup",
            self.heatmap_31x31_speedup,
            self.passes()
        ));
        out
    }
}

/// Times `routine` over `iters` iterations after one warm-up call and
/// returns `(mean_ms, min_ms)`. The minimum is what the regression gate
/// compares: on shared CI runners a single scheduler preemption can
/// inflate one sample several-fold, and the min is immune to that.
pub(crate) fn time_ms<O>(iters: u64, mut routine: impl FnMut() -> O) -> (f64, f64) {
    std::hint::black_box(routine());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let started = Instant::now();
        std::hint::black_box(routine());
        let ms = started.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
    }
    (total / iters as f64, min)
}

/// Runs every workload and assembles the report. `quick` trims the
/// sample budget for CI smoke use.
pub fn run(quick: bool) -> PerfReport {
    let design = fr4_optimized();
    let volts: Vec<f64> = (0..31).map(|i| i as f64).collect();
    let (single_iters, grid_iters, heatmap_iters) =
        if quick { (1000, 6, 2) } else { (5000, 12, 4) };
    let mut samples = Vec::new();

    let (naive_single, naive_single_min) = time_ms(single_iters, || {
        design.stack.response(F, BiasState::new(7.0, 13.0))
    });
    samples.push(BenchSample {
        name: "stack_response_single_naive",
        mean_ms: naive_single,
        iters: single_iters,
    });
    let evaluator = StackEvaluator::new(&design.stack, F);
    let (batched_single, batched_single_min) = time_ms(single_iters, || {
        evaluator.response(BiasState::new(7.0, 13.0))
    });
    samples.push(BenchSample {
        name: "stack_response_single_batched",
        mean_ms: batched_single,
        iters: single_iters,
    });

    let (naive_grid, naive_grid_min) = time_ms(grid_iters, || {
        let mut out = Vec::with_capacity(volts.len() * volts.len());
        for &vy in &volts {
            for &vx in &volts {
                out.push(design.stack.response(F, BiasState::new(vx, vy)));
            }
        }
        out
    });
    samples.push(BenchSample {
        name: "heatmap_31x31_naive",
        mean_ms: naive_grid,
        iters: grid_iters,
    });
    let (batched_grid, batched_grid_min) = time_ms(grid_iters, || {
        StackEvaluator::new(&design.stack, F).eval_grid(&volts, &volts)
    });
    samples.push(BenchSample {
        name: "heatmap_31x31_batched",
        mean_ms: batched_grid,
        iters: grid_iters,
    });

    // End-to-end: the Figure 15 per-panel workload on the migrated
    // system path (surface grid + prebuilt link).
    let (system_heatmap, _) = time_ms(heatmap_iters, || {
        let mut sys = LlamaSystem::new(Scenario::transmissive_default().with_distance_cm(36.0));
        sys.power_heatmap(13)
    });
    samples.push(BenchSample {
        name: "system_power_heatmap_13x13",
        mean_ms: system_heatmap,
        iters: heatmap_iters,
    });

    PerfReport {
        quick,
        samples,
        heatmap_31x31_speedup: naive_grid_min / batched_grid_min.max(1e-12),
        single_point_speedup: naive_single_min / batched_single_min.max(1e-12),
        telemetry: null_block_json(),
    }
}

/// Minimum shared-plan-vs-naive speedup on the 32-device fleet grid
/// before [`FleetPerfReport::passes`] fails (the PR-3 acceptance bar).
const FLEET_SPEEDUP_FLOOR: f64 = 3.0;

/// Size of the reference fleet workload (the acceptance gate's mixed
/// Wi-Fi/BLE population).
const FLEET_SIZE: usize = 32;

/// Timing summary of the fleet-serving engine (`BENCH_PR3.json`).
#[derive(Clone, Debug)]
pub struct FleetPerfReport {
    /// Whether the run used the reduced quick-mode sample budget.
    pub quick: bool,
    /// Individual workload timings.
    pub samples: Vec<BenchSample>,
    /// Naive / shared-plan best-of-N time ratio on the 32-device fleet
    /// probe grid.
    pub fleet_32_speedup: f64,
    /// Aggregated telemetry block (single-line JSON object; the null
    /// block when no recorder was attached to the workloads).
    pub telemetry: String,
}

impl FleetPerfReport {
    /// True when the shared-plan engine clears the regression floor.
    pub fn passes(&self) -> bool {
        self.fleet_32_speedup >= FLEET_SPEEDUP_FLOOR
    }

    /// Renders the report as a JSON document (hand-assembled; no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 3,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"fleet_devices\": {FLEET_SIZE},\n"));
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ms\": {:.6}, \"iters\": {}}}{comma}\n",
                s.name, s.mean_ms, s.iters
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"fleet_32_speedup\": {:.2},\n",
            self.fleet_32_speedup
        ));
        out.push_str(&format!(
            "  \"speedup_floor\": {FLEET_SPEEDUP_FLOOR:.1},\n  \"pass\": {}\n}}\n",
            self.passes()
        ));
        out
    }

    /// One-line console summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== Fleet-serving engine perf summary\n");
        for s in &self.samples {
            out.push_str(&format!("{:>38}: {:>10.3} ms/iter\n", s.name, s.mean_ms));
        }
        out.push_str(&format!(
            "{:>38}: {:>10.1} x (floor {FLEET_SPEEDUP_FLOOR:.1}, pass: {})\n",
            "fleet 32-device speedup",
            self.fleet_32_speedup,
            self.passes()
        ));
        out
    }
}

/// Times the 32-device mixed Wi-Fi/BLE fleet workloads: the shared-plan
/// batch path (one compiled plan per carrier, one cascade per probe,
/// precomputed scatter, threaded rows) against the naive per-device loop
/// (per-device surface, per-probe link rebuild), plus end-to-end
/// scheduler runs for all three policies.
pub fn run_fleet(quick: bool) -> FleetPerfReport {
    let fleet = Fleet::mixed_wifi_ble(FLEET_SIZE, 2021);
    // The probe load of one Algorithm-1 scheduler run: 2 × 5×5 grids.
    let biases: Vec<BiasState> = {
        let mut b = Vec::new();
        for round in 0..2 {
            for ix in 0..5 {
                for iy in 0..5 {
                    let span = if round == 0 { 30.0 } else { 12.0 };
                    let base = if round == 0 { 0.0 } else { 9.0 };
                    b.push(BiasState::new(
                        base + span * ix as f64 / 4.0,
                        base + span * iy as f64 / 4.0,
                    ));
                }
            }
        }
        b
    };
    let (grid_iters, sched_iters) = if quick { (4, 2) } else { (10, 4) };
    let mut samples = Vec::new();

    let (naive_mean, naive_min) = time_ms(grid_iters, || fleet.naive_powers_matrix(&biases));
    samples.push(BenchSample {
        name: "fleet_32_probe_grid_naive",
        mean_ms: naive_mean,
        iters: grid_iters,
    });
    let (batched_mean, batched_min) = time_ms(grid_iters, || {
        // Cold cost included: the scheduler compiles the plans once per
        // run, so the timed region does too.
        FleetEvaluator::new(&fleet).powers_matrix(&biases)
    });
    samples.push(BenchSample {
        name: "fleet_32_probe_grid_shared_plan",
        mean_ms: batched_mean,
        iters: grid_iters,
    });

    let (max_min_ms, _) = time_ms(sched_iters, || Scheduler::max_min().run(&fleet));
    samples.push(BenchSample {
        name: "fleet_32_scheduler_max_min",
        mean_ms: max_min_ms,
        iters: sched_iters,
    });
    let (favor_ms, _) = time_ms(sched_iters, || Scheduler::favor(0).run(&fleet));
    samples.push(BenchSample {
        name: "fleet_32_scheduler_favor",
        mean_ms: favor_ms,
        iters: sched_iters,
    });
    let (tdm_ms, _) = time_ms(sched_iters, || Scheduler::time_division().run(&fleet));
    samples.push(BenchSample {
        name: "fleet_32_scheduler_time_division",
        mean_ms: tdm_ms,
        iters: sched_iters,
    });

    FleetPerfReport {
        quick,
        samples,
        fleet_32_speedup: naive_min / batched_min.max(1e-12),
        telemetry: null_block_json(),
    }
}

/// Minimum batched-vs-naive speedup on the 4-panel probe grids before
/// [`PanelPerfReport::passes`] fails (the PR-4 CI bar).
const PANEL_SPEEDUP_FLOOR: f64 = 2.0;

/// Panels in the reference array.
const PANEL_COUNT: usize = 4;

/// Concurrent fleets the server workload multiplexes.
const SERVER_FLEETS: usize = 8;

/// Timing summary of the panel-array engine and the many-fleet server
/// (`BENCH_PR4.json`).
#[derive(Clone, Debug)]
pub struct PanelPerfReport {
    /// Whether the run used the reduced quick-mode sample budget.
    pub quick: bool,
    /// Individual workload timings.
    pub samples: Vec<BenchSample>,
    /// Naive / batched best-of-N time ratio on the 4-panel probe grids
    /// (shared plan caches + per-panel batch path vs per-device loops).
    pub panel_grid_speedup: f64,
    /// Min-device power gain of the 4-panel scheduler over single-panel
    /// `MaxMin` on the 32-device mixed fleet, dB (the acceptance gate:
    /// must be strictly positive).
    pub panel_min_power_gain_db: f64,
    /// Serial / concurrent wall-clock ratio serving [`SERVER_FLEETS`]
    /// fleets through the [`FleetServer`] worker pool (informational —
    /// single-core CI runners cannot beat 1×).
    pub server_concurrency_speedup: f64,
    /// Worker threads the server bench ran with.
    pub server_workers: usize,
    /// Per-thread scaling efficiency: concurrency speedup divided by
    /// the effective parallelism (`min(workers, logical_cores)`), so a
    /// 2-worker run on a 1-core host reports ~1.0, not ~0.5.
    pub server_scaling_efficiency: f64,
    /// Mean stage-to-pop latency per job on the sharded queue, ms.
    pub server_mean_queue_wait_ms: f64,
    /// Median stage-to-pop latency, ms (the mean alone hides a starved
    /// tail; p50/p95 together expose it).
    pub server_queue_wait_p50_ms: f64,
    /// 95th-percentile stage-to-pop latency, ms.
    pub server_queue_wait_p95_ms: f64,
    /// Cross-shard steals during the stats run (load-imbalance signal).
    pub server_steals: usize,
    /// Aggregated telemetry block captured from the instrumented server
    /// stats pass (single-line JSON object).
    pub telemetry: String,
}

impl PanelPerfReport {
    /// True when the panel engine clears the regression floor *and* the
    /// panel array still strictly lifts the shared-bias min power.
    pub fn passes(&self) -> bool {
        self.panel_grid_speedup >= PANEL_SPEEDUP_FLOOR && self.panel_min_power_gain_db > 0.0
    }

    /// Renders the report as a JSON document (hand-assembled; no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 4,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"panels\": {PANEL_COUNT},\n"));
        out.push_str(&format!("  \"fleet_devices\": {FLEET_SIZE},\n"));
        out.push_str(&format!("  \"server_fleets\": {SERVER_FLEETS},\n"));
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ms\": {:.6}, \"iters\": {}}}{comma}\n",
                s.name, s.mean_ms, s.iters
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"panel_grid_speedup\": {:.2},\n",
            self.panel_grid_speedup
        ));
        out.push_str(&format!(
            "  \"panel_min_power_gain_db\": {:.3},\n",
            self.panel_min_power_gain_db
        ));
        out.push_str(&format!(
            "  \"server_concurrency_speedup\": {:.2},\n",
            self.server_concurrency_speedup
        ));
        out.push_str(&format!("  \"server_workers\": {},\n", self.server_workers));
        out.push_str(&format!(
            "  \"server_scaling_efficiency\": {:.2},\n",
            self.server_scaling_efficiency
        ));
        out.push_str(&format!(
            "  \"server_mean_queue_wait_ms\": {:.4},\n",
            self.server_mean_queue_wait_ms
        ));
        out.push_str(&format!(
            "  \"server_queue_wait_p50_ms\": {:.4},\n",
            self.server_queue_wait_p50_ms
        ));
        out.push_str(&format!(
            "  \"server_queue_wait_p95_ms\": {:.4},\n",
            self.server_queue_wait_p95_ms
        ));
        out.push_str(&format!("  \"server_steals\": {},\n", self.server_steals));
        out.push_str(&format!(
            "  \"speedup_floor\": {PANEL_SPEEDUP_FLOOR:.1},\n  \"pass\": {}\n}}\n",
            self.passes()
        ));
        out
    }

    /// One-line console summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== Panel-array / many-fleet server perf summary\n");
        for s in &self.samples {
            out.push_str(&format!("{:>38}: {:>10.3} ms/iter\n", s.name, s.mean_ms));
        }
        out.push_str(&format!(
            "{:>38}: {:>10.1} x (floor {PANEL_SPEEDUP_FLOOR:.1})\n",
            "4-panel grid speedup", self.panel_grid_speedup
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.2} dB (must be > 0)\n",
            "panel min-power gain vs shared", self.panel_min_power_gain_db
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.1} x over {} workers (efficiency {:.2})\n",
            "8-fleet server concurrency",
            self.server_concurrency_speedup,
            self.server_workers,
            self.server_scaling_efficiency
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.4} ms (p50 {:.4}, p95 {:.4}, {} steals, pass: {})\n",
            "mean queue wait",
            self.server_mean_queue_wait_ms,
            self.server_queue_wait_p50_ms,
            self.server_queue_wait_p95_ms,
            self.server_steals,
            self.passes()
        ));
        out
    }
}

/// Times the 4-panel, 32-device workloads: per-panel probe grids on the
/// shared-plan batch path (one [`metasurface::PlanCache`] across the
/// array) against the naive per-device loops, the end-to-end panel
/// scheduler against single-panel `MaxMin` (recording the min-power
/// gain the panels buy), and the [`FleetServer`] multiplexing
/// [`SERVER_FLEETS`] fleets against serial execution.
pub fn run_panels(quick: bool) -> PanelPerfReport {
    let fleet = Fleet::mixed_wifi_ble(FLEET_SIZE, 2021);
    let array = PanelArray::uniform(fleet.design.clone(), PANEL_COUNT);
    let assignment = array.assign(&fleet, &llama_core::panels::Assignment::ByOrientation);
    // The probe load of one Algorithm-1 scheduler run: 2 × 5×5 grids.
    let biases: Vec<BiasState> = {
        let mut b = Vec::new();
        for round in 0..2 {
            for ix in 0..5 {
                for iy in 0..5 {
                    let span = if round == 0 { 30.0 } else { 12.0 };
                    let base = if round == 0 { 0.0 } else { 9.0 };
                    b.push(BiasState::new(
                        base + span * ix as f64 / 4.0,
                        base + span * iy as f64 / 4.0,
                    ));
                }
            }
        }
        b
    };
    let (grid_iters, sched_iters, serve_iters) = if quick { (4, 2, 2) } else { (10, 4, 4) };
    let mut samples = Vec::new();

    let (naive_mean, naive_min) = time_ms(grid_iters, || {
        array.naive_panel_matrices(&fleet, &assignment, &biases)
    });
    samples.push(BenchSample {
        name: "panel_4x32_probe_grid_naive",
        mean_ms: naive_mean,
        iters: grid_iters,
    });
    let (batched_mean, batched_min) = time_ms(grid_iters, || {
        // Cold cost included: plan caches compile inside the timed
        // region, exactly as the scheduler pays them.
        array.batched_panel_matrices(&fleet, &assignment, &biases)
    });
    samples.push(BenchSample {
        name: "panel_4x32_probe_grid_shared_plan",
        mean_ms: batched_mean,
        iters: grid_iters,
    });

    let (panel_sched_ms, _) = time_ms(sched_iters, || {
        PanelScheduler::max_min().run(&fleet, &array)
    });
    samples.push(BenchSample {
        name: "panel_4x32_scheduler_max_min",
        mean_ms: panel_sched_ms,
        iters: sched_iters,
    });
    let panel_outcome = PanelScheduler::max_min().run(&fleet, &array);
    let shared_outcome = Scheduler::max_min().run(&fleet);
    let panel_min_power_gain_db = panel_outcome.min_power_dbm() - shared_outcome.min_power_dbm();

    // Many-fleet serving: SERVER_FLEETS independent fleets through the
    // bounded-queue worker pool vs a serial loop.
    let fleets: Vec<Fleet> = (0..SERVER_FLEETS as u64)
        .map(|s| Fleet::mixed_wifi_ble(8, 3000 + s))
        .collect();
    let scheduler = Scheduler::max_min();
    let (serial_mean, serial_min) = time_ms(serve_iters, || {
        fleets.iter().map(|f| scheduler.run(f)).collect::<Vec<_>>()
    });
    samples.push(BenchSample {
        name: "server_8_fleets_serial",
        mean_ms: serial_mean,
        iters: serve_iters,
    });
    let workers = rfmath::par::available_threads().min(SERVER_FLEETS);
    let server = FleetServer::new(workers);
    let (served_mean, served_min) =
        time_ms(serve_iters, || serve_fleets(&server, &scheduler, &fleets));
    samples.push(BenchSample {
        name: "server_8_fleets_concurrent",
        mean_ms: served_mean,
        iters: serve_iters,
    });
    // One instrumented pass for the queue telemetry (wait time, steals):
    // the timed loops above stay stats-free so the measurement is pure.
    // The ring recorder rides along here — same pass, zero cost to the
    // timed regions — and its aggregate is stamped into the artifact.
    let ring = Arc::new(RingRecorder::default());
    let recorder = RecorderHandle::new(ring);
    let server = server.with_recorder(recorder.clone());
    let (_, stats) = server.try_serve_with_stats(fleets.iter().collect(), |_, fleet: &Fleet| {
        scheduler.run(fleet)
    });
    let logical_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = serial_min / served_min.max(1e-12);

    PanelPerfReport {
        quick,
        samples,
        panel_grid_speedup: naive_min / batched_min.max(1e-12),
        panel_min_power_gain_db,
        server_concurrency_speedup: speedup,
        server_workers: workers,
        server_scaling_efficiency: speedup / workers.min(logical_cores).max(1) as f64,
        server_mean_queue_wait_ms: stats.mean_queue_wait.0 * 1e3,
        server_queue_wait_p50_ms: stats.queue_wait_p50.0 * 1e3,
        server_queue_wait_p95_ms: stats.queue_wait_p95.0 * 1e3,
        server_steals: stats.steals,
        telemetry: recorder.aggregate_json(),
    }
}

/// Minimum warm-vs-cold per-tick speedup before
/// [`MobilityPerfReport::passes`] fails on a full run (the PR-5
/// acceptance bar at 32 devices / 64 ticks).
const MOBILITY_SPEEDUP_FLOOR: f64 = 3.0;

/// The quick-mode wall-clock floor (8 devices / 8 ticks: the cold-start
/// tick is a full eighth of the warm run, so the amortized ratio is
/// structurally ~2.4×, and shared CI runners add timing noise on a
/// sub-5 ms measurement). The deterministic probe-ratio gate in
/// [`MobilityPerfReport::passes`] carries the real regression check in
/// quick mode.
const MOBILITY_SPEEDUP_FLOOR_QUICK: f64 = 1.5;

/// One point of the hysteresis sweep: how a handoff policy trades
/// migration churn against served power.
#[derive(Clone, Copy, Debug)]
pub struct HysteresisPoint {
    /// Margin threshold, dB.
    pub hysteresis_db: f64,
    /// Dwell requirement, ticks.
    pub dwell_ticks: usize,
    /// Total handoffs over the run.
    pub handoffs: usize,
    /// Mean worst-device served power, dBm.
    pub mean_min_power_dbm: f64,
    /// Mean serving duty (device-weighted).
    pub mean_duty: f64,
}

/// Timing summary of the mobility simulator (`BENCH_PR5.json`).
#[derive(Clone, Debug)]
pub struct MobilityPerfReport {
    /// Whether the run used the reduced quick-mode workload.
    pub quick: bool,
    /// Devices in the roaming workload.
    pub devices: usize,
    /// Simulated ticks.
    pub ticks: usize,
    /// Panels in the distributed array.
    pub panels: usize,
    /// Total controller wall-clock of the cold (memoryless full
    /// re-search) run, ms.
    pub cold_wall_ms: f64,
    /// Total controller wall-clock of the warm (incremental) run, ms.
    pub warm_wall_ms: f64,
    /// Cold / warm wall-clock ratio — the headline.
    pub warm_speedup: f64,
    /// Probes spent by each mode (airtime side of the same story).
    pub cold_probes: usize,
    /// Probes spent by the warm run.
    pub warm_probes: usize,
    /// Mean serving duty of each mode (reconfiguration honesty).
    pub cold_mean_duty: f64,
    /// Mean serving duty of the warm run.
    pub warm_mean_duty: f64,
    /// Handoffs the warm run's hysteresis policy performed.
    pub warm_handoffs: usize,
    /// Whether a zero-motion fleet produced bit-identical allocations
    /// through the warm and cold engines on every tick (the exactness
    /// gate; the proptest pins the same contract against the static
    /// scheduler).
    pub zero_motion_equivalent: bool,
    /// The min-power-vs-handoff-rate sweep across hysteresis settings.
    pub hysteresis_curve: Vec<HysteresisPoint>,
    /// Aggregated telemetry block captured from the instrumented
    /// zero-motion run (single-line JSON object). The timed headline
    /// runs stay recorder-free so the speedup gate measures the engine,
    /// not the ring.
    pub telemetry: String,
}

impl MobilityPerfReport {
    /// The speedup floor this run is gated on.
    pub fn floor(&self) -> f64 {
        if self.quick {
            MOBILITY_SPEEDUP_FLOOR_QUICK
        } else {
            MOBILITY_SPEEDUP_FLOOR
        }
    }

    /// True when the warm engine clears the wall-clock speedup floor,
    /// spends at most half the cold probe bill (a deterministic,
    /// noise-free gate on the same regression), and the zero-motion
    /// equivalence held exactly.
    pub fn passes(&self) -> bool {
        self.warm_speedup >= self.floor()
            && self.warm_probes * 2 <= self.cold_probes
            && self.zero_motion_equivalent
    }

    /// Renders the report as a JSON document (hand-assembled; no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 5,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"fleet_devices\": {},\n", self.devices));
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"panels\": {},\n", self.panels));
        out.push_str(&format!("  \"cold_wall_ms\": {:.3},\n", self.cold_wall_ms));
        out.push_str(&format!("  \"warm_wall_ms\": {:.3},\n", self.warm_wall_ms));
        out.push_str(&format!("  \"warm_speedup\": {:.2},\n", self.warm_speedup));
        out.push_str(&format!("  \"cold_probes\": {},\n", self.cold_probes));
        out.push_str(&format!("  \"warm_probes\": {},\n", self.warm_probes));
        out.push_str(&format!(
            "  \"cold_mean_duty\": {:.4},\n",
            self.cold_mean_duty
        ));
        out.push_str(&format!(
            "  \"warm_mean_duty\": {:.4},\n",
            self.warm_mean_duty
        ));
        out.push_str(&format!("  \"warm_handoffs\": {},\n", self.warm_handoffs));
        out.push_str(&format!(
            "  \"zero_motion_equivalent\": {},\n",
            self.zero_motion_equivalent
        ));
        out.push_str("  \"hysteresis_curve\": [\n");
        for (i, p) in self.hysteresis_curve.iter().enumerate() {
            let comma = if i + 1 < self.hysteresis_curve.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"hysteresis_db\": {:.1}, \"dwell_ticks\": {}, \"handoffs\": {}, \
                 \"mean_min_power_dbm\": {:.3}, \"mean_duty\": {:.4}}}{comma}\n",
                p.hysteresis_db, p.dwell_ticks, p.handoffs, p.mean_min_power_dbm, p.mean_duty
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"speedup_floor\": {:.1},\n  \"pass\": {}\n}}\n",
            self.floor(),
            self.passes()
        ));
        out
    }

    /// Console summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== Mobility simulator perf summary\n");
        out.push_str(&format!(
            "{:>38}: {} devices x {} ticks on {} panels\n",
            "workload", self.devices, self.ticks, self.panels
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.3} ms total ({:.3} ms/tick)\n",
            "cold per-tick re-search",
            self.cold_wall_ms,
            self.cold_wall_ms / self.ticks as f64
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.3} ms total ({:.3} ms/tick)\n",
            "warm incremental engine",
            self.warm_wall_ms,
            self.warm_wall_ms / self.ticks as f64
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.1} x (floor {:.1})\n",
            "warm-start speedup",
            self.warm_speedup,
            self.floor()
        ));
        out.push_str(&format!(
            "{:>38}: {} vs {} (duty {:.2} vs {:.2})\n",
            "warm vs cold probes",
            self.warm_probes,
            self.cold_probes,
            self.warm_mean_duty,
            self.cold_mean_duty
        ));
        out.push_str(&format!(
            "{:>38}: {}\n",
            "zero-motion equivalence", self.zero_motion_equivalent
        ));
        for p in &self.hysteresis_curve {
            out.push_str(&format!(
                "{:>38}: {:>3} handoffs, min power {:.2} dBm, duty {:.2}\n",
                format!(
                    "hysteresis {:.0} dB / dwell {}",
                    p.hysteresis_db, p.dwell_ticks
                ),
                p.handoffs,
                p.mean_min_power_dbm,
                p.mean_duty
            ));
        }
        out.push_str(&format!("{:>38}: {}\n", "pass", self.passes()));
        out
    }
}

/// Times the event-stepped mobility simulator: the roaming mixed fleet
/// over a distributed panel array, warm (incremental re-optimization,
/// hysteresis handoff) against cold (memoryless full re-search per
/// tick), plus the zero-motion exactness check and a hysteresis sweep.
/// Full mode runs the 32-device / 64-tick acceptance workload; quick
/// mode the 8-device / 8-tick CI smoke.
pub fn run_mobility(quick: bool) -> MobilityPerfReport {
    let (devices, ticks, panels) = if quick { (8, 8, 2) } else { (32, 64, 4) };
    let seed = 2021u64;
    let duration = Seconds(ticks as f64);
    let design = Fleet::mixed_wifi_ble(1, seed).design.clone();
    let array = PanelArray::distributed(design.clone(), panels);
    let scheduler = PanelScheduler::max_min();

    // Identical trajectories for both modes: fresh fleets, same seed.
    let mut roaming = DynamicFleet::roaming_mixed(devices, seed, duration);
    let cold =
        MobilitySim::new(scheduler.clone(), SimConfig::cold()).run(&mut roaming, &array, ticks);
    let mut roaming = DynamicFleet::roaming_mixed(devices, seed, duration);
    let warm =
        MobilitySim::new(scheduler.clone(), SimConfig::default()).run(&mut roaming, &array, ticks);

    // Zero-motion exactness: a parked fleet through both engines, every
    // tick's allocation compared bit for bit.
    let still = Fleet::mixed_wifi_ble(devices.min(8), seed);
    let still_array = PanelArray::uniform(still.design.clone(), panels.min(2));
    let still_ticks = ticks.min(8);
    // The zero-motion arm doubles as the telemetry capture: a ring
    // recorder rides the warm engine here (events never change the
    // computation, so the bitwise gate below still holds) while the
    // timed headline runs above stay recorder-free.
    let ring_recorder = RecorderHandle::new(Arc::new(RingRecorder::default()));
    let warm_still = MobilitySim::new(scheduler.clone(), SimConfig::default())
        .with_recorder(ring_recorder.clone())
        .run(
            &mut DynamicFleet::new(still.clone()),
            &still_array,
            still_ticks,
        );
    let cold_still = MobilitySim::new(scheduler, SimConfig::cold()).run(
        &mut DynamicFleet::new(still),
        &still_array,
        still_ticks,
    );
    let zero_motion_equivalent = warm_still
        .ticks
        .iter()
        .zip(&cold_still.ticks)
        .all(|(w, c)| w.outcome.same_allocation(&c.outcome));

    // Min-power-vs-handoff-rate across hysteresis settings. The default
    // policy's point reuses the headline warm run — same config, same
    // seed, bit-identical results (the determinism contract) — instead
    // of re-simulating the most expensive workload.
    let default_handoff = SimConfig::default().handoff;
    let settings: &[(f64, usize)] = if quick {
        &[(0.0, 1), (4.0, 2)]
    } else {
        &[(0.0, 1), (0.5, 1), (1.0, 1), (2.0, 1), (2.0, 2)]
    };
    let hysteresis_curve = settings
        .iter()
        .map(|&(hysteresis_db, dwell_ticks)| {
            let handoff = HandoffPolicy {
                hysteresis_db,
                dwell_ticks,
                ..HandoffPolicy::default()
            };
            let report = if handoff == default_handoff {
                warm.clone()
            } else {
                let mut fleet = DynamicFleet::roaming_mixed(devices, seed, duration);
                MobilitySim::new(
                    PanelScheduler::max_min(),
                    SimConfig::default().with_handoff(handoff),
                )
                .run(&mut fleet, &array, ticks)
            };
            HysteresisPoint {
                hysteresis_db,
                dwell_ticks,
                handoffs: report.handoffs,
                mean_min_power_dbm: report.mean_served_min_power_dbm(),
                mean_duty: report.mean_duty(),
            }
        })
        .collect();

    MobilityPerfReport {
        quick,
        devices,
        ticks,
        panels,
        cold_wall_ms: cold.wall_ms,
        warm_wall_ms: warm.wall_ms,
        warm_speedup: cold.wall_ms / warm.wall_ms.max(1e-9),
        cold_probes: cold.total_probes(),
        warm_probes: warm.total_probes(),
        cold_mean_duty: cold.mean_duty(),
        warm_mean_duty: warm.mean_duty(),
        warm_handoffs: warm.handoffs,
        zero_motion_equivalent,
        hysteresis_curve,
        telemetry: ring_recorder.aggregate_json(),
    }
}

/// Minimum SoA-vs-reference speedup on the single-thread probe-grid
/// batch before [`ShardedPerfReport::passes`] fails (the PR-8 bar).
const SOA_PROBE_GRID_FLOOR: f64 = 1.5;

/// Minimum optimized-vs-churn-baseline speedup on the single-thread
/// warm mobility tick (arena rebinds + SoA batch vs allocating rebinds
/// + reference AoS batch).
const MOBILITY_TICK_FLOOR: f64 = 1.3;

/// Minimum per-thread scaling efficiency at the largest measured worker
/// count on multi-core hosts (near-linear: ≥ 60% of ideal). Single-core
/// hosts skip the scaling smoke but stamp the skip into the artifact.
const SCALING_EFFICIENCY_FLOOR: f64 = 0.6;

/// One point of the fleet-throughput thread-scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ThreadScalingPoint {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Shard deques jobs were hashed across.
    pub shards: usize,
    /// Best-of-N wall-clock for the serve, ms.
    pub min_ms: f64,
    /// Serial / concurrent best-of-N ratio at this worker count.
    pub speedup: f64,
    /// Speedup divided by the effective parallelism
    /// (`min(workers, logical_cores)`).
    pub efficiency: f64,
    /// Cross-shard steals during the instrumented pass.
    pub steals: usize,
    /// Mean stage-to-pop queue wait per job, ms.
    pub mean_queue_wait_ms: f64,
}

/// Timing summary of the PR-8 sharded serving stack
/// (`BENCH_PR8.json`): SoA batch kernel vs the reference AoS path,
/// allocation-free warm ticks vs the churn baseline, and fleet
/// throughput across worker/shard counts.
#[derive(Clone, Debug)]
pub struct ShardedPerfReport {
    /// Whether the run used the reduced quick-mode sample budget.
    pub quick: bool,
    /// Logical cores the host exposed (scaling context).
    pub logical_cores: usize,
    /// Individual workload timings.
    pub samples: Vec<BenchSample>,
    /// Reference / SoA best-of-N time ratio on the probe-grid batch
    /// (identical inputs, bit-identical outputs).
    pub probe_grid_speedup: f64,
    /// Churn-baseline / optimized best-of-N wall-clock ratio on the
    /// warm mobility run (per-tick controller cost).
    pub mobility_tick_speedup: f64,
    /// Whether the optimized and churn-baseline runs produced
    /// bit-identical allocations on every tick (they must: the fast
    /// paths are value-preserving).
    pub churn_bit_identical: bool,
    /// Whether the thread-scaling smoke was skipped (single-core host:
    /// a worker pool cannot beat serial with one core).
    pub thread_scaling_skipped: bool,
    /// Fleet-throughput scaling across worker counts (empty when
    /// skipped).
    pub thread_scaling: Vec<ThreadScalingPoint>,
    /// Steady-state hot-kernel allocations per tick (debug-assert
    /// builds; `None` in release).
    pub allocs_per_tick: Option<f64>,
    /// Aggregated telemetry block captured from the instrumented
    /// thread-scaling stats passes (single-line JSON object; an empty
    /// ring on single-core hosts where scaling is skipped).
    pub telemetry: String,
}

impl ShardedPerfReport {
    /// True when the SoA kernel and the de-churned tick clear their
    /// floors, the A/B runs stayed bit-identical, and (on multi-core
    /// hosts) fleet throughput scaled near-linearly.
    pub fn passes(&self) -> bool {
        let scaling_ok = self.thread_scaling_skipped
            || self
                .thread_scaling
                .last()
                .is_some_and(|p| p.efficiency >= SCALING_EFFICIENCY_FLOOR);
        self.probe_grid_speedup >= SOA_PROBE_GRID_FLOOR
            && self.mobility_tick_speedup >= MOBILITY_TICK_FLOOR
            && self.churn_bit_identical
            && scaling_ok
    }

    /// Renders the report as a JSON document (hand-assembled; no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 8,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ms\": {:.6}, \"iters\": {}}}{comma}\n",
                s.name, s.mean_ms, s.iters
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"probe_grid_speedup\": {:.2},\n",
            self.probe_grid_speedup
        ));
        out.push_str(&format!(
            "  \"mobility_tick_speedup\": {:.2},\n",
            self.mobility_tick_speedup
        ));
        out.push_str(&format!(
            "  \"churn_bit_identical\": {},\n",
            self.churn_bit_identical
        ));
        out.push_str(&format!(
            "  \"thread_scaling_skipped\": {},\n",
            self.thread_scaling_skipped
        ));
        out.push_str("  \"thread_scaling\": [\n");
        for (i, p) in self.thread_scaling.iter().enumerate() {
            let comma = if i + 1 < self.thread_scaling.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"workers\": {}, \"shards\": {}, \"min_ms\": {:.4}, \
                 \"speedup\": {:.2}, \"efficiency\": {:.2}, \"steals\": {}, \
                 \"mean_queue_wait_ms\": {:.4}}}{comma}\n",
                p.workers,
                p.shards,
                p.min_ms,
                p.speedup,
                p.efficiency,
                p.steals,
                p.mean_queue_wait_ms
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"probe_grid_floor\": {SOA_PROBE_GRID_FLOOR:.1},\n\
             \x20 \"mobility_tick_floor\": {MOBILITY_TICK_FLOOR:.1},\n\
             \x20 \"scaling_efficiency_floor\": {SCALING_EFFICIENCY_FLOOR:.1},\n\
             \x20 \"pass\": {}\n}}\n",
            self.passes()
        ));
        out
    }

    /// Console summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== Sharded serving / hot-loop perf summary\n");
        for s in &self.samples {
            out.push_str(&format!("{:>38}: {:>10.3} ms/iter\n", s.name, s.mean_ms));
        }
        out.push_str(&format!(
            "{:>38}: {:>10.1} x (floor {SOA_PROBE_GRID_FLOOR:.1})\n",
            "SoA probe-grid speedup", self.probe_grid_speedup
        ));
        out.push_str(&format!(
            "{:>38}: {:>10.1} x (floor {MOBILITY_TICK_FLOOR:.1}, bit-identical: {})\n",
            "mobility-tick de-churn speedup", self.mobility_tick_speedup, self.churn_bit_identical
        ));
        if self.thread_scaling_skipped {
            out.push_str(&format!(
                "{:>38}: skipped ({} logical core)\n",
                "thread scaling", self.logical_cores
            ));
        } else {
            for p in &self.thread_scaling {
                out.push_str(&format!(
                    "{:>38}: {:>10.1} x (efficiency {:.2}, {} steals, wait {:.4} ms)\n",
                    format!("{} workers / {} shards", p.workers, p.shards),
                    p.speedup,
                    p.efficiency,
                    p.steals,
                    p.mean_queue_wait_ms
                ));
            }
        }
        match self.allocs_per_tick {
            Some(v) => out.push_str(&format!("{:>38}: {:>10.2}\n", "allocs per tick", v)),
            None => out.push_str(&format!(
                "{:>38}: {:>10}\n",
                "allocs per tick", "n/a (release)"
            )),
        }
        out.push_str(&format!("{:>38}: {}\n", "pass", self.passes()));
        out
    }
}

/// Times the PR-8 fast paths against their honest baselines, all on
/// identical inputs:
///
/// * **probe grid** — [`StackEvaluator::eval_batch`] (the SoA slab
///   kernel) vs [`StackEvaluator::eval_batch_reference`] (the per-cell
///   AoS fold) on one compiled plan and a large distinct-bias batch;
/// * **mobility tick** — the warm engine with arena rebinds + SoA
///   batches vs the same engine under
///   [`SimConfig::with_churn_baseline`] (allocating rebinds, reference
///   batch kernel), same seed, bit-identical outcomes;
/// * **thread scaling** — [`serve_fleets`] throughput across worker
///   counts on the sharded work-stealing queue, with an instrumented
///   pass recording steals and queue wait (skipped-but-stamped on
///   single-core hosts).
pub fn run_sharded(quick: bool) -> ShardedPerfReport {
    let mut samples = Vec::new();
    let logical_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // SoA vs reference batch on one compiled plan. The 24×24 distinct
    // grid mirrors the dedup shape of a real probe sweep; both paths
    // share the per-axis memos, so the comparison isolates the kernel.
    let design = fr4_optimized();
    let plan = StackEvaluator::new(&design.stack, F);
    let grid = 24usize;
    let biases: Vec<BiasState> = (0..grid * grid)
        .map(|i| {
            BiasState::new(
                30.0 * (i % grid) as f64 / (grid - 1) as f64,
                30.0 * (i / grid) as f64 / (grid - 1) as f64,
            )
        })
        .collect();
    let batch_iters = if quick { 20 } else { 60 };
    let (ref_mean, ref_min) = time_ms(batch_iters, || plan.eval_batch_reference(&biases));
    samples.push(BenchSample {
        name: "probe_grid_576_batch_reference",
        mean_ms: ref_mean,
        iters: batch_iters,
    });
    let (soa_mean, soa_min) = time_ms(batch_iters, || plan.eval_batch(&biases));
    samples.push(BenchSample {
        name: "probe_grid_576_batch_soa",
        mean_ms: soa_mean,
        iters: batch_iters,
    });

    // Warm mobility: optimized hot loops vs the churn baseline, same
    // seeded trajectory, outcomes compared bit for bit.
    let (devices, ticks, panels) = if quick { (12, 16, 3) } else { (24, 32, 3) };
    let seed = 2021u64;
    let duration = Seconds(ticks as f64);
    let sim_design = Fleet::mixed_wifi_ble(1, seed).design.clone();
    let array = PanelArray::distributed(sim_design, panels);
    let scheduler = PanelScheduler::max_min();
    // Best-of-N wall clock per arm (the runs are deterministic apart
    // from timing, so the min is the honest noise-free comparison —
    // a single quick run is only ~2 ms and flakes on loaded hosts).
    let sim_reps = if quick { 5 } else { 3 };
    let run_arm = |churn_baseline: bool| {
        let mut best: Option<llama_core::sim::SimReport> = None;
        for _ in 0..sim_reps {
            let mut roaming = DynamicFleet::roaming_mixed(devices, seed, duration);
            let report = MobilitySim::new(
                scheduler.clone(),
                SimConfig::default().with_churn_baseline(churn_baseline),
            )
            .run(&mut roaming, &array, ticks);
            best = Some(match best {
                Some(prev) if prev.wall_ms <= report.wall_ms => prev,
                _ => report,
            });
        }
        best.expect("at least one rep")
    };
    let churn = run_arm(true);
    let optimized = run_arm(false);
    let churn_bit_identical = churn
        .ticks
        .iter()
        .zip(&optimized.ticks)
        .all(|(a, b)| a.outcome.same_allocation(&b.outcome));
    samples.push(BenchSample {
        name: "mobility_tick_churn_baseline",
        mean_ms: churn.wall_ms / ticks as f64,
        iters: ticks as u64,
    });
    samples.push(BenchSample {
        name: "mobility_tick_optimized",
        mean_ms: optimized.wall_ms / ticks as f64,
        iters: ticks as u64,
    });

    // Fleet-throughput thread scaling over the sharded queue. One ring
    // recorder rides every instrumented stats pass (never the timed
    // loops); its aggregate lands in the artifact's telemetry block.
    let ring_recorder = RecorderHandle::new(Arc::new(RingRecorder::default()));
    let thread_scaling_skipped = logical_cores <= 1;
    let mut thread_scaling = Vec::new();
    if !thread_scaling_skipped {
        let fleets: Vec<Fleet> = (0..SERVER_FLEETS as u64)
            .map(|s| Fleet::mixed_wifi_ble(8, 3000 + s))
            .collect();
        let sched = Scheduler::max_min();
        let serve_iters = if quick { 3 } else { 6 };
        let (_, serial_min) = time_ms(serve_iters, || {
            fleets.iter().map(|f| sched.run(f)).collect::<Vec<_>>()
        });
        let mut worker_counts = vec![1usize, 2];
        worker_counts.push(logical_cores.min(SERVER_FLEETS));
        worker_counts.sort_unstable();
        worker_counts.dedup();
        for &workers in &worker_counts {
            let server = FleetServer::new(workers);
            let (_, min_ms) = time_ms(serve_iters, || serve_fleets(&server, &sched, &fleets));
            let server = server.with_recorder(ring_recorder.clone());
            let (_, stats) = server
                .try_serve_with_stats(fleets.iter().collect(), |_, fleet: &Fleet| sched.run(fleet));
            let speedup = serial_min / min_ms.max(1e-12);
            thread_scaling.push(ThreadScalingPoint {
                workers,
                shards: server.shards,
                min_ms,
                speedup,
                efficiency: speedup / workers.min(logical_cores).max(1) as f64,
                steals: stats.steals,
                mean_queue_wait_ms: stats.mean_queue_wait.0 * 1e3,
            });
        }
    }

    ShardedPerfReport {
        quick,
        logical_cores,
        samples,
        probe_grid_speedup: ref_min / soa_min.max(1e-12),
        mobility_tick_speedup: churn.wall_ms / optimized.wall_ms.max(1e-9),
        churn_bit_identical,
        thread_scaling_skipped,
        thread_scaling,
        allocs_per_tick: allocs_per_tick(),
        telemetry: ring_recorder.aggregate_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_report_serializes_and_gates_on_both_axes() {
        let report = PanelPerfReport {
            quick: true,
            samples: vec![BenchSample {
                name: "z",
                mean_ms: 1.0,
                iters: 2,
            }],
            panel_grid_speedup: 3.0,
            panel_min_power_gain_db: 2.5,
            server_concurrency_speedup: 1.8,
            server_workers: 2,
            server_scaling_efficiency: 0.9,
            server_mean_queue_wait_ms: 0.05,
            server_queue_wait_p50_ms: 0.04,
            server_queue_wait_p95_ms: 0.09,
            server_steals: 1,
            telemetry: null_block_json(),
        };
        let json = report.to_json();
        assert!(json.contains("\"pr\": 4"));
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"mode\": \"null\""));
        // Every artifact records the machine it was measured on, and
        // the steady-state allocation stamp sits right next to it.
        assert!(json.contains("\"machine\""));
        assert!(json.contains("\"logical_cores\""));
        assert!(json.contains("\"threads_used\""));
        assert!(json.contains("\"allocs_per_tick\""));
        assert!(json.contains("\"server_scaling_efficiency\": 0.90"));
        assert!(json.contains("\"server_mean_queue_wait_ms\": 0.0500"));
        assert!(json.contains("\"server_queue_wait_p50_ms\": 0.0400"));
        assert!(json.contains("\"server_queue_wait_p95_ms\": 0.0900"));
        assert!(json.contains("\"server_steals\": 1"));
        assert!(json.contains("\"panel_grid_speedup\": 3.00"));
        assert!(json.contains("\"panel_min_power_gain_db\": 2.500"));
        assert!(json.contains("\"pass\": true"));
        assert!(report.passes());
        // Either axis failing fails the smoke: a fast-but-worse panel
        // path is as much a regression as a slow one.
        let slow = PanelPerfReport {
            panel_grid_speedup: 1.5,
            ..report.clone()
        };
        assert!(!slow.passes());
        let worse = PanelPerfReport {
            panel_min_power_gain_db: -0.3,
            ..report
        };
        assert!(!worse.passes());
    }

    #[test]
    fn mobility_report_serializes_and_gates_on_both_axes() {
        let report = MobilityPerfReport {
            quick: false,
            devices: 32,
            ticks: 64,
            panels: 4,
            cold_wall_ms: 900.0,
            warm_wall_ms: 200.0,
            warm_speedup: 4.5,
            cold_probes: 6400,
            warm_probes: 900,
            cold_mean_duty: 0.0,
            warm_mean_duty: 0.8,
            warm_handoffs: 3,
            zero_motion_equivalent: true,
            hysteresis_curve: vec![HysteresisPoint {
                hysteresis_db: 2.0,
                dwell_ticks: 2,
                handoffs: 3,
                mean_min_power_dbm: -61.5,
                mean_duty: 0.8,
            }],
            telemetry: null_block_json(),
        };
        let json = report.to_json();
        assert!(json.contains("\"pr\": 5"));
        assert!(json.contains("\"warm_speedup\": 4.50"));
        assert!(json.contains("\"zero_motion_equivalent\": true"));
        assert!(json.contains("\"hysteresis_db\": 2.0"));
        assert!(json.contains("\"pass\": true"));
        assert!(report.passes());
        // Either axis failing fails the smoke.
        let slow = MobilityPerfReport {
            warm_speedup: 1.5,
            ..report.clone()
        };
        assert!(!slow.passes());
        let drifted = MobilityPerfReport {
            zero_motion_equivalent: false,
            ..report
        };
        assert!(!drifted.passes());
    }

    #[test]
    fn mobility_quick_floor_is_lower() {
        let report = MobilityPerfReport {
            quick: true,
            devices: 8,
            ticks: 8,
            panels: 2,
            cold_wall_ms: 100.0,
            warm_wall_ms: 40.0,
            warm_speedup: 2.5,
            cold_probes: 800,
            warm_probes: 200,
            cold_mean_duty: 0.0,
            warm_mean_duty: 0.8,
            warm_handoffs: 0,
            zero_motion_equivalent: true,
            hysteresis_curve: Vec::new(),
            telemetry: null_block_json(),
        };
        assert_eq!(report.floor(), 1.5);
        assert!(report.passes());
    }

    #[test]
    fn fleet_report_serializes_and_summarizes() {
        let report = FleetPerfReport {
            quick: true,
            samples: vec![BenchSample {
                name: "y",
                mean_ms: 2.5,
                iters: 2,
            }],
            fleet_32_speedup: 4.5,
            telemetry: null_block_json(),
        };
        let json = report.to_json();
        assert!(json.contains("\"pr\": 3"));
        assert!(json.contains("\"fleet_32_speedup\": 4.50"));
        assert!(json.contains("\"pass\": true"));
        assert!(report.passes());
        assert!(report.summary().contains("fleet 32-device speedup"));
        let failing = FleetPerfReport {
            fleet_32_speedup: 2.0,
            ..report
        };
        assert!(!failing.passes());
    }

    #[test]
    fn sharded_report_serializes_and_gates_on_every_axis() {
        let report = ShardedPerfReport {
            quick: true,
            logical_cores: 4,
            samples: vec![BenchSample {
                name: "s",
                mean_ms: 1.0,
                iters: 2,
            }],
            probe_grid_speedup: 2.1,
            mobility_tick_speedup: 1.6,
            churn_bit_identical: true,
            thread_scaling_skipped: false,
            thread_scaling: vec![ThreadScalingPoint {
                workers: 4,
                shards: 4,
                min_ms: 2.0,
                speedup: 3.2,
                efficiency: 0.8,
                steals: 2,
                mean_queue_wait_ms: 0.01,
            }],
            allocs_per_tick: Some(0.0),
            telemetry: null_block_json(),
        };
        let json = report.to_json();
        assert!(json.contains("\"pr\": 8"));
        assert!(json.contains("\"probe_grid_speedup\": 2.10"));
        assert!(json.contains("\"mobility_tick_speedup\": 1.60"));
        assert!(json.contains("\"thread_scaling_skipped\": false"));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"pass\": true"));
        assert!(report.passes());
        // Each gate fails the smoke on its own.
        let slow_soa = ShardedPerfReport {
            probe_grid_speedup: 1.2,
            ..report.clone()
        };
        assert!(!slow_soa.passes());
        let slow_tick = ShardedPerfReport {
            mobility_tick_speedup: 1.1,
            ..report.clone()
        };
        assert!(!slow_tick.passes());
        let drifted = ShardedPerfReport {
            churn_bit_identical: false,
            ..report.clone()
        };
        assert!(!drifted.passes());
        let sublinear = ShardedPerfReport {
            thread_scaling: vec![ThreadScalingPoint {
                efficiency: 0.3,
                ..report.thread_scaling[0]
            }],
            ..report.clone()
        };
        assert!(!sublinear.passes());
        // A single-core host skips the scaling gate but stamps the skip.
        let single_core = ShardedPerfReport {
            thread_scaling_skipped: true,
            thread_scaling: Vec::new(),
            ..report
        };
        assert!(single_core.passes());
        assert!(single_core
            .to_json()
            .contains("\"thread_scaling_skipped\": true"));
    }

    /// The CI zero-alloc assertion: after warm-up, the per-tick hot
    /// kernel (scratch probes + memoized plan sweeps) must not touch
    /// the heap at all in debug-assert builds. Run filtered
    /// (`cargo test -p llama-bench steady_state`) so no sibling test
    /// allocates concurrently against the process-global counter.
    #[test]
    fn steady_state_tick_is_allocation_free() {
        match allocs_per_tick() {
            Some(allocs) => assert_eq!(
                allocs, 0.0,
                "steady-state mobility tick kernel allocated {allocs} times per tick"
            ),
            None => assert!(!alloc_counter::enabled()),
        }
    }

    #[test]
    fn report_serializes_and_summarizes() {
        let report = PerfReport {
            quick: true,
            samples: vec![BenchSample {
                name: "x",
                mean_ms: 1.5,
                iters: 3,
            }],
            heatmap_31x31_speedup: 6.0,
            single_point_speedup: 2.0,
            telemetry: null_block_json(),
        };
        let json = report.to_json();
        assert!(json.contains("\"heatmap_31x31_speedup\": 6.00"));
        assert!(json.contains("\"pass\": true"));
        assert!(report.passes());
        assert!(report.summary().contains("heatmap 31x31 speedup"));
    }
}
