//! `expts --joint` — joint vs independent multi-surface serving
//! (`BENCH_PR9.json`).
//!
//! Two measurements, one artifact:
//!
//! * **quality** — on the `office-floor` and `warehouse-aisle` zoo
//!   rooms, the MaxMin min-power delta between the independent
//!   per-panel search and the joint block-coordinate refinement over
//!   the superposed multi-surface field ([`RoomScenario::
//!   joint_comparison`](llama_core::rooms::RoomScenario::joint_comparison)),
//!   with the descent telemetry (rounds, coupled probes, cross-term
//!   energy) the scheduler reports;
//! * **performance** — the coupled-evaluation hot path
//!   ([`CoupledEvaluator::powers_dbm`]) timed against the same
//!   evaluator at zero coupling (which short-circuits to the
//!   independent home-field physics, bitwise). The CI gate is the
//!   *ratio*: superposing K panels' cross terms may cost at most
//!   [`COUPLED_SLOWDOWN_CEILING`]× the independent evaluation, so the
//!   joint search's per-probe bill stays a bounded multiple of
//!   Algorithm 1's.

use llama_core::fleet::Fleet;
use llama_core::panels::{CoupledEvaluator, JointConfig, PanelArray};
use llama_core::rooms;
use metasurface::stack::BiasState;
use propagation::coupling::CouplingConfig;

use crate::perf::{stamp_report, time_ms, BenchSample};
use rfmath::telemetry::null_block_json;

/// Zoo rooms the quality comparison runs on.
pub const JOINT_ROOMS: [&str; 2] = ["office-floor", "warehouse-aisle"];

/// Minimum lift (dB) the joint search must show over the independent
/// biases on at least one room for [`JointPerfReport::passes`]. The
/// descent starts *at* the independent solution, so any strictly
/// positive delta is genuine cross-panel energy the independent search
/// cannot see; 0.01 dB keeps the gate off the float noise floor.
pub const JOINT_LIFT_FLOOR_DB: f64 = 0.01;

/// The joint search may never end below its own starting point; this is
/// the float-dust tolerance on that monotonicity contract.
pub const JOINT_REGRESSION_TOLERANCE_DB: f64 = 1e-9;

/// Ceiling on `coupled eval time / zero-coupling eval time` — the
/// CI-gated throughput floor on the coupled-evaluation hot path,
/// expressed as a machine-independent ratio.
pub const COUPLED_SLOWDOWN_CEILING: f64 = 8.0;

/// Devices in the synthetic coupled-evaluation timing workload.
const EVAL_DEVICES: usize = 16;

/// Panels in the synthetic coupled-evaluation timing workload.
const EVAL_PANELS: usize = 3;

/// One room's joint-vs-independent comparison.
#[derive(Clone, Debug)]
pub struct JointRoomResult {
    /// Zoo room name.
    pub room: &'static str,
    /// MaxMin min power of the independent per-panel search, dBm.
    pub independent_min_dbm: f64,
    /// MaxMin min power after the joint refinement, dBm.
    pub joint_min_dbm: f64,
    /// `joint − independent`, dB (the scheduler's own `lift_db`).
    pub lift_db: f64,
    /// Block-coordinate descent rounds the joint search ran.
    pub rounds: usize,
    /// Whether the descent converged inside the round cap.
    pub converged: bool,
    /// Probes spent on the superposed field (on top of the independent
    /// warm-up's bill).
    pub coupled_probes: usize,
    /// Fraction of total received energy arriving through cross-panel
    /// terms at the joint solution.
    pub cross_energy_fraction: f64,
}

/// Timing + quality summary of the joint multi-surface path
/// (`BENCH_PR9.json`).
#[derive(Clone, Debug)]
pub struct JointPerfReport {
    /// Whether the run used the reduced quick-mode sample budget.
    pub quick: bool,
    /// Individual workload timings.
    pub samples: Vec<BenchSample>,
    /// Per-room quality comparisons.
    pub rooms: Vec<JointRoomResult>,
    /// Coupled / zero-coupling best-of-N evaluation time ratio on the
    /// synthetic 3-panel workload (gated by
    /// [`COUPLED_SLOWDOWN_CEILING`]).
    pub coupled_slowdown: f64,
    /// Coupled device-evaluations per second at the best-of-N time.
    pub coupled_evals_per_sec: f64,
    /// Aggregated telemetry block (single-line JSON object). The joint
    /// bench times its passes directly, so this stays the null stamp;
    /// `expts --trace` is the instrumented face of the joint path.
    pub telemetry: String,
}

impl JointPerfReport {
    /// True when the joint search lifts at least one room by
    /// [`JOINT_LIFT_FLOOR_DB`], never regresses below its independent
    /// starting point anywhere, and the coupled evaluation stays within
    /// [`COUPLED_SLOWDOWN_CEILING`]× of the independent path.
    pub fn passes(&self) -> bool {
        !self.rooms.is_empty()
            && self
                .rooms
                .iter()
                .all(|r| r.lift_db >= -JOINT_REGRESSION_TOLERANCE_DB)
            && self.rooms.iter().any(|r| r.lift_db >= JOINT_LIFT_FLOOR_DB)
            && self.coupled_slowdown.is_finite()
            && self.coupled_slowdown <= COUPLED_SLOWDOWN_CEILING
    }

    /// Renders the report as a JSON document (hand-assembled; no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 9,\n");
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"eval_devices\": {EVAL_DEVICES},\n"));
        out.push_str(&format!("  \"eval_panels\": {EVAL_PANELS},\n"));
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ms\": {:.6}, \"iters\": {}}}{comma}\n",
                s.name, s.mean_ms, s.iters
            ));
        }
        out.push_str("  ],\n  \"rooms\": [\n");
        for (i, r) in self.rooms.iter().enumerate() {
            let comma = if i + 1 < self.rooms.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"room\": \"{}\", \"independent_min_dbm\": {:.4}, \
                 \"joint_min_dbm\": {:.4}, \"lift_db\": {:.6}, \"rounds\": {}, \
                 \"converged\": {}, \"coupled_probes\": {}, \
                 \"cross_energy_fraction\": {:.6}}}{comma}\n",
                r.room,
                r.independent_min_dbm,
                r.joint_min_dbm,
                r.lift_db,
                r.rounds,
                r.converged,
                r.coupled_probes,
                r.cross_energy_fraction
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"coupled_slowdown\": {:.3},\n",
            self.coupled_slowdown
        ));
        out.push_str(&format!(
            "  \"coupled_evals_per_sec\": {:.1},\n",
            self.coupled_evals_per_sec
        ));
        out.push_str(&format!(
            "  \"lift_floor_db\": {JOINT_LIFT_FLOOR_DB},\n  \
             \"slowdown_ceiling\": {COUPLED_SLOWDOWN_CEILING:.1},\n  \"pass\": {}\n}}\n",
            self.passes()
        ));
        out
    }

    /// One-line console summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== Joint multi-surface serving summary\n");
        for s in &self.samples {
            out.push_str(&format!("{:>38}: {:>10.3} ms/iter\n", s.name, s.mean_ms));
        }
        for r in &self.rooms {
            out.push_str(&format!(
                "{:>38}: {:>+10.3} dB ({} rounds{}, {} coupled probes, \
                 cross energy {:.1}%)\n",
                format!("{} joint lift", r.room),
                r.lift_db,
                r.rounds,
                if r.converged { ", converged" } else { "" },
                r.coupled_probes,
                r.cross_energy_fraction * 100.0
            ));
        }
        out.push_str(&format!(
            "{:>38}: {:>10.2} x (ceiling {COUPLED_SLOWDOWN_CEILING:.1}, pass: {})\n",
            "coupled-eval slowdown",
            self.coupled_slowdown,
            self.passes()
        ));
        out
    }
}

/// Runs the joint-vs-independent comparison on the zoo rooms and times
/// the coupled-evaluation hot path. `quick` trims the sample budget for
/// CI smoke use.
pub fn run_joint(quick: bool) -> JointPerfReport {
    let cfg = JointConfig::default();
    let mut samples = Vec::new();
    let mut room_results = Vec::new();
    for room in JOINT_ROOMS {
        let scenario = rooms::build(room, crate::SEED).expect("zoo rooms exist");
        let (independent, joint) = scenario.joint_comparison(cfg);
        let stats = joint.joint.expect("the joint run reports its stats");
        room_results.push(JointRoomResult {
            room,
            independent_min_dbm: independent.min_power_dbm(),
            joint_min_dbm: joint.min_power_dbm(),
            lift_db: stats.lift_db,
            rounds: stats.rounds,
            converged: stats.converged,
            coupled_probes: stats.coupled_probes,
            cross_energy_fraction: stats.cross_energy_fraction,
        });
    }
    // The office-floor joint search, timed end to end (independent
    // warm-up + descent), next to the independent search alone.
    let office = rooms::build("office-floor", crate::SEED).expect("zoo rooms exist");
    let sched_iters = if quick { 2 } else { 4 };
    let (joint_sched_ms, _) = time_ms(sched_iters, || office.joint_comparison(cfg).1);
    samples.push(BenchSample {
        name: "office_floor_joint_scheduler",
        mean_ms: joint_sched_ms,
        iters: sched_iters,
    });

    // The coupled-evaluation hot path: K-panel superposed powers per
    // bias vector, against the same evaluator with coupling disabled
    // (bitwise the independent home-field physics).
    let fleet = Fleet::mixed_wifi_ble(EVAL_DEVICES, 2021);
    let array = PanelArray::distributed(fleet.design.clone(), EVAL_PANELS);
    let assignment = array.assign(&fleet, &llama_core::panels::Assignment::BestReference);
    let biases: Vec<BiasState> = (0..EVAL_PANELS)
        .map(|k| BiasState::new(4.0 + 7.0 * k as f64, 25.0 - 6.0 * k as f64))
        .collect();
    let eval_iters = if quick { 20 } else { 100 };
    let mut coupled = CoupledEvaluator::new(
        &fleet,
        &array,
        &assignment,
        CouplingConfig::indoor_default(),
    );
    let (coupled_mean, coupled_min) = time_ms(eval_iters, || coupled.powers_dbm(&biases));
    samples.push(BenchSample {
        name: "coupled_eval_16x3_superposed",
        mean_ms: coupled_mean,
        iters: eval_iters,
    });
    let mut home_only =
        CoupledEvaluator::new(&fleet, &array, &assignment, CouplingConfig::disabled());
    let (home_mean, home_min) = time_ms(eval_iters, || home_only.powers_dbm(&biases));
    samples.push(BenchSample {
        name: "coupled_eval_16x3_zero_coupling",
        mean_ms: home_mean,
        iters: eval_iters,
    });

    JointPerfReport {
        quick,
        samples,
        rooms: room_results,
        coupled_slowdown: coupled_min / home_min.max(1e-12),
        coupled_evals_per_sec: EVAL_DEVICES as f64 / (coupled_min / 1e3).max(1e-12),
        telemetry: null_block_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_joint_report_passes_its_own_gates() {
        let report = run_joint(true);
        assert_eq!(report.rooms.len(), JOINT_ROOMS.len());
        for r in &report.rooms {
            assert!(r.independent_min_dbm.is_finite());
            assert!(r.joint_min_dbm.is_finite());
            assert!(r.rounds >= 1);
            assert!(r.coupled_probes > 0);
            assert!(r.cross_energy_fraction > 0.0 && r.cross_energy_fraction < 1.0);
        }
        assert!(report.passes(), "joint gates failed:\n{}", report.summary());
        let json = report.to_json();
        assert!(json.contains("\"pr\": 9"));
        assert!(json.contains("\"office-floor\""));
        assert!(json.contains("\"warehouse-aisle\""));
        assert!(json.contains("\"coupled_slowdown\""));
        assert!(json.contains("\"pass\": true"));
    }
}
