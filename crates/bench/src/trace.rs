//! Trace harness behind `expts --trace` and `expts --trace-overhead`:
//! the JSONL face of the telemetry plane, plus the CI gate that keeps
//! the plane cheap enough to leave compiled in.
//!
//! `--trace <room>` runs a zoo room start to finish with a
//! [`RingRecorder`] attached to every layer — the mobility engine
//! (tick-phase spans, fault and handoff edges), the panel scheduler
//! (per-panel sweep spans), and a single-worker [`FleetServer`] pass
//! over the room's fleet (job enqueue/complete events) — then runs the
//! whole thing *again* under the same seed and demands the two event
//! logs be **byte-identical**. Events carry only logical `(seq, tick)`
//! stamps and seed-deterministic payloads (wall-clock lands in the
//! aggregated histograms only), so any diff means nondeterminism crept
//! into the serving stack, and the trace doubles as a regression gate.
//!
//! `--trace-overhead` times the same room with a null recorder and with
//! a live ring and gates the ratio at [`OVERHEAD_CEILING`]. On a
//! single-core runner the timing is too noisy to gate hard, so the
//! report soft-passes there (recorded, not enforced).

use std::sync::Arc;

use control::server::FleetServer;
use llama_core::faults::{FaultPlan, FaultWindow, PanelOutage};
use llama_core::panels::PanelScheduler;
use llama_core::rooms;
use llama_core::telemetry::{RecorderHandle, RingRecorder};
use llama_core::{Fleet, PanelArray};
use rfmath::units::Seconds;

use crate::perf::{stamp_report, time_ms};

/// Jobs staged through the single-worker server pass (the room's fleet
/// snapshot, repeated): enough to land on more than one shard without
/// bloating the log.
pub const TRACE_SERVER_JOBS: usize = 4;

/// Max ring-over-null wall-clock ratio the overhead gate allows.
pub const OVERHEAD_CEILING: f64 = 1.05;

/// One deterministic trace capture of a zoo room.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Catalog name of the room traced.
    pub room: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Events captured in the ring (first run).
    pub events: usize,
    /// Events dropped because the ring was full.
    pub dropped: u64,
    /// Whether two same-seed captures were byte-identical JSONL.
    pub deterministic: bool,
    /// The JSONL event log of the first capture, one event per line.
    pub jsonl: String,
    /// The aggregated telemetry block of the first capture.
    pub telemetry: String,
}

/// Every event family the acceptance gate requires in a room trace:
/// server, scheduler, sim-tick and fault coverage.
const REQUIRED_KINDS: [&str; 5] = [
    "job_enqueued",
    "job_completed",
    "sweep_span",
    "tick_phase",
    "fault_injected",
];

impl TraceReport {
    /// Captures room `name` under `seed` twice and compares the logs
    /// (`Err` on an unknown room, listing the catalog).
    pub fn run(name: &str, seed: u64) -> Result<Self, String> {
        let (first_jsonl, first_agg, events, dropped) = traced_pass(name, seed)?;
        let (second_jsonl, _, _, _) = traced_pass(name, seed)?;
        Ok(Self {
            room: name.to_string(),
            seed,
            events,
            dropped,
            deterministic: first_jsonl == second_jsonl,
            jsonl: first_jsonl,
            telemetry: first_agg,
        })
    }

    /// True when the capture replayed byte-identically and every
    /// required event family showed up.
    pub fn passes(&self) -> bool {
        self.deterministic
            && self.events > 0
            && REQUIRED_KINDS
                .iter()
                .all(|k| self.jsonl.contains(&format!("\"type\": \"{k}\"")))
    }

    /// Human-readable capture summary.
    pub fn summary(&self) -> String {
        let mut kinds: Vec<String> = REQUIRED_KINDS
            .iter()
            .map(|k| {
                let n = self.jsonl.matches(&format!("\"type\": \"{k}\"")).count();
                format!("{k} {n}")
            })
            .collect();
        kinds.sort();
        format!(
            "trace: {room}, seed {seed} — {events} events ({dropped} dropped)\n\
             replay: {replay}\n\
             coverage: {kinds}\n\
             {verdict}",
            room = self.room,
            seed = self.seed,
            events = self.events,
            dropped = self.dropped,
            replay = if self.deterministic {
                "byte-identical"
            } else {
                "DIVERGED"
            },
            kinds = kinds.join(", "),
            verdict = if self.passes() { "PASS" } else { "FAIL" },
        )
    }

    /// A small JSON header describing the capture (the event log itself
    /// is the JSONL artifact, written separately).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"trace_room\": \"{}\",\n", self.room));
        stamp_report(&mut out, &trace_plan(self.seed), &self.telemetry);
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str(&format!("  \"pass\": {}\n", self.passes()));
        out.push_str("}\n");
        out
    }
}

/// The scripted fault plan every trace runs under: one mid-run outage
/// of panel 0, so the log always exercises the injection, re-home and
/// revival paths (the same window the chaos sweep scripts).
fn trace_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::with_rates(seed, 0.0, 0.0, 0.0);
    plan.outages.push(PanelOutage {
        panel: 0,
        window: FaultWindow {
            start: Seconds(3.0),
            duration: Seconds(3.0),
        },
    });
    plan
}

/// One fully-traced capture: the room under the scripted outage, then a
/// single-worker server pass over the room's fleet. Returns
/// `(events_jsonl, aggregate_json, event_count, dropped)`.
fn traced_pass(name: &str, seed: u64) -> Result<(String, String, usize, u64), String> {
    let mut scenario = rooms::build(name, seed).ok_or_else(|| {
        format!(
            "unknown scenario {name:?}; known scenarios: {}",
            rooms::SCENARIOS.join(", ")
        )
    })?;
    let ring = Arc::new(RingRecorder::default());
    let handle = RecorderHandle::new(ring.clone());

    // The server pass serves the *initial* fleet snapshot, so grab the
    // jobs before the simulation mutates the world in place.
    let jobs: Vec<(Fleet, PanelArray)> = (0..TRACE_SERVER_JOBS)
        .map(|_| (scenario.fleet.fleet().clone(), scenario.array.clone()))
        .collect();

    let _sim = scenario.run_traced(trace_plan(seed), handle.clone());

    // Single worker: event order across workers is only deterministic
    // when there is exactly one of them (results are deterministic at
    // any width — the trace pins width for the log's sake).
    let scheduler = PanelScheduler::max_min().with_recorder(handle.clone());
    let server = FleetServer::new(1).with_recorder(handle.clone());
    let (results, _stats) = server.try_serve_with_stats(
        jobs.iter().collect(),
        |_, (fleet, array): &(Fleet, PanelArray)| scheduler.run(fleet, array),
    );
    if results.iter().any(|r| r.is_err()) {
        return Err(format!("trace server pass failed on {name:?}"));
    }

    Ok((
        ring.events_jsonl(),
        handle.aggregate_json(),
        ring.event_count(),
        ring.dropped(),
    ))
}

/// The telemetry overhead gate: the same room timed with the null
/// recorder and with a live ring.
#[derive(Clone, Debug)]
pub struct OverheadReport {
    /// Room used as the workload.
    pub room: String,
    /// Timing iterations per arm (best-of is compared).
    pub iters: u64,
    /// Best wall-clock with the null recorder, milliseconds.
    pub null_ms: f64,
    /// Best wall-clock with a live ring recorder, milliseconds.
    pub ring_ms: f64,
    /// `ring_ms / null_ms`.
    pub overhead: f64,
    /// Whether the host exposed only one logical core (gate softens).
    pub single_core: bool,
}

impl OverheadReport {
    /// Times room `name` under `seed` with both recorders, `iters`
    /// runs each (`Err` on an unknown room).
    pub fn run(name: &str, seed: u64, iters: u64) -> Result<Self, String> {
        let build = |seed| {
            rooms::build(name, seed).ok_or_else(|| {
                format!(
                    "unknown scenario {name:?}; known scenarios: {}",
                    rooms::SCENARIOS.join(", ")
                )
            })
        };
        // Interleave-free best-of-N per arm; a fresh room each run
        // because the simulation consumes its fleet.
        build(seed)?; // validate the name once before timing
        let (_, null_ms) = time_ms(iters, || {
            let mut scenario = build(seed).expect("validated above");
            scenario.run_traced(FaultPlan::none(), RecorderHandle::null())
        });
        let (_, ring_ms) = time_ms(iters, || {
            let mut scenario = build(seed).expect("validated above");
            let handle = RecorderHandle::new(Arc::new(RingRecorder::default()));
            scenario.run_traced(FaultPlan::none(), handle)
        });
        let single_core = std::thread::available_parallelism()
            .map(|n| n.get() == 1)
            .unwrap_or(true);
        Ok(Self {
            room: name.to_string(),
            iters,
            null_ms,
            ring_ms,
            overhead: ring_ms / null_ms.max(1e-12),
            single_core,
        })
    }

    /// True when the ring stays within [`OVERHEAD_CEILING`] of the null
    /// recorder. A single-core host soft-passes: the measurement is
    /// recorded but too noisy to fail CI on.
    pub fn passes(&self) -> bool {
        self.single_core || self.overhead <= OVERHEAD_CEILING
    }

    /// Human-readable gate summary.
    pub fn summary(&self) -> String {
        format!(
            "telemetry overhead: {room}, best of {iters}\n\
             null {null:.2} ms, ring {ring:.2} ms — {ratio:.3}x (ceiling {ceil:.2}{soft})\n\
             {verdict}",
            room = self.room,
            iters = self.iters,
            null = self.null_ms,
            ring = self.ring_ms,
            ratio = self.overhead,
            ceil = OVERHEAD_CEILING,
            soft = if self.single_core {
                ", soft: single core"
            } else {
                ""
            },
            verdict = if self.passes() { "PASS" } else { "FAIL" },
        )
    }

    /// Renders the gate as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"overhead_room\": \"{}\",\n", self.room));
        stamp_report(
            &mut out,
            &FaultPlan::none(),
            &rfmath::telemetry::null_block_json(),
        );
        out.push_str(&format!("  \"iters\": {},\n", self.iters));
        out.push_str(&format!("  \"null_ms\": {:.3},\n", self.null_ms));
        out.push_str(&format!("  \"ring_ms\": {:.3},\n", self.ring_ms));
        out.push_str(&format!("  \"overhead\": {:.4},\n", self.overhead));
        out.push_str(&format!("  \"ceiling\": {OVERHEAD_CEILING:.2},\n"));
        out.push_str(&format!("  \"single_core\": {},\n", self.single_core));
        out.push_str(&format!("  \"pass\": {}\n", self.passes()));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_room_lists_the_catalog() {
        let err = TraceReport::run("no-such-room", 1).unwrap_err();
        assert!(err.contains("office-floor"));
        assert!(OverheadReport::run("no-such-room", 1, 1)
            .unwrap_err()
            .contains("warehouse-aisle"));
    }

    #[test]
    fn warehouse_trace_is_deterministic_and_covers_every_layer() {
        let report = TraceReport::run("warehouse-aisle", crate::SEED).unwrap();
        assert!(report.passes(), "{}", report.summary());
        assert!(report.deterministic);
        // The scripted outage shows up with its recovery, and the log
        // carries logical stamps only.
        assert!(report.jsonl.contains("\"type\": \"fault_recovered\""));
        assert!(report.jsonl.starts_with("{\"seq\": 0, \"tick\": 0,"));
        let json = report.to_json();
        assert!(json.contains("\"machine\""));
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.contains("\"pass\": true"));
    }

    #[test]
    fn overhead_gate_measures_both_arms() {
        let report = OverheadReport::run("conference-room", crate::SEED, 1).unwrap();
        assert!(report.null_ms > 0.0);
        assert!(report.ring_ms > 0.0);
        assert!(report.overhead.is_finite());
        let json = report.to_json();
        assert!(json.contains("\"overhead_room\": \"conference-room\""));
        assert!(json.contains("\"ceiling\": 1.05"));
    }
}
