//! `expts` — regenerate the paper's tables and figures from the command
//! line, and time the batched surface-response engine.
//!
//! ```text
//! expts                               # list experiments
//! expts all                           # run everything (slow; fig15/21 sweep full grids)
//! expts fig16 alg1                    # run a selection
//! expts --bench-json [path] [--quick] # time the engine, write a JSON summary
//! ```
//!
//! `--bench-json` writes a timing summary (default
//! `target/bench-report.json`, untracked; the committed reference is
//! `BENCH_PR2.json`) comparing naive and batched evaluation and exits
//! non-zero when the batched engine falls below the regression floor —
//! the CI perf smoke. `--quick` trims the sample budget for fast smoke
//! runs.

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: expts <id>... | all | --bench-json [path] [--quick]");
        eprintln!("experiments: {}", llama_bench::ALL_IDS.join(", "));
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--bench-json") {
        let quick = args.iter().any(|a| a == "--quick");
        // Bench mode accepts only its own flags plus one optional output
        // path (any position); anything else is a usage error rather
        // than a silently dropped experiment id.
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--bench-json" && *a != "--quick")
            .collect();
        let looks_like_id = |a: &str| llama_bench::ALL_IDS.contains(&a) || a == "all";
        if extras.len() > 1
            || extras.iter().any(|a| a.starts_with("--"))
            || extras.iter().any(|a| looks_like_id(a))
        {
            eprintln!(
                "error: --bench-json takes at most one output path (experiment ids \
                 cannot be combined with bench mode); got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/bench-report.json".to_string());
        let report = llama_bench::perf::run(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: batched engine below the speedup floor — perf regression");
            ExitCode::FAILURE
        };
    }

    let ids: Vec<&str> = if args.len() == 1 && args[0] == "all" {
        llama_bench::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match llama_bench::run(id) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
