//! `expts` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! expts            # list experiments
//! expts all        # run everything (slow; fig15/21 sweep full grids)
//! expts fig16 alg1 # run a selection
//! ```

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: expts <id>... | all");
        eprintln!("experiments: {}", llama_bench::ALL_IDS.join(", "));
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.len() == 1 && args[0] == "all" {
        llama_bench::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match llama_bench::run(id) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
