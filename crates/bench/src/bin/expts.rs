//! `expts` — regenerate the paper's tables and figures from the command
//! line, and time the batched surface-response engine.
//!
//! ```text
//! expts                               # list experiments
//! expts all                           # run everything (slow; fig15/21 sweep full grids)
//! expts fig16 alg1                    # run a selection
//! expts --bench-json [path] [--quick] # time the engine, write a JSON summary
//! expts --fleet [path] [--quick]      # time the fleet engine, write BENCH_PR3-style JSON
//! expts --panels [path] [--quick]     # time the panel array + many-fleet server (BENCH_PR4)
//! expts --mobility [path] [--quick]   # time the mobility simulator, warm vs cold (BENCH_PR5)
//! expts --bench-all [dir] [--quick]   # regenerate every BENCH_PR*.json in one run
//! expts --calibrate-fig20 [samples]   # sweep link calibration knobs vs the paper's 10 dB gap
//! expts --scenario <name> [path]      # simulate a room from the scenario zoo, write JSON
//! expts --chaos [room] [path]         # sweep fault rates over a room, write the degradation curve
//! expts --sharded [path] [--quick]    # time the sharded hot loops: SoA grid, arena ticks, scaling (BENCH_PR8)
//! expts --joint [path] [--quick]      # joint vs independent multi-surface serving on the zoo (BENCH_PR9)
//! expts --matrix [base] [--quick] [--rooms a,b] [--policy a,b] [--fleets a,b]
//!                [--devices a,b] [--threads a,b] [--shards a,b]
//!                                     # run the serving cross product, write <base>.{md,csv,json}
//! expts --trace <room> [path]         # capture a deterministic JSONL event log of a room
//! expts --trace-overhead [room] [path] # gate ring-recorder overhead vs the null recorder
//! ```
//!
//! `--bench-json` writes a timing summary (default
//! `target/bench-report.json`, untracked; the committed reference is
//! `BENCH_PR2.json`) comparing naive and batched evaluation and exits
//! non-zero when the batched engine falls below the regression floor —
//! the CI perf smoke. `--fleet` does the same for the 32-device
//! fleet-serving engine (shared-plan batch vs naive per-device loop;
//! committed reference `BENCH_PR3.json`). `--quick` trims the sample
//! budget for fast smoke runs.

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: expts <id>... | all | --bench-json [path] [--quick] \
             | --fleet [path] [--quick] | --panels [path] [--quick] \
             | --mobility [path] [--quick] | --bench-all [dir] [--quick] \
             | --calibrate-fig20 [samples] | --scenario <name> [path] \
             | --chaos [room] [path] [--joint] | --sharded [path] [--quick] \
             | --joint [path] [--quick] | --trace <room> [path] \
             | --trace-overhead [room] [path] \
             | --matrix [base] [--quick] [--rooms a,b] [--policy a,b] \
             [--fleets a,b] [--devices a,b] [--threads a,b] [--shards a,b]"
        );
        eprintln!("experiments: {}", llama_bench::ALL_IDS.join(", "));
        eprintln!("scenarios: {}", llama_core::rooms::SCENARIOS.join(", "));
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--trace-overhead") {
        let extras: Vec<&String> = args.iter().filter(|a| *a != "--trace-overhead").collect();
        if extras.len() > 2 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --trace-overhead takes an optional room name and an optional \
                 output path; known rooms: {}",
                llama_core::rooms::SCENARIOS.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let room = extras.first().map(|s| s.as_str()).unwrap_or("office-floor");
        let path = extras
            .get(1)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("target/trace-overhead-{room}.json"));
        let report = match llama_bench::trace::OverheadReport::run(room, llama_bench::SEED, 3) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: ring recorder overhead exceeded {:.0}% over the null recorder",
                (llama_bench::trace::OVERHEAD_CEILING - 1.0) * 100.0
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--trace") {
        let extras: Vec<&String> = args.iter().filter(|a| *a != "--trace").collect();
        if extras.is_empty() || extras.len() > 2 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --trace takes a room name and at most one output path; \
                 known rooms: {}",
                llama_core::rooms::SCENARIOS.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let room = extras[0].as_str();
        let path = extras
            .get(1)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("target/trace-{room}.jsonl"));
        let report = match llama_bench::trace::TraceReport::run(room, llama_bench::SEED) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, &report.jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        let header = format!("{}.json", path.trim_end_matches(".jsonl"));
        if let Err(e) = std::fs::write(&header, report.to_json()) {
            eprintln!("error: cannot write {header}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {header}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: trace gate failed — the two same-seed captures diverged or an \
                 event family is missing from the log"
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--scenario") {
        let extras: Vec<&String> = args.iter().filter(|a| *a != "--scenario").collect();
        if extras.is_empty() || extras.len() > 2 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --scenario takes a scenario name and at most one output path; \
                 known scenarios: {}",
                llama_core::rooms::SCENARIOS.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let name = extras[0].as_str();
        let path = extras
            .get(1)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("target/scenario-{name}.json"));
        let report = match llama_bench::scenario::ScenarioReport::run(name, llama_bench::SEED) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: the room never served (zero duty or non-finite power)");
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--chaos") {
        let joint = args.iter().any(|a| a == "--joint");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--chaos" && *a != "--joint")
            .collect();
        if extras.len() > 2 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --chaos takes an optional room name, an optional output path \
                 and the --joint smoke flag; known rooms: {}",
                llama_core::rooms::SCENARIOS.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let room = extras.first().map(|s| s.as_str()).unwrap_or("office-floor");
        let path = extras
            .get(1)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("target/chaos-{room}.json"));
        if joint {
            match llama_bench::chaos::joint_smoke(room, llama_bench::SEED) {
                Ok(line) => println!("{line}"),
                Err(e) => {
                    eprintln!("error: joint smoke failed — {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let report = match llama_bench::chaos::ChaosReport::run(room, llama_bench::SEED) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: chaos gate failed — zero-fault run not bitwise identical, \
                 or the room starved below the duty floor at <= 10% faults"
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--matrix") {
        let quick = args.iter().any(|a| a == "--quick");
        let mut axes = llama_bench::matrix::MatrixAxes::default_axes();
        let mut base: Option<String> = None;
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            match arg {
                "--matrix" | "--quick" => {}
                "--fleets" | "--devices" | "--threads" | "--shards" => {
                    i += 1;
                    let Some(raw) = args.get(i) else {
                        eprintln!("error: {arg} needs a comma-separated list");
                        return ExitCode::FAILURE;
                    };
                    let list = match llama_bench::matrix::MatrixAxes::parse_list(arg, raw) {
                        Ok(list) => list,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match arg {
                        "--fleets" => axes.fleets = list,
                        "--devices" => axes.devices = list,
                        "--threads" => axes.threads = list,
                        _ => axes.shards = list,
                    }
                }
                "--rooms" | "--policy" => {
                    i += 1;
                    let Some(raw) = args.get(i) else {
                        eprintln!("error: {arg} needs a comma-separated name list");
                        return ExitCode::FAILURE;
                    };
                    let known = llama_bench::matrix::MatrixAxes::known_rooms();
                    let allowed: &[&str] = if arg == "--rooms" {
                        &known
                    } else {
                        &llama_bench::matrix::POLICIES
                    };
                    let list = match llama_bench::matrix::MatrixAxes::parse_names(arg, raw, allowed)
                    {
                        Ok(list) => list,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    if arg == "--rooms" {
                        axes.rooms = list;
                    } else {
                        axes.policies = list;
                    }
                }
                _ if arg.starts_with("--") => {
                    eprintln!("error: unknown flag {arg} in --matrix mode");
                    return ExitCode::FAILURE;
                }
                _ => {
                    if base.replace(arg.to_string()).is_some() {
                        eprintln!("error: --matrix takes at most one output base path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            i += 1;
        }
        let base = base.unwrap_or_else(|| "target/matrix".to_string());
        println!(
            "serving matrix: {} cells ({} rooms x {} policies x {} fleets x {} devices \
             x {} threads x {} shards)",
            axes.cells(),
            axes.rooms.len(),
            axes.policies.len(),
            axes.fleets.len(),
            axes.devices.len(),
            axes.threads.len(),
            axes.shards.len()
        );
        let report = llama_bench::matrix::MatrixReport::run(axes, quick);
        print!("{}", report.to_markdown());
        for (ext, body) in [
            ("md", report.to_markdown()),
            ("csv", report.to_csv()),
            ("json", report.to_json()),
        ] {
            let path = format!("{base}.{ext}");
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: a matrix cell produced a non-finite wall-clock");
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--sharded") {
        let quick = args.iter().any(|a| a == "--quick");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--sharded" && *a != "--quick")
            .collect();
        if extras.len() > 1 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --sharded takes at most one output path; got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/sharded-report.json".to_string());
        let report = llama_bench::perf::run_sharded(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: SoA grid or arena tick below its speedup floor, churn \
                 equivalence broken, or thread scaling under the efficiency floor"
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--joint") {
        let quick = args.iter().any(|a| a == "--quick");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--joint" && *a != "--quick")
            .collect();
        if extras.len() > 1 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --joint takes at most one output path; got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/joint-report.json".to_string());
        let report = llama_bench::joint::run_joint(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: joint search regressed below its independent start, lifted no \
                 zoo room, or the coupled evaluation exceeded its slowdown ceiling"
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--bench-all") {
        let quick = args.iter().any(|a| a == "--quick");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--bench-all" && *a != "--quick")
            .collect();
        if extras.len() > 1 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!("error: --bench-all takes at most one output directory");
            return ExitCode::FAILURE;
        }
        let dir = extras.first().map(|s| s.as_str()).unwrap_or(".");
        let mut all_pass = true;
        let mut write = |name: &str, body: String, pass: bool| -> bool {
            let path = format!("{dir}/{name}");
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("error: cannot write {path}: {e}");
                return false;
            }
            println!("wrote {path}");
            all_pass &= pass;
            true
        };
        let engine = llama_bench::perf::run(quick);
        print!("{}", engine.summary());
        if !write("BENCH_PR2.json", engine.to_json(), engine.passes()) {
            return ExitCode::FAILURE;
        }
        let fleet = llama_bench::perf::run_fleet(quick);
        print!("{}", fleet.summary());
        if !write("BENCH_PR3.json", fleet.to_json(), fleet.passes()) {
            return ExitCode::FAILURE;
        }
        let panels = llama_bench::perf::run_panels(quick);
        print!("{}", panels.summary());
        if !write("BENCH_PR4.json", panels.to_json(), panels.passes()) {
            return ExitCode::FAILURE;
        }
        let mobility = llama_bench::perf::run_mobility(quick);
        print!("{}", mobility.summary());
        if !write("BENCH_PR5.json", mobility.to_json(), mobility.passes()) {
            return ExitCode::FAILURE;
        }
        let sharded = llama_bench::perf::run_sharded(quick);
        print!("{}", sharded.summary());
        if !write("BENCH_PR8.json", sharded.to_json(), sharded.passes()) {
            return ExitCode::FAILURE;
        }
        let joint = llama_bench::joint::run_joint(quick);
        print!("{}", joint.summary());
        if !write("BENCH_PR9.json", joint.to_json(), joint.passes()) {
            return ExitCode::FAILURE;
        }
        return if all_pass {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: at least one bench fell below its regression floor");
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--mobility") {
        let quick = args.iter().any(|a| a == "--quick");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--mobility" && *a != "--quick")
            .collect();
        if extras.len() > 1 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --mobility takes at most one output path; got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/mobility-report.json".to_string());
        let report = llama_bench::perf::run_mobility(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: warm-start below the speedup floor or zero-motion \
                 equivalence broken — regression"
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--calibrate-fig20") {
        let extras: Vec<&String> = args.iter().filter(|a| *a != "--calibrate-fig20").collect();
        let samples = match extras.as_slice() {
            [] => 480,
            [n] => match n.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("error: --calibrate-fig20 takes an optional positive sample count");
                    return ExitCode::FAILURE;
                }
            },
            _ => {
                eprintln!("error: --calibrate-fig20 takes at most one sample count");
                return ExitCode::FAILURE;
            }
        };
        print!(
            "{}",
            llama_bench::calibrate::report(llama_bench::SEED, samples)
        );
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--panels") {
        let quick = args.iter().any(|a| a == "--quick");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--panels" && *a != "--quick")
            .collect();
        if extras.len() > 1 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --panels takes at most one output path; got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/panel-report.json".to_string());
        let report = llama_bench::perf::run_panels(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: panel engine below the speedup floor or no min-power gain — regression"
            );
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--fleet") {
        let quick = args.iter().any(|a| a == "--quick");
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--fleet" && *a != "--quick")
            .collect();
        if extras.len() > 1 || extras.iter().any(|a| a.starts_with("--")) {
            eprintln!(
                "error: --fleet takes at most one output path; got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/fleet-report.json".to_string());
        let report = llama_bench::perf::run_fleet(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: fleet engine below the speedup floor — perf regression");
            ExitCode::FAILURE
        };
    }

    if args.iter().any(|a| a == "--bench-json") {
        let quick = args.iter().any(|a| a == "--quick");
        // Bench mode accepts only its own flags plus one optional output
        // path (any position); anything else is a usage error rather
        // than a silently dropped experiment id.
        let extras: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--bench-json" && *a != "--quick")
            .collect();
        let looks_like_id = |a: &str| llama_bench::ALL_IDS.contains(&a) || a == "all";
        if extras.len() > 1
            || extras.iter().any(|a| a.starts_with("--"))
            || extras.iter().any(|a| looks_like_id(a))
        {
            eprintln!(
                "error: --bench-json takes at most one output path (experiment ids \
                 cannot be combined with bench mode); got: {}",
                extras
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return ExitCode::FAILURE;
        }
        let path = extras
            .first()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "target/bench-report.json".to_string());
        let report = llama_bench::perf::run(quick);
        print!("{}", report.summary());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return if report.passes() {
            ExitCode::SUCCESS
        } else {
            eprintln!("error: batched engine below the speedup floor — perf regression");
            ExitCode::FAILURE
        };
    }

    let ids: Vec<&str> = if args.len() == 1 && args[0] == "all" {
        llama_bench::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match llama_bench::run(id) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
