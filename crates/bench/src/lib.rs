//! # llama_bench — regeneration harness for every table and figure
//!
//! One `print_*` function per published result: each runs the
//! corresponding typed experiment from [`llama_core::experiments`] and
//! renders the same rows/series the paper reports, plus the shape checks
//! EXPERIMENTS.md records (who wins, by roughly what factor, where
//! crossovers fall). The `expts` binary dispatches on experiment id;
//! the Criterion benches time the same runners.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc_counter;
pub mod calibrate;
pub mod chaos;
pub mod joint;
pub mod matrix;
pub mod perf;
pub mod scenario;
pub mod trace;

use llama_core::experiments as ex;
use llama_core::render;

/// Default seed used by the regeneration harness (any seed works; this
/// one matches EXPERIMENTS.md).
pub const SEED: u64 = 2021;

/// All experiment ids in paper order.
pub const ALL_IDS: [&str; 18] = [
    "fig2a", "fig2b", "fig8", "fig9", "fig10", "fig11", "table1", "fig12", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "alg1",
];

/// Runs one experiment by id and returns its printed report.
///
/// Unknown ids return an error listing the known ones.
pub fn run(id: &str) -> Result<String, String> {
    match id {
        "fig2a" => Ok(print_fig2a()),
        "fig2b" => Ok(print_fig2b()),
        "fig8" => Ok(print_design(8)),
        "fig9" => Ok(print_design(9)),
        "fig10" => Ok(print_design(10)),
        "fig11" => Ok(print_fig11()),
        "table1" => Ok(print_table1()),
        "fig12" => Ok(print_fig12()),
        "fig15" => Ok(print_fig15()),
        "fig16" => Ok(print_fig16()),
        "fig17" => Ok(print_fig17()),
        "fig18" => Ok(print_fig18()),
        "fig19" => Ok(print_fig19()),
        "fig20" => Ok(print_fig20()),
        "fig21" => Ok(print_fig21()),
        "fig22" => Ok(print_fig22()),
        "fig23" => Ok(print_fig23()),
        "alg1" => Ok(print_alg1()),
        other => Err(format!(
            "unknown experiment {other:?}; known ids: {}",
            ALL_IDS.join(", ")
        )),
    }
}

/// Figure 2(a): Wi-Fi RSSI distributions under match/mismatch.
pub fn print_fig2a() -> String {
    let d = ex::fig2a(SEED, 4000);
    let mut out = String::new();
    out.push_str(&render::histogram_chart(
        "Figure 2a — Wi-Fi RSSI, matched mounts",
        &d.hist_a,
        40,
    ));
    out.push_str(&render::histogram_chart(
        "Figure 2a — Wi-Fi RSSI, mismatched mounts",
        &d.hist_b,
        40,
    ));
    out.push_str(&render::metric(
        "mode gap (paper: ~10 dB)",
        d.mode_gap_db,
        "dB",
    ));
    out
}

/// Figure 2(b): BLE RSSI distributions under match/mismatch.
pub fn print_fig2b() -> String {
    let d = ex::fig2b(SEED, 4000);
    let mut out = String::new();
    out.push_str(&render::histogram_chart(
        "Figure 2b — BLE RSSI, matched mounts",
        &d.hist_a,
        40,
    ));
    out.push_str(&render::histogram_chart(
        "Figure 2b — BLE RSSI, mismatched mounts",
        &d.hist_b,
        40,
    ));
    out.push_str(&render::metric(
        "mode gap (paper: ~10 dB)",
        d.mode_gap_db,
        "dB",
    ));
    out
}

/// Figures 8/9/10: design efficiency curves.
pub fn print_design(which: u8) -> String {
    let curves = match which {
        8 => ex::fig8(81),
        9 => ex::fig9(81),
        _ => ex::fig10(81),
    };
    let xs: Vec<f64> = curves.x_trace.freqs.iter().map(|f| f.ghz()).collect();
    let mut out = render::series_table(
        &format!("Figure {which} — S21 efficiency, {}", curves.name),
        "GHz",
        &[
            ("x-pol eff (dB)", &curves.x_trace.values_db),
            ("y-pol eff (dB)", &curves.y_trace.values_db),
        ],
        &xs,
    );
    out.push_str(&render::metric(
        "worst in-band (2.4-2.5 GHz)",
        curves.worst_in_band_db,
        "dB",
    ));
    out
}

/// Figure 11: bias-dependent efficiency family.
pub fn print_fig11() -> String {
    let fam = ex::fig11(81);
    let xs: Vec<f64> = fam.traces[0].freqs.iter().map(|f| f.ghz()).collect();
    let labels: Vec<String> = fam
        .vy_values
        .iter()
        .map(|v| format!("Vy={v:.0}V (dB)"))
        .collect();
    let columns: Vec<(&str, &[f64])> = labels
        .iter()
        .map(|s| s.as_str())
        .zip(fam.traces.iter().map(|t| t.values_db.as_slice()))
        .collect();
    let mut out = render::series_table(
        "Figure 11 — S21 efficiency under bias combinations (x-pol)",
        "GHz",
        &columns,
        &xs,
    );
    out.push_str(&render::metric(
        "worst in-band (paper: > -8 dB)",
        fam.worst_in_band_db,
        "dB",
    ));
    out
}

/// Table 1: simulated vs published rotation grid.
pub fn print_table1() -> String {
    let t = ex::table1();
    let volts = t.simulated.voltages().to_vec();
    let mut out = String::new();
    out.push_str("== Table 1 — simulated rotation degrees θr(Vx, Vy)\n");
    out.push_str("        Vx →");
    for v in &volts {
        out.push_str(&format!("{v:>8.0}"));
    }
    out.push('\n');
    let flat = t.simulated.flat();
    let n = volts.len();
    for (iy, vy) in volts.iter().enumerate() {
        out.push_str(&format!("Vy {vy:>5.0} |"));
        for ix in 0..n {
            out.push_str(&format!("{:>8.1}", flat[iy * n + ix]));
        }
        out.push('\n');
    }
    let (lo, hi) = t.simulated.magnitude_range();
    out.push_str(&render::metric(
        "simulated |θr| min",
        lo.0,
        "° (paper: 1.9°)",
    ));
    out.push_str(&render::metric(
        "simulated |θr| max",
        hi.0,
        "° (paper: 48.7°)",
    ));
    out.push_str(&render::metric(
        "range overlap vs paper",
        t.range_overlap,
        "",
    ));
    out.push_str(&render::metric(
        "Spearman rho vs paper grid",
        t.spearman_rho,
        "",
    ));
    out
}

/// Figure 12: rotation-angle estimation procedure.
pub fn print_fig12() -> String {
    let est = ex::fig12(SEED);
    let mut out = String::from("== Figure 12 — rotation-angle estimation (§3.4)\n");
    out.push_str(&render::metric("theta0 (co-aligned)", est.theta0.0, "°"));
    out.push_str(&render::metric(
        "min rotation (paper: ~4.8°)",
        est.min_rotation.0,
        "°",
    ));
    out.push_str(&render::metric(
        "max rotation (paper: ~45.1°)",
        est.max_rotation.0,
        "°",
    ));
    out.push_str(&format!(
        "Vmin = ({:.0} V, {:.0} V)   Vmax = ({:.0} V, {:.0} V)\n",
        est.v_min.0 .0, est.v_min.1 .0, est.v_max.0 .0, est.v_max.1 .0
    ));
    out
}

/// Figure 15: transmissive heatmaps + rotation range vs distance.
pub fn print_fig15() -> String {
    let f = ex::fig15(SEED, 13);
    let mut out = String::new();
    for map in &f.heatmaps {
        out.push_str(&render::heatmap(
            &format!("Figure 15 — Rx power heatmap @ {} cm", map.distance_cm),
            &map.volts,
            &map.power_dbm,
        ));
        out.push_str(&format!(
            "   best bias: Vx={:.1} V Vy={:.1} V, spread {:.1} dB\n",
            map.best_bias.vx.0, map.best_bias.vy.0, map.spread_db
        ));
    }
    let xs: Vec<f64> = ex::FIG15_DISTANCES_CM.to_vec();
    let mins: Vec<f64> = f.rotation_min_max_deg.iter().map(|(a, _)| *a).collect();
    let maxs: Vec<f64> = f.rotation_min_max_deg.iter().map(|(_, b)| *b).collect();
    out.push_str(&render::series_table(
        "Figure 15h — rotation range vs distance (paper: 3-45°)",
        "cm",
        &[("min rot (°)", &mins), ("max rot (°)", &maxs)],
        &xs,
    ));
    out
}

/// Figure 16: transmissive power vs distance.
pub fn print_fig16() -> String {
    let f = ex::fig16(SEED);
    let mut out = render::series_table(
        "Figure 16 — received power vs distance (transmissive, mismatch)",
        "cm",
        &[
            ("with surface (dBm)", &f.with_surface_dbm),
            ("without (dBm)", &f.without_surface_dbm),
        ],
        &f.x_values,
    );
    out.push_str(&render::metric(
        "max improvement (paper: up to 15 dB)",
        f.max_improvement_db,
        "dB",
    ));
    out
}

/// Figure 17: power vs operating frequency.
pub fn print_fig17() -> String {
    let f = ex::fig17(SEED);
    let mut out = render::series_table(
        "Figure 17 — received power vs frequency (2.40-2.50 GHz)",
        "GHz",
        &[
            ("with surface (dBm)", &f.with_surface_dbm),
            ("without (dBm)", &f.without_surface_dbm),
        ],
        &f.x_values,
    );
    let min_gain = f
        .with_surface_dbm
        .iter()
        .zip(&f.without_surface_dbm)
        .map(|(w, wo)| w - wo)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&render::metric(
        "min improvement across band (paper: > 10 dB)",
        min_gain,
        "dB",
    ));
    out
}

fn print_capacity(title: &str, study: &ex::CapacityStudy) -> String {
    let mut out = render::series_table(
        title,
        "mW",
        &[
            ("with surface (b/s/Hz)", &study.with_surface),
            ("without (b/s/Hz)", &study.without_surface),
        ],
        &study.tx_mw,
    );
    match study.crossover_mw {
        Some(mw) => out.push_str(&render::metric("surface wins from", mw, "mW")),
        None => out.push_str("surface never wins on this sweep\n"),
    }
    out
}

/// Figure 18: capacity vs Tx power, anechoic.
pub fn print_fig18() -> String {
    let mut out = print_capacity(
        "Figure 18a — capacity vs Tx power (omni, anechoic)",
        &ex::fig18_omni(SEED),
    );
    out.push_str(&print_capacity(
        "Figure 18b — capacity vs Tx power (directional, anechoic)",
        &ex::fig18_directional(SEED),
    ));
    out
}

/// Figure 19: capacity vs Tx power, laboratory multipath.
pub fn print_fig19() -> String {
    let omni = ex::fig19_omni(SEED);
    let mut out = print_capacity(
        "Figure 19a — capacity vs Tx power (omni, laboratory)",
        &omni,
    );
    out.push_str(&print_capacity(
        "Figure 19b — capacity vs Tx power (directional, laboratory)",
        &ex::fig19_directional(SEED),
    ));
    if let Some(mw) = omni.crossover_mw {
        out.push_str(&render::metric(
            "omni multipath crossover (paper: ~2 mW)",
            mw,
            "mW",
        ));
    }
    out
}

/// Figure 20: IoT RSSI distributions with/without the surface.
pub fn print_fig20() -> String {
    let d = ex::fig20(SEED, 4000);
    let mut out = String::new();
    out.push_str(&render::histogram_chart(
        "Figure 20 — ESP8266 RSSI with surface (mismatch setup)",
        &d.hist_a,
        40,
    ));
    out.push_str(&render::histogram_chart(
        "Figure 20 — ESP8266 RSSI without surface",
        &d.hist_b,
        40,
    ));
    out.push_str(&render::metric(
        "mode gap (paper: ~10 dB)",
        d.mode_gap_db,
        "dB",
    ));
    out
}

/// Figure 21: reflective heatmaps.
pub fn print_fig21() -> String {
    let maps = ex::fig21(SEED, 13);
    let mut out = String::new();
    let mut spreads = Vec::new();
    for map in &maps {
        out.push_str(&render::heatmap(
            &format!(
                "Figure 21 — reflective Rx power heatmap @ {} cm",
                map.distance_cm
            ),
            &map.volts,
            &map.power_dbm,
        ));
        spreads.push(map.spread_db);
    }
    out.push_str(&render::metric(
        "mean voltage-dependence spread (flatter than Fig 15)",
        rfmath::stats::mean(&spreads),
        "dB",
    ));
    out
}

/// Figure 22: reflective power and capacity.
pub fn print_fig22() -> String {
    let f = ex::fig22(SEED);
    let mut out = render::series_table(
        "Figure 22 — reflective power vs Tx-surface distance",
        "cm",
        &[
            ("with surface (dBm)", &f.power.with_surface_dbm),
            ("without (dBm)", &f.power.without_surface_dbm),
        ],
        &f.power.x_values,
    );
    out.push_str(&render::series_table(
        "Figure 22 — reflective capacity",
        "cm",
        &[
            ("with surface (b/s/Hz)", &f.capacity_with),
            ("without (b/s/Hz)", &f.capacity_without),
        ],
        &f.power.x_values,
    ));
    out.push_str(&render::metric(
        "max power improvement (paper: up to 17 dB)",
        f.power.max_improvement_db,
        "dB",
    ));
    out
}

/// Figure 23: respiration sensing.
pub fn print_fig23() -> String {
    let f = ex::fig23(SEED);
    let with_series = ex::trace_dbm(&f.with_surface);
    let without_series = ex::trace_dbm(&f.without_surface);
    let mut out = String::new();
    out.push_str(&render::sparkline(
        "Figure 23 — RSS with surface (5 mW)",
        &with_series[..with_series.len().min(240)],
    ));
    out.push_str(&render::sparkline(
        "Figure 23 — RSS without surface (5 mW)",
        &without_series[..without_series.len().min(240)],
    ));
    out.push_str(&render::metric(
        "respiration band SNR with surface",
        f.with_surface.band_snr_db,
        "dB",
    ));
    out.push_str(&render::metric(
        "respiration band SNR without surface",
        f.without_surface.band_snr_db,
        "dB",
    ));
    out.push_str(&format!(
        "true rate {:.1} bpm; detected with surface: {:?} bpm; without: {:?}\n",
        f.true_bpm,
        f.with_surface
            .detected_bpm
            .map(|b| (b * 10.0).round() / 10.0),
        f.without_surface.detected_bpm,
    ));
    out
}

/// Algorithm 1 timing comparison.
pub fn print_alg1() -> String {
    let t = ex::alg1(SEED);
    let mut out = String::from("== Algorithm 1 — sweep timing (paper: ~30 s → ~1 s)\n");
    out.push_str(&render::metric("full 1 V-step scan", t.full_scan_s, "s"));
    out.push_str(&render::metric(
        "coarse-to-fine (N=2, T=5)",
        t.coarse_fine_s,
        "s",
    ));
    out.push_str(&render::metric(
        "speed-up",
        t.full_scan_s / t.coarse_fine_s,
        "×",
    ));
    out.push_str(&render::metric(
        "quality gap (full − fast)",
        t.full_scan_dbm - t.coarse_fine_dbm,
        "dB",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_lists_catalog() {
        let err = run("fig99").unwrap_err();
        assert!(err.contains("fig15"));
    }

    #[test]
    fn fast_experiments_produce_reports() {
        for id in ["fig2a", "fig2b", "table1", "alg1"] {
            let report = run(id).unwrap();
            assert!(report.len() > 100, "{id} report too small");
        }
    }

    #[test]
    fn catalog_ids_are_unique() {
        let mut ids: Vec<&str> = ALL_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_IDS.len());
    }
}
