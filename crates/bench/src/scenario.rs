//! Scenario-zoo runner: simulates a named room configuration from
//! [`llama_core::rooms`] and renders a machine-checkable report.
//!
//! This is the CI face of the zoo — `expts --scenario <name>` runs one
//! room for its seeded tick budget, prints a human summary, writes the
//! JSON artifact, and exits nonzero unless the room actually served
//! (nonzero serving duty, finite served power). Every future
//! optimization that touches geometry, scheduling or the simulator gets
//! smoke-checked against rooms, not just the synthetic line fleet.

use std::sync::Arc;

use llama_core::rooms;
use llama_core::sim::SimReport;
use llama_core::telemetry::{RecorderHandle, RingRecorder};

use crate::perf::stamp_report;

/// Outcome of one scenario run, ready to gate CI on.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Catalog name of the room.
    pub name: String,
    /// One-line room description.
    pub description: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Devices in the room.
    pub devices: usize,
    /// Panels serving it.
    pub panels: usize,
    /// Ticks simulated.
    pub ticks: usize,
    /// Mean serving duty across ticks and panels (the CI gate).
    pub mean_duty: f64,
    /// Mean worst-served device power, dBm.
    pub mean_min_power_dbm: f64,
    /// Total probes spent.
    pub probes: usize,
    /// Full link re-preparations (geometry changes).
    pub links_reprepared: usize,
    /// Cheap link rebinds (orientation/power changes).
    pub links_rebound: usize,
    /// Panel handoffs across the run.
    pub handoffs: usize,
    /// Wall-clock of the simulation, milliseconds.
    pub wall_ms: f64,
    /// Aggregated telemetry block captured by the ring recorder that
    /// rode along with the run (single-line JSON object).
    pub telemetry: String,
}

impl ScenarioReport {
    /// Runs scenario `name` under `seed` (`Err` on an unknown name,
    /// listing the catalog).
    pub fn run(name: &str, seed: u64) -> Result<Self, String> {
        let mut scenario = rooms::build(name, seed).ok_or_else(|| {
            format!(
                "unknown scenario {name:?}; known scenarios: {}",
                rooms::SCENARIOS.join(", ")
            )
        })?;
        // Every zoo run carries a ring recorder so the committed JSON
        // gets a real aggregated telemetry block, not a null stamp.
        let recorder = RecorderHandle::new(Arc::new(RingRecorder::default()));
        let report = scenario.run_traced(llama_core::faults::FaultPlan::none(), recorder.clone());
        Ok(Self::from_sim(
            &scenario,
            &report,
            recorder.aggregate_json(),
        ))
    }

    fn from_sim(scenario: &rooms::RoomScenario, report: &SimReport, telemetry: String) -> Self {
        Self {
            name: scenario.name.to_string(),
            description: scenario.description.to_string(),
            seed: scenario.seed,
            devices: scenario.fleet.len(),
            panels: scenario.array.len(),
            ticks: report.ticks.len(),
            mean_duty: report.mean_duty(),
            mean_min_power_dbm: report.mean_served_min_power_dbm(),
            probes: report.total_probes(),
            links_reprepared: report.total_links_reprepared(),
            links_rebound: report.total_links_rebound(),
            handoffs: report.handoffs,
            wall_ms: report.wall_ms,
            telemetry,
        }
    }

    /// True when the room actually served: some airtime went to serving
    /// and the worst-served power is a real number.
    pub fn passes(&self) -> bool {
        self.mean_duty > 0.0 && self.mean_min_power_dbm.is_finite()
    }

    /// Human-readable run summary.
    pub fn summary(&self) -> String {
        format!(
            "scenario {name}: {desc}\n\
             seed {seed}, {devices} devices, {panels} panels, {ticks} ticks\n\
             mean duty {duty:.3}, mean served min power {power:.1} dBm\n\
             {probes} probes, {reprep} links re-prepared, {rebound} rebound, {handoffs} handoffs\n\
             wall {wall:.1} ms — {verdict}",
            name = self.name,
            desc = self.description,
            seed = self.seed,
            devices = self.devices,
            panels = self.panels,
            ticks = self.ticks,
            duty = self.mean_duty,
            power = self.mean_min_power_dbm,
            probes = self.probes,
            reprep = self.links_reprepared,
            rebound = self.links_rebound,
            handoffs = self.handoffs,
            wall = self.wall_ms,
            verdict = if self.passes() { "PASS" } else { "FAIL" },
        )
    }

    /// Renders the report as a JSON document (hand-assembled; no
    /// external dependencies), including the machine topology.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", self.name));
        out.push_str(&format!("  \"description\": \"{}\",\n", self.description));
        // Scenario-zoo runs are fault-free by construction; the stamp
        // says so explicitly.
        stamp_report(
            &mut out,
            &llama_core::faults::FaultPlan::none(),
            &self.telemetry,
        );
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"devices\": {},\n", self.devices));
        out.push_str(&format!("  \"panels\": {},\n", self.panels));
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"mean_duty\": {:.6},\n", self.mean_duty));
        out.push_str(&format!(
            "  \"mean_min_power_dbm\": {:.3},\n",
            self.mean_min_power_dbm
        ));
        out.push_str(&format!("  \"probes\": {},\n", self.probes));
        out.push_str(&format!(
            "  \"links_reprepared\": {},\n",
            self.links_reprepared
        ));
        out.push_str(&format!("  \"links_rebound\": {},\n", self.links_rebound));
        out.push_str(&format!("  \"handoffs\": {},\n", self.handoffs));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str(&format!("  \"pass\": {}\n", self.passes()));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_lists_the_catalog() {
        let err = ScenarioReport::run("no-such-room", 1).unwrap_err();
        assert!(err.contains("office-floor"));
        assert!(err.contains("warehouse-aisle"));
        assert!(err.contains("conference-room"));
    }

    #[test]
    fn office_floor_serves_and_serializes() {
        let report = ScenarioReport::run("office-floor", crate::SEED).unwrap();
        assert!(report.passes(), "{}", report.summary());
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"office-floor\""));
        assert!(json.contains("\"machine\""));
        assert!(json.contains("\"faults\""));
        assert!(json.contains("\"panel_outage_rate\": 0.0000"));
        assert!(json.contains("\"allocs_per_tick\""));
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"mode\": \"ring\""));
        assert!(json.contains("\"pass\": true"));
        assert!(report.summary().contains("PASS"));
    }
}
