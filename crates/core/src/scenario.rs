//! Scenario builder: fully specified experimental setups.
//!
//! A [`Scenario`] bundles everything a LLAMA experiment needs — endpoint
//! antennas and orientations, carrier, transmit power, deployment
//! geometry, environment, surface design, and the deterministic seed —
//! with builder methods mirroring the knobs the paper's evaluation turns
//! (distance, frequency, power, antenna type, environment, mode).

use metasurface::designs::{self, Design};
use propagation::antenna::{Antenna, OrientedAntenna};
use propagation::environment::Environment;
use propagation::link::{Link, LinkTuning};
use propagation::rays::Deployment;
use rfmath::units::{Degrees, Hertz, Watts};

/// Which endpoint hardware the scenario emulates.
#[derive(Clone, Debug, PartialEq)]
pub enum EndpointKind {
    /// USRP N210 pair with selectable antennas (controlled experiments).
    Usrp,
    /// Wi-Fi AP → ESP8266 station (the low-cost IoT link).
    WifiIot,
    /// BLE wearable → Raspberry Pi central.
    BleWearable,
}

/// A fully specified experiment setup.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Endpoint class.
    pub endpoints: EndpointKind,
    /// Transmit antenna + mount.
    pub tx: OrientedAntenna,
    /// Receive antenna + mount.
    pub rx: OrientedAntenna,
    /// Carrier frequency.
    pub frequency: Hertz,
    /// Transmit power.
    pub tx_power: Watts,
    /// Placement of endpoints and surface.
    pub deployment: Deployment,
    /// Propagation environment.
    pub environment: Environment,
    /// Surface design deployed (when the experiment uses one).
    pub design: Design,
    /// Root seed for all stochastic elements.
    pub seed: u64,
    /// Link-model calibration knobs (defaults = uncalibrated model).
    pub tuning: LinkTuning,
}

impl Scenario {
    /// The paper's §4 controlled transmissive setup: USRP endpoints with
    /// directional panels, orthogonal (fully mismatched) mounts, absorber
    /// environment, surface midway, 36 cm separation.
    pub fn transmissive_default() -> Self {
        Self {
            endpoints: EndpointKind::Usrp,
            tx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(90.0)),
            rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(0.0)),
            frequency: Hertz::from_ghz(2.44),
            tx_power: Watts::from_mw(50.0),
            deployment: Deployment::transmissive_cm(36.0),
            environment: Environment::anechoic(),
            design: designs::fr4_optimized(),
            seed: 1,
            tuning: LinkTuning::default(),
        }
    }

    /// The §5.2 reflective setup: endpoints 70 cm apart on the same side,
    /// surface facing them.
    pub fn reflective_default() -> Self {
        Self {
            deployment: Deployment::reflective_cm(36.0),
            ..Self::transmissive_default()
        }
    }

    /// The Figure 20 low-cost IoT setup: AP dipole to ESP8266 PCB
    /// antenna through the surface in a laboratory environment.
    pub fn wifi_iot_default() -> Self {
        Self {
            endpoints: EndpointKind::WifiIot,
            tx: OrientedAntenna::new(Antenna::ap_dipole(), Degrees(90.0)),
            rx: OrientedAntenna::new(Antenna::esp8266_pcb(), Degrees(0.0)),
            frequency: Hertz::from_ghz(2.442),
            tx_power: Watts::from_mw(100.0),
            deployment: Deployment::transmissive(rfmath::units::Meters(3.0), 0.5),
            // A lived-in room, but at IoT ranges most clutter sits
            // outside the first Fresnel zone: light multipath.
            environment: Environment::Laboratory {
                seed: 1,
                scatterers: 6,
                relative_power: 0.12,
            },
            design: designs::fr4_optimized(),
            seed: 1,
            tuning: LinkTuning::default(),
        }
    }

    /// The Figure 2(b) BLE setup: wearable to Raspberry Pi.
    pub fn ble_default() -> Self {
        Self {
            endpoints: EndpointKind::BleWearable,
            tx: OrientedAntenna::new(Antenna::wearable_chip(), Degrees(90.0)),
            rx: OrientedAntenna::new(Antenna::rpi_onboard(), Degrees(0.0)),
            frequency: Hertz(2.426e9),
            tx_power: Watts::from_mw(1.0),
            deployment: Deployment::transmissive(rfmath::units::Meters(4.0), 0.5),
            environment: Environment::Laboratory {
                seed: 2,
                scatterers: 6,
                relative_power: 0.12,
            },
            design: designs::fr4_optimized(),
            seed: 2,
            tuning: LinkTuning::default(),
        }
    }

    /// Sets the swept distance in centimetres: the Tx–Rx separation for
    /// transmissive/free deployments, or the surface standoff for
    /// reflective ones (matching the paper's figure axes).
    pub fn with_distance_cm(mut self, cm: f64) -> Self {
        let d = rfmath::units::Meters::from_cm(cm);
        self.deployment = match self.deployment.surface {
            propagation::rays::SurfaceMount::Reflective { .. } => {
                self.deployment.with_surface_standoff(d)
            }
            _ => self.deployment.with_endpoint_separation(d),
        };
        self
    }

    /// Sets the carrier frequency.
    pub fn with_frequency(mut self, f: Hertz) -> Self {
        self.frequency = f;
        self
    }

    /// Sets the transmit power.
    pub fn with_tx_power(mut self, p: Watts) -> Self {
        self.tx_power = p;
        self
    }

    /// Sets the relative antenna mismatch: Tx stays put, Rx is rotated
    /// `deg` away from co-alignment.
    pub fn with_mismatch_deg(mut self, deg: f64) -> Self {
        self.rx = OrientedAntenna::new(
            self.rx.antenna.clone(),
            Degrees(self.tx.orientation.0 - deg),
        );
        self
    }

    /// Swaps both endpoints onto the given antenna type.
    pub fn with_antennas(mut self, antenna: Antenna) -> Self {
        self.tx = OrientedAntenna::new(antenna.clone(), self.tx.orientation);
        self.rx = OrientedAntenna::new(antenna, self.rx.orientation);
        self
    }

    /// Sets the propagation environment.
    pub fn with_environment(mut self, env: Environment) -> Self {
        self.environment = env;
        self
    }

    /// Sets the surface design.
    pub fn with_design(mut self, design: Design) -> Self {
        self.design = design;
        self
    }

    /// Sets the deterministic root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link-model calibration knobs (Figure 20 fidelity sweep).
    pub fn with_tuning(mut self, tuning: LinkTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Builds the propagation-layer link for this scenario.
    ///
    /// The scenario's root seed drives *all* stochastic elements, so a
    /// seeded multipath environment is re-derived from it here: the
    /// preset's environment seed acts as a sub-stream index under the
    /// root, making `with_seed` change the channel realization while
    /// keeping distinct presets (Wi-Fi vs BLE rooms) decorrelated.
    pub fn link(&self) -> Link {
        let environment = match self.environment {
            Environment::Laboratory {
                seed,
                scatterers,
                relative_power,
            } => Environment::Laboratory {
                seed: rfmath::rng::SeedSplitter::new(self.seed).derive("environment", seed),
                scatterers,
                relative_power,
            },
            ref other => other.clone(),
        };
        Link {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            frequency: self.frequency,
            tx_power: self.tx_power,
            deployment: self.deployment,
            environment,
            extra_paths: Vec::new(),
            tuning: self.tuning,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_mismatched() {
        let s = Scenario::transmissive_default();
        assert_eq!(s.link().mismatch_deg(), 90.0);
    }

    #[test]
    fn with_mismatch_sets_relative_angle() {
        let s = Scenario::transmissive_default().with_mismatch_deg(30.0);
        assert!((s.link().mismatch_deg() - 30.0).abs() < 1e-9);
        let matched = Scenario::transmissive_default().with_mismatch_deg(0.0);
        assert!(matched.link().mismatch_deg() < 1e-9);
    }

    #[test]
    fn with_distance_adjusts_deployment() {
        let s = Scenario::transmissive_default().with_distance_cm(60.0);
        assert!((s.deployment.tx_rx_distance().cm() - 60.0).abs() < 1e-9);
        let r = Scenario::reflective_default().with_distance_cm(48.0);
        let standoff = r
            .deployment
            .surface_standoff()
            .expect("reflective keeps its surface");
        assert!((standoff.cm() - 48.0).abs() < 1e-9);
        // The endpoint separation is untouched by a reflective sweep.
        assert!((r.deployment.tx_rx_distance().cm() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn root_seed_drives_the_channel_realization() {
        // `seed` is documented as the root of *all* stochastic elements:
        // re-seeding a scenario with a laboratory environment must change
        // the multipath realization (and with it the received power),
        // while equal seeds must reproduce it exactly.
        let p1 = Scenario::wifi_iot_default()
            .with_seed(1)
            .link()
            .received_dbm(None);
        let p2 = Scenario::wifi_iot_default()
            .with_seed(2)
            .link()
            .received_dbm(None);
        let p1_again = Scenario::wifi_iot_default()
            .with_seed(1)
            .link()
            .received_dbm(None);
        assert!(
            (p1.0 - p1_again.0).abs() < 1e-12,
            "same seed must reproduce"
        );
        assert!(
            (p1.0 - p2.0).abs() > 1e-6,
            "different seeds must re-draw the room: {:.3} vs {:.3} dBm",
            p1.0,
            p2.0
        );
        // Anechoic scenarios have no stochastic channel to re-draw.
        let a1 = Scenario::transmissive_default()
            .with_seed(1)
            .link()
            .received_dbm(None);
        let a2 = Scenario::transmissive_default()
            .with_seed(2)
            .link()
            .received_dbm(None);
        assert!((a1.0 - a2.0).abs() < 1e-12);
    }

    #[test]
    fn builders_chain() {
        let s = Scenario::transmissive_default()
            .with_distance_cm(42.0)
            .with_frequency(Hertz::from_ghz(2.48))
            .with_tx_power(Watts::from_mw(2.0))
            .with_seed(99);
        assert_eq!(s.seed, 99);
        assert!((s.frequency.ghz() - 2.48).abs() < 1e-12);
        assert!((s.tx_power.mw() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_presets_differ() {
        assert_eq!(
            Scenario::wifi_iot_default().endpoints,
            EndpointKind::WifiIot
        );
        assert_eq!(Scenario::ble_default().endpoints, EndpointKind::BleWearable);
        assert!(Scenario::ble_default().tx_power.mw() <= 1.0);
    }

    #[test]
    fn with_antennas_swaps_both_ends() {
        let s = Scenario::transmissive_default().with_antennas(Antenna::omni_6dbi());
        assert_eq!(s.tx.antenna.name, "Highfine 6 dBi omni");
        assert_eq!(s.rx.antenna.name, "Highfine 6 dBi omni");
        // Orientations preserved.
        assert_eq!(s.tx.orientation, Degrees(90.0));
    }
}
