//! The end-to-end LLAMA system: surface + PSU + controller + endpoints
//! on one simulation clock.
//!
//! [`LlamaSystem`] is what the paper's Figure 5 draws: the receiver
//! measures power (through a noisy USRP-style chain), reports it over a
//! (possibly lossy) packet channel, the centralized controller runs
//! Algorithm 1 against the PSU's 50 Hz switching budget, and the surface
//! bias converges on the state maximizing link power.

use control::controller::{Controller, FleetReport, Phase};
use control::psu::PowerSupply;
use control::sweep::{coarse_to_fine_multi, Probe, SweepConfig};
use devices::report::{LossyTransport, ReportPacket};
use devices::usrp::{UsrpConfig, UsrpReceiver};
use metasurface::evaluator::StackEvaluator;
use metasurface::response::{Metasurface, SurfaceResponse};
use metasurface::stack::BiasState;
use propagation::signal::rssi_reading;
use rand::rngs::StdRng;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Db, Dbm, Seconds, Volts};

use crate::scenario::Scenario;

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// Bias state the system converged on.
    pub best_bias: BiasState,
    /// Received power at the converged state.
    pub best_power_dbm: Dbm,
    /// Received power with no surface deployed (baseline).
    pub baseline_dbm: Dbm,
    /// Improvement over the baseline.
    pub improvement: Db,
    /// Number of bias states probed.
    pub probes: usize,
    /// Simulated wall-clock the optimization took.
    pub elapsed: Seconds,
}

/// The assembled system.
pub struct LlamaSystem {
    /// The scenario being run.
    pub scenario: Scenario,
    /// The deployed surface.
    pub surface: Metasurface,
    /// The bias supply.
    pub psu: PowerSupply,
    /// Receiver measurement chain.
    pub receiver: UsrpReceiver,
    /// Report transport (loss/corruption injectable).
    pub transport: LossyTransport,
    /// Sweep configuration used by [`LlamaSystem::optimize`].
    pub sweep: SweepConfig,
    /// Effective noise floor of the controller's RSSI feedback chain,
    /// dBm (thermal + implementation + ambient interference). Sweep
    /// measurements of signals near this floor fluctuate by several dB,
    /// which is what erodes convergence at very low transmit power
    /// (the paper's Figure 19 low-power regime).
    pub rssi_floor_dbm: f64,
    rssi_rng: StdRng,
    seed: SeedSplitter,
}

impl LlamaSystem {
    /// Assembles the system for a scenario.
    pub fn new(scenario: Scenario) -> Self {
        let seed = SeedSplitter::new(scenario.seed);
        let surface = Metasurface::new(scenario.design.clone());
        let mut usrp_config = UsrpConfig::paper_default();
        usrp_config.carrier = scenario.frequency;
        usrp_config.tx_power = scenario.tx_power;
        Self {
            receiver: UsrpReceiver::new(usrp_config, &seed),
            transport: LossyTransport::new(0.0, 0.0, &seed),
            surface,
            psu: PowerSupply::tektronix_2230g(),
            sweep: SweepConfig::paper_default(),
            rssi_floor_dbm: -85.0,
            rssi_rng: seed.stream("sweep-rssi"),
            scenario,
            seed,
        }
    }

    /// Enables report-channel fault injection.
    pub fn with_report_faults(mut self, drop_p: f64, corrupt_p: f64) -> Self {
        self.transport = LossyTransport::new(drop_p, corrupt_p, &self.seed);
        self
    }

    /// True received power (no measurement noise) at a bias state.
    pub fn true_power_dbm(&mut self, bias: BiasState) -> Dbm {
        self.surface.set_bias(bias);
        self.scenario.link().received_dbm(Some(&self.surface))
    }

    /// Measured received power at a bias state, through the receiver's
    /// noisy tone-measurement chain.
    pub fn measured_power_dbm(&mut self, bias: BiasState) -> Dbm {
        self.surface.set_bias(bias);
        let amp = self
            .scenario
            .link()
            .received_amplitude_at(Some(&self.surface), Seconds(0.0));
        self.receiver.measure_dbm(amp, 4096)
    }

    /// Baseline power with the surface removed (the paper's 30 s
    /// averaged measurement).
    pub fn baseline_power_dbm(&mut self) -> Dbm {
        let amp = self
            .scenario
            .link()
            .received_amplitude_at(None, Seconds(0.0));
        self.receiver.baseline_dbm(amp, 30)
    }

    /// Runs Algorithm 1 to convergence using direct measurement calls
    /// (fast path used by experiments; timing is computed from the
    /// sweep's switching budget rather than event-stepped).
    pub fn optimize(&mut self) -> OptimizeOutcome {
        let baseline = self.baseline_power_dbm();
        // Borrow-friendly measurement closure over self pieces. The
        // controller consumes RSSI-style single-shot readings: near the
        // effective noise floor these wander by several dB and can
        // mislead the sweep, exactly as on real hardware.
        //
        // The link is bias-independent, so it is built once; each probe
        // then costs a single (evaluator-cached) cascade instead of
        // rebuilding the link and evaluating the surface four times.
        //
        // The search runs on the vector-objective Algorithm 1 core the
        // fleet scheduler uses: a single link is the N = 1 fleet, its
        // objective the identity on the one reading.
        let scenario = self.scenario.clone();
        let link = scenario.link();
        let f = scenario.frequency;
        let surface = &mut self.surface;
        let rng = &mut self.rssi_rng;
        let floor_w = Dbm(self.rssi_floor_dbm).to_watts();
        let outcome = coarse_to_fine_multi(
            &self.sweep,
            |p: Probe| {
                surface.set_bias(BiasState { vx: p.vx, vy: p.vy });
                let response = surface.response(f);
                let amp = link.received_amplitude_with(Some(&response), Seconds(0.0));
                vec![rssi_reading(amp, floor_w, rng).0]
            },
            |m| m[0],
        );
        let best_bias = BiasState {
            vx: outcome.best.vx,
            vy: outcome.best.vy,
        };
        self.surface.set_bias(best_bias);
        let best_power = self.true_power_dbm(best_bias);
        OptimizeOutcome {
            best_bias,
            best_power_dbm: best_power,
            baseline_dbm: baseline,
            improvement: best_power.minus(baseline),
            probes: outcome.probes,
            elapsed: outcome.duration,
        }
    }

    /// Runs the full event-stepped loop: controller state machine, PSU
    /// rate limiting and settling, packetized reports over the lossy
    /// transport. Slower but exercises the whole control plane; returns
    /// the same outcome shape.
    pub fn optimize_realtime(&mut self) -> OptimizeOutcome {
        let baseline = self.baseline_power_dbm();
        let mut controller = Controller::new(self.sweep);
        // Single link: one reading per report, and say so — truncated
        // or padded packets get rejected instead of mis-scored.
        controller.expected_devices = Some(1);
        self.psu.execute("OUTP ON", Seconds(0.0));
        controller.start();

        let mut now = 0.0f64;
        let mut seq = 0u32;
        let mut pending: Option<(f64, FleetReport)> = None;
        let mut last_applied: Option<(Probe, f64)> = None;

        for _ in 0..1_000_000 {
            if controller.phase() == &Phase::Converged {
                break;
            }
            // Deliver a due report (if it survives the transport). The
            // controller consumes fleet-shaped (vector) reports; this
            // single-link system sends one-element vectors.
            let deliver = pending
                .clone()
                .filter(|(due, _)| *due <= now)
                .map(|(_, rep)| rep);
            if deliver.is_some() {
                pending = None;
            }

            let before = controller.events().len();
            controller.step_fleet(&mut self.psu, Seconds(now), deliver);

            // When a probe was applied, schedule its measurement report.
            if controller.events().len() > before {
                if let Some(control::controller::Event::Applied(p)) = controller.events().last() {
                    last_applied = Some((*p, now));
                }
            }
            if let Some((probe, applied_at)) = last_applied {
                // Measurement completes after settling + dwell.
                let report_at = applied_at + self.psu.settling.0 + 0.004;
                if now >= report_at && pending.is_none() {
                    let bias = BiasState {
                        vx: probe.vx,
                        vy: probe.vy,
                    };
                    self.surface.set_bias(bias);
                    let amp = self
                        .scenario
                        .link()
                        .received_amplitude_at(Some(&self.surface), Seconds(now));
                    let power = self.receiver.measure_dbm(amp, 2048);
                    let packet = ReportPacket::new(seq, Seconds(now), power);
                    seq += 1;
                    if let Some(bytes) = self.transport.send(&packet) {
                        if let Ok(decoded) = ReportPacket::decode(bytes) {
                            pending = Some((
                                now,
                                FleetReport {
                                    at: decoded.timestamp(),
                                    powers_dbm: vec![decoded.power.0],
                                },
                            ));
                        }
                    }
                    last_applied = None;
                }
            }
            now += 0.001;
        }

        let (best_probe, _) = controller
            .best()
            .expect("controller converged with a best state");
        let best_bias = BiasState {
            vx: best_probe.vx,
            vy: best_probe.vy,
        };
        self.surface.set_bias(best_bias);
        let best_power = self.true_power_dbm(best_bias);
        OptimizeOutcome {
            best_bias,
            best_power_dbm: best_power,
            baseline_dbm: baseline,
            improvement: best_power.minus(baseline),
            probes: self.psu.switch_count as usize,
            elapsed: Seconds(now),
        }
    }

    /// Full-resolution power heatmap over the (Vx, Vy) plane: the raw
    /// material of Figures 15 and 21. Returns `(voltages, row-major
    /// powers)` with rows indexed by Vy.
    ///
    /// Runs on the batched engine: one [`StackEvaluator`] grid pass
    /// (`O(steps)` per-axis branch solves, parallel rows) feeds a single
    /// prebuilt link, instead of `steps²` full cascade-and-link rebuilds.
    pub fn power_heatmap(&mut self, steps: usize) -> (Vec<f64>, Vec<f64>) {
        let steps = steps.max(2);
        let volts: Vec<f64> = (0..steps)
            .map(|i| 30.0 * i as f64 / (steps - 1) as f64)
            .collect();
        // Evaluate at the supply-clamped voltages (what `set_bias` would
        // deliver) while labeling the axis with the nominal sweep values.
        let applied: Vec<f64> = volts
            .iter()
            .map(|v| v.clamp(0.0, self.surface.v_max.0))
            .collect();
        let f = self.scenario.frequency;
        let link = self.scenario.link();
        let evaluator = StackEvaluator::new(&self.surface.design().stack, f);
        let grid = evaluator
            .eval_grid(&applied, &applied)
            .into_iter()
            .map(|r| link.received_dbm_with(Some(&SurfaceResponse::new(f, r))).0)
            .collect();
        (volts, grid)
    }
}

/// Adapter running the §3.4 rotation-estimation procedure on a live
/// system: the turntable rotates the receive antenna, the PSU sets the
/// bias, power is read through the true link.
pub struct SystemRig<'a> {
    /// The system under test.
    pub system: &'a mut LlamaSystem,
}

impl control::estimator::RotationRig for SystemRig<'_> {
    fn set_rx_orientation(&mut self, orientation: rfmath::units::Degrees) {
        let antenna = self.system.scenario.rx.antenna.clone();
        self.system.scenario.rx = propagation::antenna::OrientedAntenna::new(antenna, orientation);
    }

    fn set_bias(&mut self, vx: Volts, vy: Volts) {
        self.system.surface.set_bias(BiasState { vx, vy });
    }

    fn measure_power(&mut self) -> f64 {
        let amp = self
            .system
            .scenario
            .link()
            .received_amplitude_at(Some(&self.system.surface), Seconds(0.0));
        amp.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn optimize_beats_baseline_substantially() {
        let mut sys = LlamaSystem::new(Scenario::transmissive_default().with_distance_cm(36.0));
        let out = sys.optimize();
        assert!(
            out.improvement.0 > 8.0,
            "improvement = {:.1} dB",
            out.improvement.0
        );
        assert_eq!(out.probes, 50);
        assert!((out.elapsed.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn realtime_loop_converges_like_fast_path() {
        let mut fast = LlamaSystem::new(Scenario::transmissive_default());
        let fast_out = fast.optimize();
        let mut rt = LlamaSystem::new(Scenario::transmissive_default());
        let rt_out = rt.optimize_realtime();
        assert!(
            (rt_out.best_power_dbm.0 - fast_out.best_power_dbm.0).abs() < 3.0,
            "realtime {:.1} vs fast {:.1} dBm",
            rt_out.best_power_dbm.0,
            fast_out.best_power_dbm.0
        );
        // Real-time loop respects the 50 Hz budget: ≥ 1 s of sim time.
        assert!(rt_out.elapsed.0 >= 1.0);
    }

    #[test]
    fn realtime_loop_survives_lossy_reports() {
        let mut sys =
            LlamaSystem::new(Scenario::transmissive_default()).with_report_faults(0.2, 0.1);
        let out = sys.optimize_realtime();
        assert!(
            out.improvement.0 > 5.0,
            "lossy-transport improvement = {:.1} dB",
            out.improvement.0
        );
        assert!(sys.transport.dropped > 0, "faults must have fired");
    }

    #[test]
    fn heatmap_shape_and_range() {
        let mut sys = LlamaSystem::new(Scenario::transmissive_default());
        let (volts, grid) = sys.power_heatmap(7);
        assert_eq!(volts.len(), 7);
        assert_eq!(grid.len(), 49);
        let hi = rfmath::stats::max(&grid);
        let lo = rfmath::stats::min(&grid);
        assert!(hi - lo > 5.0, "bias must shape the power: {lo:.1}..{hi:.1}");
    }

    #[test]
    fn heatmap_respects_supply_ceiling() {
        // A lowered v_max must clamp the evaluated bias exactly like
        // set_bias does on the per-point path.
        let mut sys = LlamaSystem::new(Scenario::transmissive_default());
        sys.surface.v_max = rfmath::units::Volts(15.0);
        let (volts, grid) = sys.power_heatmap(7);
        let top = volts.len() - 1;
        assert_eq!(volts[top], 30.0, "axis keeps the nominal sweep labels");
        let expected = sys.true_power_dbm(BiasState::new(30.0, 30.0)).0;
        assert!(
            (grid[top * volts.len() + top] - expected).abs() < 1e-9,
            "clamped corner: {} vs {}",
            grid[top * volts.len() + top],
            expected
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sys = LlamaSystem::new(Scenario::transmissive_default().with_seed(42));
            sys.optimize().best_power_dbm.0
        };
        assert_eq!(run(), run());
    }
}
