//! The unified telemetry plane, re-exported as its canonical face.
//!
//! The machinery lives in [`rfmath::telemetry`] because the control
//! plane (`control::server`, `control::controller`) sits below
//! `llama-core` in the dependency graph and must report into the same
//! [`Recorder`]. Downstream code should import from here:
//!
//! ```
//! use llama_core::telemetry::{RecorderHandle, RingRecorder};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingRecorder::new(1024));
//! let handle = RecorderHandle::new(ring.clone());
//! assert!(handle.enabled());
//! ```
//!
//! See the module docs in `rfmath` for the determinism contract: the
//! event ring carries only logical `(seq, tick)` stamps and
//! seed-deterministic payloads, while wall-clock durations flow into
//! the aggregated histograms only.

pub use rfmath::telemetry::{
    null_block_json, LogHistogram, NullRecorder, Recorder, RecorderHandle, RingRecorder, Span,
    TelemetryEvent,
};
