//! Multi-panel fleet serving: K independently-biased surfaces under one
//! controller.
//!
//! The single-surface scheduler ([`crate::fleet::Scheduler`]) trades
//! every device off against one shared 2-knob bias, so past a handful of
//! mutually mismatched devices only time division scales. The paper's §7
//! outlook — and the software-defined-metasurface line of related work
//! (tiled multi-panel apertures, per-user path programming across
//! several walls) — points at the next lever: *spatial multiplexing
//! across panels*. This module models it:
//!
//! * [`Panel`] — one surface of the array: its own [`Design`], its own
//!   bias rails, an orientation sector it covers, and optionally its own
//!   mounting position along the link
//!   ([`Deployment::with_surface_fraction`]);
//! * [`PanelArray`] — K panels with per-device assignment policies
//!   ([`Assignment`]): by mount-orientation sector, by measured
//!   per-panel reference power (the polarization-aware policy, built on
//!   [`propagation::link::PreparedLink::with_surface_placement`]),
//!   round-robin, or explicit;
//! * [`PanelScheduler`] — generalizes the shared-bias scheduler from one
//!   bias to a per-panel bias vector: assign devices to panels, then run
//!   one Algorithm 1 search *per panel* over its sub-fleet, reusing the
//!   [`FleetEvaluator`] shared-plan batch path with one
//!   [`PlanCache`] per distinct design so a carrier served on every
//!   panel compiles once, not K times;
//! * [`serve_fleets`] / [`serve_panel_fleets`] — the typed front of
//!   [`control::server::FleetServer`]: many fleets multiplexed over the
//!   sharded work-stealing queue and scoped worker pool, each outcome
//!   bit-identical to serial execution.
//!
//! With K = 1 the panel scheduler *is* the shared-bias scheduler (the
//! proptests pin exact equality); with K panels each compromise spans
//! only the devices in its sector, which is what lifts the worst-device
//! power on large mixed fleets (the `expts --panels` headline).
//!
//! ```
//! use llama_core::fleet::{Fleet, FleetDevice};
//! use llama_core::panels::{PanelArray, PanelScheduler};
//! use rfmath::units::Degrees;
//!
//! let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
//! fleet.push(FleetDevice::wifi("door sensor", Degrees(-60.0), 250.0, 1));
//! fleet.push(FleetDevice::ble("wrist band", Degrees(65.0), 300.0, 2));
//!
//! let array = PanelArray::uniform(fleet.design.clone(), 2);
//! let outcome = PanelScheduler::max_min().run(&fleet, &array);
//! // Orthogonally mounted devices land on different panels…
//! assert_ne!(outcome.assignment[0], outcome.assignment[1]);
//! // …and every device is served continuously at its panel's bias.
//! assert!(outcome.per_device.iter().all(|d| d.duty == 1.0));
//! ```

use control::server::FleetServer;
use control::sweep::WarmConfig;
use metasurface::designs::Design;
use metasurface::evaluator::PlanCache;
use metasurface::response::SurfaceResponse;
use metasurface::stack::BiasState;
use propagation::link::PreparedLink;
use propagation::rays::Deployment;
use rfmath::units::{Degrees, Seconds};
use rfmath::vec2::Point2;

use crate::fleet::{DeviceService, Fleet, FleetEvaluator, FleetOutcome, Policy, Scheduler};
use crate::scenario::Scenario;

/// The reference bias the measurement-driven assignment probes each
/// panel at (the workhorse mid-range state used across the experiments).
/// The mobility simulator's handoff margins are measured at the same
/// state, so an assignment and the hysteresis layered on it agree about
/// what "better panel" means.
pub(crate) const REFERENCE_BIAS: BiasState = BiasState {
    vx: rfmath::units::Volts(6.0),
    vy: rfmath::units::Volts(6.0),
};

/// Where a panel hangs relative to the links it serves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PanelMount {
    /// At a fraction of each served link's line (the legacy scalar
    /// mounting; clamped to the physical range by the deployment).
    Fraction(f64),
    /// At a fixed room position, meters — every served link keeps its
    /// own endpoints but re-mounts its surface here, so each panel sees
    /// a genuinely different illumination angle per device.
    Position(Point2),
}

/// One surface of a panel array: an independently biased aperture
/// covering an orientation sector.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Display label ("panel N", "east wall", …).
    pub label: String,
    /// The surface design this panel is cut from. Panels sharing a
    /// design share compiled evaluation plans through a [`PlanCache`].
    pub design: Design,
    /// Center of the receive-orientation sector this panel faces,
    /// degrees (polarization axes have period 180°).
    pub sector_center: Degrees,
    /// Panel mounting (`None` keeps every device's own deployment
    /// untouched).
    pub mount: Option<PanelMount>,
}

impl Panel {
    /// A panel of `design` facing the sector centred at `sector_center`.
    pub fn new(label: impl Into<String>, design: Design, sector_center: Degrees) -> Self {
        Self {
            label: label.into(),
            design,
            sector_center,
            mount: None,
        }
    }

    /// Mounts the panel at `fraction` of every served link's line
    /// (clamped to the physical range by the deployment).
    pub fn at_surface_fraction(mut self, fraction: f64) -> Self {
        self.mount = Some(PanelMount::Fraction(fraction));
        self
    }

    /// Mounts the panel at a fixed room position (meters).
    pub fn mounted_at(mut self, position: Point2) -> Self {
        self.mount = Some(PanelMount::Position(position));
        self
    }

    /// The illumination angle this panel presents to a device's link,
    /// if the panel carries a mount and the deployment a surface.
    pub fn incidence_for(&self, base: Deployment) -> Option<Degrees> {
        self.deployment_for(base).incidence_deg()
    }

    /// The scenario a device sees when served by this panel: its own
    /// geometry and radio, this panel's design and mounting position.
    pub(crate) fn scenario_for(&self, base: &Scenario) -> Scenario {
        let mut scenario = base.clone().with_design(self.design.clone());
        scenario.deployment = self.deployment_for(scenario.deployment);
        scenario
    }

    /// The deployment a device's link takes under this panel.
    pub(crate) fn deployment_for(&self, base: Deployment) -> Deployment {
        match self.mount {
            Some(PanelMount::Fraction(fraction)) => base.with_surface_fraction(fraction),
            Some(PanelMount::Position(position)) => base.with_surface_at(position),
            None => base,
        }
    }
}

/// K independently-biased panels behind one controller.
#[derive(Clone, Debug)]
pub struct PanelArray {
    panels: Vec<Panel>,
}

impl PanelArray {
    /// An array from explicit panels.
    ///
    /// # Panics
    /// Panics on an empty panel list — an array with no apertures cannot
    /// serve anything.
    pub fn new(panels: Vec<Panel>) -> Self {
        assert!(!panels.is_empty(), "a panel array needs at least one panel");
        Self { panels }
    }

    /// K identical-design panels with sector centers spread uniformly
    /// over the polarization half-circle — the reference array of the
    /// benches and the 32-device acceptance gate.
    pub fn uniform(design: Design, k: usize) -> Self {
        assert!(k >= 1, "a panel array needs at least one panel");
        let panels = (0..k)
            .map(|i| {
                let center = -90.0 + 180.0 * (i as f64 + 0.5) / k as f64;
                Panel::new(format!("panel {i}"), design.clone(), Degrees(center))
            })
            .collect();
        Self { panels }
    }

    /// [`PanelArray::uniform`] with the panels additionally *distributed
    /// along the served links*: panel `i` hangs at surface fraction
    /// `(i + 1) / (k + 1)`, so each panel sees genuinely different
    /// bounce-path physics. On a plain uniform array every panel
    /// measures bit-identically (same design, same mount point) and
    /// measured-margin policies — [`Assignment::BestReference`], the
    /// mobility simulator's handoff hysteresis — degenerate to sector
    /// ties; a distributed array is what makes movement change the
    /// per-panel margins, and with them the handoff story.
    pub fn distributed(design: Design, k: usize) -> Self {
        assert!(k >= 1, "a panel array needs at least one panel");
        let panels = (0..k)
            .map(|i| {
                let center = -90.0 + 180.0 * (i as f64 + 0.5) / k as f64;
                Panel::new(format!("panel {i}"), design.clone(), Degrees(center))
                    .at_surface_fraction((i as f64 + 1.0) / (k as f64 + 1.0))
            })
            .collect();
        Self { panels }
    }

    /// Panels of one design hung at explicit room positions (meters):
    /// the 2-D analogue of [`PanelArray::distributed`]. Each panel's
    /// sector center is its bearing from the room origin folded into the
    /// polarization half-circle `[-90°, 90°)`, so wall panels on
    /// opposite sides of a room naturally cover different orientation
    /// sectors; every served link re-mounts its surface at the panel's
    /// position, giving genuinely per-panel incidence angles.
    pub fn mounted(design: Design, positions: &[Point2]) -> Self {
        assert!(
            !positions.is_empty(),
            "a panel array needs at least one panel"
        );
        let panels = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let bearing = p.y.atan2(p.x).to_degrees();
                // Fold into the polarization half-circle [-90, 90).
                let center = (bearing + 90.0).rem_euclid(180.0) - 90.0;
                Panel::new(format!("panel {i}"), design.clone(), Degrees(center)).mounted_at(p)
            })
            .collect();
        Self { panels }
    }

    /// The panels, in array order.
    pub fn panels(&self) -> &[Panel] {
        &self.panels
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// Always false — construction rejects empty arrays.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// One shared [`PlanCache`] per *distinct design* across the array
    /// (keyed by design name, the catalog identity): panels cut from the
    /// same design share every compiled cascade plan.
    pub(crate) fn plan_caches(&self) -> Vec<(&'static str, PlanCache)> {
        let mut caches: Vec<(&'static str, PlanCache)> = Vec::new();
        for panel in &self.panels {
            if !caches.iter().any(|(name, _)| *name == panel.design.name) {
                caches.push((panel.design.name, PlanCache::new(&panel.design.stack)));
            }
        }
        caches
    }

    pub(crate) fn cache_for<'c>(
        caches: &'c [(&'static str, PlanCache)],
        design: &Design,
    ) -> &'c PlanCache {
        &caches
            .iter()
            .find(|(name, _)| *name == design.name)
            .expect("every panel design has a cache")
            .1
    }

    /// Assigns every device to a panel under `assignment`; element `d`
    /// is the panel index serving fleet device `d`.
    pub fn assign(&self, fleet: &Fleet, assignment: &Assignment) -> Vec<usize> {
        self.assign_with_caches(fleet, assignment, &self.plan_caches())
    }

    /// [`PanelArray::assign`] drawing any reference-response plans from
    /// caller-owned caches, so the panel scheduler compiles each
    /// design × carrier plan once per run instead of once for assignment
    /// and again for evaluation.
    pub(crate) fn assign_with_caches(
        &self,
        fleet: &Fleet,
        assignment: &Assignment,
        caches: &[(&'static str, PlanCache)],
    ) -> Vec<usize> {
        match assignment {
            Assignment::ByOrientation => fleet
                .devices()
                .iter()
                .map(|device| {
                    let mount = device.scenario.rx.orientation;
                    let mut best = 0;
                    for (k, panel) in self.panels.iter().enumerate() {
                        if axis_distance_deg(mount, panel.sector_center)
                            < axis_distance_deg(mount, self.panels[best].sector_center)
                        {
                            best = k;
                        }
                    }
                    best
                })
                .collect(),
            Assignment::RoundRobin => (0..fleet.len()).map(|d| d % self.panels.len()).collect(),
            Assignment::Explicit(map) => {
                assert_eq!(
                    map.len(),
                    fleet.len(),
                    "explicit assignment must cover every device"
                );
                assert!(
                    map.iter().all(|&k| k < self.panels.len()),
                    "explicit assignment references a panel outside the array"
                );
                map.clone()
            }
            Assignment::BestReference => self.assign_best_reference(fleet, caches),
        }
    }

    /// Measurement-driven balanced assignment: each device's link is
    /// prepared once ([`PreparedLink`], scatter cached), re-targeted at
    /// every panel's mounting position
    /// ([`PreparedLink::with_surface_placement`]), and scored by
    /// received power under the panel's reference-bias response; devices
    /// then greedily take their best-scoring panel with capacity left
    /// (⌈n/K⌉ per panel), in fleet order. Reference-power ties —
    /// identical panels of a uniform array measure bit-identically —
    /// break toward the panel whose sector is nearest the device's
    /// mount, then the lower index, so the policy degrades to a
    /// load-balanced [`Assignment::ByOrientation`] rather than to
    /// fleet-order blocking.
    fn assign_best_reference(
        &self,
        fleet: &Fleet,
        caches: &[(&'static str, PlanCache)],
    ) -> Vec<usize> {
        let n = fleet.len();
        let k = self.panels.len();
        let capacity = n.div_ceil(k);
        let mut load = vec![0usize; k];
        let mut out = Vec::with_capacity(n);
        // The reference response depends only on (design, carrier) —
        // memoize it across devices instead of re-running the cascade
        // per device × panel.
        let mut responses: Vec<(usize, u64, SurfaceResponse)> = Vec::new();
        for device in fleet.devices() {
            let f = device.scenario.frequency;
            let prepared = PreparedLink::new(device.scenario.link());
            let mount = device.scenario.rx.orientation;
            // (panel index, reference power, mount-to-sector distance).
            let mut best: Option<(usize, f64, f64)> = None;
            for (idx, panel) in self.panels.iter().enumerate() {
                if load[idx] >= capacity {
                    continue;
                }
                let response = match responses
                    .iter()
                    .find(|(p, bits, _)| *p == idx && *bits == f.0.to_bits())
                {
                    Some((_, _, r)) => *r,
                    None => {
                        let plan = Self::cache_for(caches, &panel.design).plan(f);
                        let r =
                            SurfaceResponse::new(plan.frequency(), plan.response(REFERENCE_BIAS));
                        responses.push((idx, f.0.to_bits(), r));
                        r
                    }
                };
                let moved = prepared
                    .with_surface_placement(panel.deployment_for(device.scenario.deployment));
                let power = moved.received_dbm_with(Some(&response)).0;
                let sector = axis_distance_deg(mount, panel.sector_center);
                let better = match best {
                    None => true,
                    Some((_, best_power, best_sector)) => {
                        power > best_power || (power == best_power && sector < best_sector)
                    }
                };
                if better {
                    best = Some((idx, power, sector));
                }
            }
            let (idx, _, _) = best.expect("capacity ⌈n/K⌉·K ≥ n leaves a panel open");
            load[idx] += 1;
            out.push(idx);
        }
        out
    }

    /// Splits the fleet into per-panel sub-fleets under a precomputed
    /// assignment; element `k` holds panel `k`'s sub-fleet (the panel's
    /// design and mounting applied to each member's scenario) and the
    /// members' fleet-order indices.
    pub fn subfleets(&self, fleet: &Fleet, assignment: &[usize]) -> Vec<(Fleet, Vec<usize>)> {
        assert_eq!(assignment.len(), fleet.len(), "one panel per device");
        let mut out: Vec<(Fleet, Vec<usize>)> = self
            .panels
            .iter()
            .map(|p| (Fleet::new(p.design.clone()), Vec::new()))
            .collect();
        for (d, (&panel_idx, device)) in assignment.iter().zip(fleet.devices()).enumerate() {
            let panel = &self.panels[panel_idx];
            let mut member = device.clone();
            member.scenario = panel.scenario_for(&device.scenario);
            out[panel_idx].0.push(member);
            out[panel_idx].1.push(d);
        }
        out
    }

    /// Per-panel probe matrices on the shared-plan batch path:
    /// `result[k][b][i]` is the power of panel `k`'s `i`-th assigned
    /// device under `biases[b]`, with compiled plans shared across
    /// panels of the same design. The fast side of the `expts --panels`
    /// smoke and the 1e-12 equivalence proptest.
    pub fn batched_panel_matrices(
        &self,
        fleet: &Fleet,
        assignment: &[usize],
        biases: &[BiasState],
    ) -> Vec<Vec<Vec<f64>>> {
        let caches = self.plan_caches();
        self.subfleets(fleet, assignment)
            .into_iter()
            .enumerate()
            .map(|(k, (subfleet, _))| {
                if subfleet.is_empty() {
                    return vec![Vec::new(); biases.len()];
                }
                let cache = Self::cache_for(&caches, &self.panels[k].design);
                FleetEvaluator::with_plan_cache(&subfleet, cache).powers_matrix(biases)
            })
            .collect()
    }

    /// The naive per-panel reference loop — every device of every panel
    /// deploys its own surface and rebuilds its link per probe, exactly
    /// like [`Fleet::naive_powers_matrix`]. Kept as the equivalence
    /// contract and the perf baseline of the `--panels` smoke.
    pub fn naive_panel_matrices(
        &self,
        fleet: &Fleet,
        assignment: &[usize],
        biases: &[BiasState],
    ) -> Vec<Vec<Vec<f64>>> {
        self.subfleets(fleet, assignment)
            .into_iter()
            .map(|(subfleet, _)| {
                if subfleet.is_empty() {
                    return vec![Vec::new(); biases.len()];
                }
                subfleet.naive_powers_matrix(biases)
            })
            .collect()
    }
}

/// Angular distance between two polarization axes, degrees (period 180).
fn axis_distance_deg(a: Degrees, b: Degrees) -> f64 {
    let d = (a.0 - b.0).rem_euclid(180.0);
    d.min(180.0 - d)
}

/// How devices map onto panels.
#[derive(Clone, Debug, PartialEq)]
pub enum Assignment {
    /// Each device goes to the panel whose sector center is nearest its
    /// mount orientation (axis distance, ties toward the lower panel
    /// index) — the geometric default.
    ByOrientation,
    /// `device d → panel d mod K` (load balancing with no geometry).
    RoundRobin,
    /// Caller-specified `device → panel` map.
    Explicit(Vec<usize>),
    /// Balanced greedy by measured reference-bias power per panel,
    /// capacity ⌈n/K⌉; power ties (identical panels) break toward the
    /// nearest sector, so uniform arrays behave like a load-balanced
    /// [`Assignment::ByOrientation`] (see [`PanelArray::assign`]).
    BestReference,
}

/// What one panel contributed to a panel-scheduling run.
#[derive(Clone, Debug)]
pub struct PanelAllocation {
    /// Panel label, copied from the array.
    pub panel: String,
    /// Fleet-order indices of the devices this panel serves.
    pub devices: Vec<usize>,
    /// The panel's own scheduling outcome (its bias, per-device service,
    /// probe history); [`FleetOutcome::empty`] for an idle panel.
    pub outcome: FleetOutcome,
}

/// Outcome of one panel-scheduling run.
#[derive(Clone, Debug)]
pub struct PanelOutcome {
    /// Device → panel map used.
    pub assignment: Vec<usize>,
    /// Per-panel allocations, in array order.
    pub per_panel: Vec<PanelAllocation>,
    /// Per-device service in fleet order (each device served by its
    /// panel's bias).
    pub per_device: Vec<DeviceService>,
    /// Total bias states probed across all panels.
    pub probes: usize,
    /// Wall-clock of the slowest panel — panels carry independent bias
    /// rails and tune concurrently.
    pub elapsed: Seconds,
    /// The fleet-wide min served power, dBm (`-∞` for an empty fleet).
    pub score: f64,
}

impl PanelOutcome {
    /// The worst served power across the fleet, dBm (`-∞` when empty).
    pub fn min_power_dbm(&self) -> f64 {
        if self.per_device.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.per_device
            .iter()
            .map(|d| d.power_dbm)
            .fold(f64::INFINITY, f64::min)
    }

    /// Aggregate duty-cycled throughput, bit/s/Hz.
    pub fn total_throughput_bits_hz(&self) -> f64 {
        self.per_device.iter().map(|d| d.throughput_bits_hz).sum()
    }

    /// True when `other` is the *same allocation*: identical device →
    /// panel assignment, per-panel biases, per-device served powers and
    /// fleet score, compared exactly (bit-for-bit on the floats). Probe
    /// counts and histories are deliberately excluded — a warm-started
    /// or reused re-optimization that lands on the same allocation at a
    /// fraction of the probe bill *is* equivalent, and that distinction
    /// is the mobility simulator's whole point.
    pub fn same_allocation(&self, other: &PanelOutcome) -> bool {
        self.assignment == other.assignment
            && self.score.to_bits() == other.score.to_bits()
            && self.panel_biases() == other.panel_biases()
            && self.per_device.len() == other.per_device.len()
            && self
                .per_device
                .iter()
                .zip(&other.per_device)
                .all(|(a, b)| a.power_dbm.to_bits() == b.power_dbm.to_bits() && a.bias == b.bias)
    }

    /// The bias each panel converged on (`None` for idle panels or
    /// per-device time division).
    pub fn panel_biases(&self) -> Vec<Option<BiasState>> {
        self.per_panel
            .iter()
            .map(|p| p.outcome.shared_bias)
            .collect()
    }
}

/// Generalizes [`Scheduler`] from one shared bias to a per-panel bias
/// vector: assignment, then one Algorithm 1 search per panel over its
/// sub-fleet, on the shared-plan batch path.
#[derive(Clone, Debug)]
pub struct PanelScheduler {
    /// The per-panel scheduling core (sweep strategy, policy, TDM slot).
    /// A [`Policy::Favor`] `favored` index is interpreted in *fleet*
    /// order: the panel serving that device runs the isolation
    /// objective against its sector neighbours (falling back to max-min
    /// when the device has its panel to itself — a dedicated aperture
    /// *is* isolation), and every other panel runs max-min.
    pub base: Scheduler,
    /// Device → panel mapping policy.
    pub assignment: Assignment,
}

impl PanelScheduler {
    /// Max-min fairness per panel, devices assigned by mount
    /// orientation — the panel generalization of [`Scheduler::max_min`].
    pub fn max_min() -> Self {
        Self {
            base: Scheduler::max_min(),
            assignment: Assignment::ByOrientation,
        }
    }

    /// Per-device time division within each panel.
    pub fn time_division() -> Self {
        Self {
            base: Scheduler::time_division(),
            ..Self::max_min()
        }
    }

    /// Sets the assignment policy.
    pub fn with_assignment(mut self, assignment: Assignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Runs assignment plus per-panel Algorithm 1 against the array.
    /// An empty fleet yields an empty outcome through the same guard as
    /// [`Scheduler::run`] (every panel schedules an empty sub-fleet).
    pub fn run(&self, fleet: &Fleet, array: &PanelArray) -> PanelOutcome {
        // One cache set serves both assignment (reference responses) and
        // per-panel evaluation — each design × carrier compiles once per
        // run.
        self.run_with_caches(fleet, array, &array.plan_caches())
    }

    /// [`PanelScheduler::run`] drawing compiled plans from caller-owned
    /// caches — the sharded serving path: a worker thread serving many
    /// `(fleet, array)` jobs passes shard-local [`PlanCache`] handles
    /// (see [`SharedPlanCache::handle`](metasurface::SharedPlanCache))
    /// so every job reuses process-wide compilations instead of
    /// recompiling per job. The caches **must** cover every design in
    /// `array` (keyed by design name).
    pub fn run_with_caches(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        caches: &[(&'static str, PlanCache)],
    ) -> PanelOutcome {
        let assignment = array.assign_with_caches(fleet, &self.assignment, caches);
        self.run_assigned(
            fleet,
            array,
            assignment,
            caches,
            |_, scheduler, sub, eval| scheduler.run_with_evaluator(sub, eval),
        )
    }

    /// Warm-start re-optimization against a previous outcome: every
    /// panel keeps `prev`'s device assignment and refines from its own
    /// previous bias through [`Scheduler::run_warm`] (per-panel cold
    /// widening included). Re-assignment under mobility is deliberately
    /// *not* this method's job — the simulator's hysteresis policy
    /// ([`crate::sim::HandoffPolicy`]) owns that decision, because a
    /// bare re-assignment per tick would flap devices between panels on
    /// every fade. This is the stateless warm front; the event-stepped
    /// simulator ([`crate::sim::MobilitySim`]) adds persistent
    /// evaluators on top so unchanged links are not even re-prepared.
    pub fn run_warm(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        prev: &PanelOutcome,
        warm: &WarmConfig,
    ) -> PanelOutcome {
        assert_eq!(
            prev.assignment.len(),
            fleet.len(),
            "previous outcome covers a different fleet"
        );
        assert_eq!(
            prev.per_panel.len(),
            array.len(),
            "previous outcome ran on a different array"
        );
        let caches = array.plan_caches();
        self.run_assigned(
            fleet,
            array,
            prev.assignment.clone(),
            &caches,
            |k, scheduler, sub, eval| {
                scheduler.run_warm(sub, eval, &prev.per_panel[k].outcome, warm)
            },
        )
    }

    /// The shared per-panel scheduling loop: split `fleet` under a fixed
    /// `assignment`, run `schedule` per populated panel (empty panels
    /// take the empty-fleet guard), and assemble the array outcome.
    fn run_assigned(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        assignment: Vec<usize>,
        caches: &[(&'static str, PlanCache)],
        schedule: impl Fn(usize, &Scheduler, &Fleet, &FleetEvaluator) -> FleetOutcome,
    ) -> PanelOutcome {
        let subfleets = array.subfleets(fleet, &assignment);
        let mut per_panel = Vec::with_capacity(array.len());
        let mut services: Vec<Option<DeviceService>> = vec![None; fleet.len()];
        let mut probes = 0usize;
        let mut elapsed = 0.0f64;
        for (k, (subfleet, members)) in subfleets.into_iter().enumerate() {
            let scheduler = self.panel_scheduler(&members);
            // Empty sub-fleets take `run`'s empty-fleet guard; populated
            // ones reuse the array-wide plan cache for their design.
            let outcome = if subfleet.is_empty() {
                scheduler.run(&subfleet)
            } else {
                let cache = PanelArray::cache_for(caches, &array.panels()[k].design);
                let evaluator = FleetEvaluator::with_plan_cache(&subfleet, cache);
                schedule(k, &scheduler, &subfleet, &evaluator)
            };
            probes += outcome.probes;
            elapsed = elapsed.max(outcome.elapsed.0);
            for (service, &d) in outcome.per_device.iter().zip(&members) {
                services[d] = Some(service.clone());
            }
            per_panel.push(PanelAllocation {
                panel: array.panels()[k].label.clone(),
                devices: members,
                outcome,
            });
        }

        let per_device: Vec<DeviceService> = services
            .into_iter()
            .map(|s| s.expect("every device is assigned to exactly one panel"))
            .collect();
        let mut outcome = PanelOutcome {
            assignment,
            per_panel,
            per_device,
            probes,
            elapsed: Seconds(elapsed),
            score: f64::NEG_INFINITY,
        };
        outcome.score = outcome.min_power_dbm();
        outcome
    }

    /// The scheduler one panel runs, translating a fleet-order
    /// [`Policy::Favor`] index into the panel's sub-fleet (max-min
    /// everywhere the favored device is absent or alone).
    pub(crate) fn panel_scheduler(&self, members: &[usize]) -> Scheduler {
        let mut scheduler = self.base.clone();
        if let Policy::Favor { favored } = self.base.policy {
            scheduler.policy = match members.iter().position(|&d| d == favored) {
                Some(sub) if members.len() >= 2 => Policy::Favor { favored: sub },
                _ => Policy::MaxMin,
            };
        }
        scheduler
    }
}

/// Serves many independent fleets concurrently through a
/// [`FleetServer`]: each fleet is one job on the sharded work-stealing
/// queue, each worker runs the full shared-bias scheduler, and the
/// results come back in submission order — bit-identical to calling
/// [`Scheduler::run`] serially (workers share nothing).
pub fn serve_fleets(
    server: &FleetServer,
    scheduler: &Scheduler,
    fleets: &[Fleet],
) -> Vec<FleetOutcome> {
    server.serve(fleets.iter().collect(), |_, fleet: &Fleet| {
        scheduler.run(fleet)
    })
}

/// [`serve_fleets`] for panel deployments: every job is a fleet with its
/// own panel array, scheduled by one shared [`PanelScheduler`].
///
/// Compiled cascade plans are shared across jobs through one
/// [`SharedPlanCache`](metasurface::SharedPlanCache) per distinct design:
/// each worker wraps the shared store in its own shard-local
/// [`PlanCache`] handles, so K panels × N fleets compile each
/// `(design, carrier)` plan once process-wide and never contend on a
/// cache lock during probing.
pub fn serve_panel_fleets(
    server: &FleetServer,
    scheduler: &PanelScheduler,
    jobs: &[(Fleet, PanelArray)],
) -> Vec<PanelOutcome> {
    // One shared store per distinct design across every job's array.
    let mut shared: Vec<(&'static str, std::sync::Arc<metasurface::SharedPlanCache>)> = Vec::new();
    for (_, array) in jobs {
        for panel in array.panels() {
            if !shared.iter().any(|(name, _)| *name == panel.design.name) {
                shared.push((
                    panel.design.name,
                    std::sync::Arc::new(metasurface::SharedPlanCache::new(&panel.design.stack)),
                ));
            }
        }
    }
    server.serve(
        jobs.iter().collect(),
        move |_, (fleet, array): &(Fleet, PanelArray)| {
            let mut caches: Vec<(&'static str, PlanCache)> = Vec::new();
            for panel in array.panels() {
                if !caches.iter().any(|(name, _)| *name == panel.design.name) {
                    let (name, store) = shared
                        .iter()
                        .find(|(name, _)| *name == panel.design.name)
                        .expect("every job design has a shared store");
                    caches.push((name, store.handle()));
                }
            }
            scheduler.run_with_caches(fleet, array, &caches)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetDevice;

    fn quad_fleet() -> Fleet {
        let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
        fleet.push(FleetDevice::wifi("w0", Degrees(-70.0), 250.0, 10));
        fleet.push(FleetDevice::ble("b0", Degrees(-50.0), 320.0, 11));
        fleet.push(FleetDevice::wifi("w1", Degrees(40.0), 220.0, 12));
        fleet.push(FleetDevice::ble("b1", Degrees(75.0), 280.0, 13));
        fleet
    }

    #[test]
    fn orientation_assignment_splits_sectors() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        // Sector centers −45° and +45°: the two low-angle mounts go to
        // panel 0, the two high-angle mounts to panel 1.
        let assignment = array.assign(&fleet, &Assignment::ByOrientation);
        assert_eq!(assignment, vec![0, 0, 1, 1]);
        let round_robin = array.assign(&fleet, &Assignment::RoundRobin);
        assert_eq!(round_robin, vec![0, 1, 0, 1]);
    }

    #[test]
    fn axis_distance_wraps_the_half_circle() {
        assert_eq!(axis_distance_deg(Degrees(-90.0), Degrees(90.0)), 0.0);
        assert_eq!(axis_distance_deg(Degrees(0.0), Degrees(90.0)), 90.0);
        assert!((axis_distance_deg(Degrees(170.0), Degrees(-5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn best_reference_assignment_is_balanced_and_in_range() {
        let fleet = Fleet::mixed_wifi_ble(9, 21);
        let array = PanelArray::uniform(fleet.design.clone(), 3);
        let assignment = array.assign(&fleet, &Assignment::BestReference);
        assert_eq!(assignment.len(), 9);
        for k in 0..3 {
            let load = assignment.iter().filter(|&&a| a == k).count();
            assert!(load <= 3, "panel {k} over capacity: {load}");
        }
    }

    #[test]
    fn best_reference_ties_fall_back_to_sectors_not_fleet_order() {
        // On a uniform array every panel measures bit-identically, so
        // the reference powers tie for every device; the tie-break must
        // recover the orientation sectors (regression: a strict > kept
        // the lowest index and block-filled panel 0 in fleet order).
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let best_ref = array.assign(&fleet, &Assignment::BestReference);
        let by_orientation = array.assign(&fleet, &Assignment::ByOrientation);
        assert_eq!(best_ref, by_orientation);
        assert_eq!(best_ref, vec![0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cover every device")]
    fn explicit_assignment_must_cover_the_fleet() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let _ = array.assign(&fleet, &Assignment::Explicit(vec![0, 1]));
    }

    #[test]
    fn single_panel_reproduces_the_shared_bias_scheduler() {
        // K = 1 is the degenerate array: same assignment (everyone on
        // panel 0), same search, exactly the same allocation.
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 1);
        let panel = PanelScheduler::max_min().run(&fleet, &array);
        let shared = Scheduler::max_min().run(&fleet);
        assert_eq!(panel.probes, shared.probes);
        assert_eq!(panel.per_panel[0].outcome.shared_bias, shared.shared_bias);
        for (a, b) in panel.per_device.iter().zip(&shared.per_device) {
            assert_eq!(a.power_dbm, b.power_dbm);
            assert_eq!(a.bias, b.bias);
        }
        assert_eq!(panel.min_power_dbm(), shared.min_power_dbm());
    }

    #[test]
    fn panels_lift_the_shared_bias_compromise() {
        // The acceptance workload: the 32-device mixed Wi-Fi/BLE fleet
        // split across 4 panels must *strictly* beat the single-panel
        // shared-bias worst link (the shared compromise pinches mutually
        // mismatched devices that separate panels serve at their own
        // optima). A panel min can never be *worse* in aggregate than
        // leaving conflicting devices pinched; the strict gain here is
        // the measured headline (≈ +2.8 dB on this workload).
        let fleet = Fleet::mixed_wifi_ble(32, 2021);
        let array = PanelArray::uniform(fleet.design.clone(), 4);
        let panel = PanelScheduler::max_min().run(&fleet, &array);
        let shared = Scheduler::max_min().run(&fleet);
        assert!(
            panel.min_power_dbm() > shared.min_power_dbm(),
            "panels {:.2} dBm vs shared {:.2} dBm",
            panel.min_power_dbm(),
            shared.min_power_dbm()
        );
        // Score is the fleet-wide min.
        assert_eq!(panel.score, panel.min_power_dbm());
        // Panels tuned concurrently: elapsed is the slowest panel, not
        // the sum.
        let slowest = panel
            .per_panel
            .iter()
            .map(|p| p.outcome.elapsed.0)
            .fold(0.0, f64::max);
        assert_eq!(panel.elapsed.0, slowest);
    }

    #[test]
    fn batched_panel_matrices_match_the_naive_loop() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let assignment = array.assign(&fleet, &Assignment::ByOrientation);
        let biases: Vec<BiasState> = [(0.0, 0.0), (6.0, 18.0), (30.0, 3.0)]
            .iter()
            .map(|&(x, y)| BiasState::new(x, y))
            .collect();
        let fast = array.batched_panel_matrices(&fleet, &assignment, &biases);
        let naive = array.naive_panel_matrices(&fleet, &assignment, &biases);
        for (k, (rows_fast, rows_naive)) in fast.iter().zip(&naive).enumerate() {
            for (row_fast, row_naive) in rows_fast.iter().zip(rows_naive) {
                for (a, b) in row_fast.iter().zip(row_naive) {
                    assert!((a - b).abs() < 1e-12, "panel {k}: batched {a} vs naive {b}");
                }
            }
        }
    }

    #[test]
    fn distributed_array_panels_measure_differently() {
        // Distributed panels hang at different points along the link, so
        // the same device sees genuinely different physics per panel —
        // the property the handoff margins live on (a uniform array ties
        // bit-for-bit instead).
        let fleet = quad_fleet();
        let array = PanelArray::distributed(fleet.design.clone(), 3);
        assert_eq!(array.len(), 3);
        let bias = [BiasState::new(6.0, 6.0)];
        let all_on_one = |k: usize| {
            let assignment = vec![k; fleet.len()];
            array.batched_panel_matrices(&fleet, &assignment, &bias)[k][0].clone()
        };
        let p0 = all_on_one(0);
        let p2 = all_on_one(2);
        assert!(p0.iter().zip(&p2).any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn warm_panel_run_keeps_assignment_and_never_regresses() {
        let fleet = Fleet::mixed_wifi_ble(8, 77);
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let scheduler = PanelScheduler::max_min();
        let cold = scheduler.run(&fleet, &array);
        let warm = scheduler.run_warm(&fleet, &array, &cold, &WarmConfig::paper_default());
        assert_eq!(warm.assignment, cold.assignment);
        assert!(
            warm.min_power_dbm() >= cold.min_power_dbm(),
            "warm {:.2} vs cold {:.2} dBm",
            warm.min_power_dbm(),
            cold.min_power_dbm()
        );
        assert!(warm.probes < cold.probes, "warm must spend fewer probes");
    }

    #[test]
    fn panel_mounting_fraction_changes_the_physics() {
        // The same device served by panels at different mounting points
        // must see different bounce-path interference.
        let fleet = quad_fleet();
        let near = PanelArray::new(vec![
            Panel::new("near", fleet.design.clone(), Degrees(0.0)).at_surface_fraction(0.2)
        ]);
        let far = PanelArray::new(vec![
            Panel::new("far", fleet.design.clone(), Degrees(0.0)).at_surface_fraction(0.8)
        ]);
        let assignment = vec![0; fleet.len()];
        let bias = [BiasState::new(6.0, 6.0)];
        let p_near = near.batched_panel_matrices(&fleet, &assignment, &bias);
        let p_far = far.batched_panel_matrices(&fleet, &assignment, &bias);
        assert!(p_near[0][0]
            .iter()
            .zip(&p_far[0][0])
            .any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn favor_policy_translates_to_the_favored_panel() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let mut scheduler = PanelScheduler::max_min();
        scheduler.base = Scheduler::favor(2); // "w1", served by panel 1
        let outcome = scheduler.run(&fleet, &array);
        // Panel 1 ran isolation for w1 (sub-index 0 of [2, 3]); panel 0
        // fell back to max-min.
        assert_eq!(
            outcome.per_panel[1].outcome.policy,
            Policy::Favor { favored: 0 }
        );
        assert_eq!(outcome.per_panel[0].outcome.policy, Policy::MaxMin);
        let margin = outcome.per_device[2].power_dbm - outcome.per_device[3].power_dbm;
        assert!(margin > 0.0, "favored margin = {margin:.1} dB");
    }

    #[test]
    fn empty_fleet_takes_the_shared_guard() {
        let empty = Fleet::new(metasurface::designs::fr4_optimized());
        let array = PanelArray::uniform(empty.design.clone(), 3);
        let outcome = PanelScheduler::max_min().run(&empty, &array);
        assert!(outcome.per_device.is_empty());
        assert!(outcome.assignment.is_empty());
        assert_eq!(outcome.probes, 0);
        assert_eq!(outcome.min_power_dbm(), f64::NEG_INFINITY);
        assert_eq!(outcome.per_panel.len(), 3);
        assert!(outcome
            .per_panel
            .iter()
            .all(|p| p.outcome.per_device.is_empty()));
    }

    #[test]
    fn server_outcomes_match_serial_execution() {
        // The ≥8-concurrent-fleets acceptance gate: outcomes through the
        // bounded-queue worker pool must be identical to serial runs.
        let fleets: Vec<Fleet> = (0..8).map(|s| Fleet::mixed_wifi_ble(3, 100 + s)).collect();
        let scheduler = Scheduler::max_min();
        let serial: Vec<FleetOutcome> = fleets.iter().map(|f| scheduler.run(f)).collect();
        let server = FleetServer::new(4);
        let served = serve_fleets(&server, &scheduler, &fleets);
        assert_eq!(served.len(), 8);
        for (a, b) in served.iter().zip(&serial) {
            assert_eq!(a.shared_bias, b.shared_bias);
            assert_eq!(a.score, b.score);
            assert_eq!(a.probes, b.probes);
            for (x, y) in a.per_device.iter().zip(&b.per_device) {
                assert_eq!(x.power_dbm, y.power_dbm);
                assert_eq!(x.throughput_bits_hz, y.throughput_bits_hz);
            }
        }
    }

    #[test]
    fn served_panel_fleets_match_direct_runs() {
        let jobs: Vec<(Fleet, PanelArray)> = (0..4)
            .map(|s| {
                let fleet = Fleet::mixed_wifi_ble(4, 200 + s);
                let array = PanelArray::uniform(fleet.design.clone(), 2);
                (fleet, array)
            })
            .collect();
        let scheduler = PanelScheduler::max_min();
        let direct: Vec<PanelOutcome> = jobs.iter().map(|(f, a)| scheduler.run(f, a)).collect();
        let served = serve_panel_fleets(&FleetServer::new(3), &scheduler, &jobs);
        for (a, b) in served.iter().zip(&direct) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.score, b.score);
            assert_eq!(a.panel_biases(), b.panel_biases());
        }
    }
}
