//! Multi-panel fleet serving: K independently-biased surfaces under one
//! controller.
//!
//! The single-surface scheduler ([`crate::fleet::Scheduler`]) trades
//! every device off against one shared 2-knob bias, so past a handful of
//! mutually mismatched devices only time division scales. The paper's §7
//! outlook — and the software-defined-metasurface line of related work
//! (tiled multi-panel apertures, per-user path programming across
//! several walls) — points at the next lever: *spatial multiplexing
//! across panels*. This module models it:
//!
//! * [`Panel`] — one surface of the array: its own [`Design`], its own
//!   bias rails, an orientation sector it covers, and optionally its own
//!   mounting position along the link
//!   ([`Deployment::with_surface_fraction`]);
//! * [`PanelArray`] — K panels with per-device assignment policies
//!   ([`Assignment`]): by mount-orientation sector, by measured
//!   per-panel reference power (the polarization-aware policy, built on
//!   [`propagation::link::PreparedLink::with_surface_placement`]),
//!   round-robin, or explicit;
//! * [`PanelScheduler`] — generalizes the shared-bias scheduler from one
//!   bias to a per-panel bias vector: assign devices to panels, then run
//!   one Algorithm 1 search *per panel* over its sub-fleet, reusing the
//!   [`FleetEvaluator`] shared-plan batch path with one
//!   [`PlanCache`] per distinct design so a carrier served on every
//!   panel compiles once, not K times;
//! * [`serve_fleets`] / [`serve_panel_fleets`] — the typed front of
//!   [`control::server::FleetServer`]: many fleets multiplexed over the
//!   sharded work-stealing queue and scoped worker pool, each outcome
//!   bit-identical to serial execution;
//! * **joint multi-surface search** ([`PanelScheduler::with_joint`]) —
//!   block coordinate descent over the per-panel bias vector against the
//!   *superposed* field ([`propagation::coupling::MultiSurfaceField`]):
//!   each round re-sweeps every panel with the other panels' leakage
//!   held fixed ([`CoupledEvaluator`]), iterating to a fixed point under
//!   a convergence tolerance and round cap. The independent per-panel
//!   path stays the fast approximation, and a disabled coupling
//!   ([`CouplingConfig::is_disabled`]) short-circuits to it *bitwise*
//!   (property-tested).
//!
//! With K = 1 the panel scheduler *is* the shared-bias scheduler (the
//! proptests pin exact equality); with K panels each compromise spans
//! only the devices in its sector, which is what lifts the worst-device
//! power on large mixed fleets (the `expts --panels` headline).
//!
//! ```
//! use llama_core::fleet::{Fleet, FleetDevice};
//! use llama_core::panels::{PanelArray, PanelScheduler};
//! use rfmath::units::Degrees;
//!
//! let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
//! fleet.push(FleetDevice::wifi("door sensor", Degrees(-60.0), 250.0, 1));
//! fleet.push(FleetDevice::ble("wrist band", Degrees(65.0), 300.0, 2));
//!
//! let array = PanelArray::uniform(fleet.design.clone(), 2);
//! let outcome = PanelScheduler::max_min().run(&fleet, &array);
//! // Orthogonally mounted devices land on different panels…
//! assert_ne!(outcome.assignment[0], outcome.assignment[1]);
//! // …and every device is served continuously at its panel's bias.
//! assert!(outcome.per_device.iter().all(|d| d.duty == 1.0));
//! ```

use std::rc::Rc;

use crate::telemetry::{RecorderHandle, TelemetryEvent};
use control::server::FleetServer;
use control::sweep::{descend_rounds, warm_refine_multi, Probe, WarmConfig};
use metasurface::designs::Design;
use metasurface::evaluator::{PlanCache, StackEvaluator};
use metasurface::response::SurfaceResponse;
use metasurface::stack::{BiasState, SUPPLY_CEILING};
use propagation::capacity::capacity_bits;
use propagation::coupling::{CouplingConfig, MultiSurfaceField};
use propagation::link::PreparedLink;
use propagation::rays::{Deployment, Path};
use rfmath::complex::Complex;
use rfmath::units::{Dbm, Degrees, Hertz, Seconds, Watts};
use rfmath::vec2::Point2;

use crate::fleet::{DeviceService, Fleet, FleetEvaluator, FleetOutcome, Policy, Scheduler};
use crate::scenario::Scenario;

/// The reference bias the measurement-driven assignment probes each
/// panel at (the workhorse mid-range state used across the experiments).
/// The mobility simulator's handoff margins are measured at the same
/// state, so an assignment and the hysteresis layered on it agree about
/// what "better panel" means.
pub(crate) const REFERENCE_BIAS: BiasState = BiasState {
    vx: rfmath::units::Volts(6.0),
    vy: rfmath::units::Volts(6.0),
};

/// Where a panel hangs relative to the links it serves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PanelMount {
    /// At a fraction of each served link's line (the legacy scalar
    /// mounting; clamped to the physical range by the deployment).
    Fraction(f64),
    /// At a fixed room position, meters — every served link keeps its
    /// own endpoints but re-mounts its surface here, so each panel sees
    /// a genuinely different illumination angle per device.
    Position(Point2),
}

/// One surface of a panel array: an independently biased aperture
/// covering an orientation sector.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Display label ("panel N", "east wall", …).
    pub label: String,
    /// The surface design this panel is cut from. Panels sharing a
    /// design share compiled evaluation plans through a [`PlanCache`].
    pub design: Design,
    /// Center of the receive-orientation sector this panel faces,
    /// degrees (polarization axes have period 180°).
    pub sector_center: Degrees,
    /// Panel mounting (`None` keeps every device's own deployment
    /// untouched).
    pub mount: Option<PanelMount>,
}

impl Panel {
    /// A panel of `design` facing the sector centred at `sector_center`.
    pub fn new(label: impl Into<String>, design: Design, sector_center: Degrees) -> Self {
        Self {
            label: label.into(),
            design,
            sector_center,
            mount: None,
        }
    }

    /// Mounts the panel at `fraction` of every served link's line
    /// (clamped to the physical range by the deployment).
    pub fn at_surface_fraction(mut self, fraction: f64) -> Self {
        self.mount = Some(PanelMount::Fraction(fraction));
        self
    }

    /// Mounts the panel at a fixed room position (meters).
    pub fn mounted_at(mut self, position: Point2) -> Self {
        self.mount = Some(PanelMount::Position(position));
        self
    }

    /// The illumination angle this panel presents to a device's link,
    /// if the panel carries a mount and the deployment a surface.
    pub fn incidence_for(&self, base: Deployment) -> Option<Degrees> {
        self.deployment_for(base).incidence_deg()
    }

    /// The scenario a device sees when served by this panel: its own
    /// geometry and radio, this panel's design and mounting position.
    pub(crate) fn scenario_for(&self, base: &Scenario) -> Scenario {
        let mut scenario = base.clone().with_design(self.design.clone());
        scenario.deployment = self.deployment_for(scenario.deployment);
        scenario
    }

    /// The deployment a device's link takes under this panel.
    pub(crate) fn deployment_for(&self, base: Deployment) -> Deployment {
        match self.mount {
            Some(PanelMount::Fraction(fraction)) => base.with_surface_fraction(fraction),
            Some(PanelMount::Position(position)) => base.with_surface_at(position),
            None => base,
        }
    }
}

/// K independently-biased panels behind one controller.
#[derive(Clone, Debug)]
pub struct PanelArray {
    panels: Vec<Panel>,
}

impl PanelArray {
    /// An array from explicit panels.
    ///
    /// # Panics
    /// Panics on an empty panel list — an array with no apertures cannot
    /// serve anything.
    pub fn new(panels: Vec<Panel>) -> Self {
        assert!(!panels.is_empty(), "a panel array needs at least one panel");
        Self { panels }
    }

    /// K identical-design panels with sector centers spread uniformly
    /// over the polarization half-circle — the reference array of the
    /// benches and the 32-device acceptance gate.
    pub fn uniform(design: Design, k: usize) -> Self {
        assert!(k >= 1, "a panel array needs at least one panel");
        let panels = (0..k)
            .map(|i| {
                let center = -90.0 + 180.0 * (i as f64 + 0.5) / k as f64;
                Panel::new(format!("panel {i}"), design.clone(), Degrees(center))
            })
            .collect();
        Self { panels }
    }

    /// [`PanelArray::uniform`] with the panels additionally *distributed
    /// along the served links*: panel `i` hangs at surface fraction
    /// `(i + 1) / (k + 1)`, so each panel sees genuinely different
    /// bounce-path physics. On a plain uniform array every panel
    /// measures bit-identically (same design, same mount point) and
    /// measured-margin policies — [`Assignment::BestReference`], the
    /// mobility simulator's handoff hysteresis — degenerate to sector
    /// ties; a distributed array is what makes movement change the
    /// per-panel margins, and with them the handoff story.
    pub fn distributed(design: Design, k: usize) -> Self {
        assert!(k >= 1, "a panel array needs at least one panel");
        let panels = (0..k)
            .map(|i| {
                let center = -90.0 + 180.0 * (i as f64 + 0.5) / k as f64;
                Panel::new(format!("panel {i}"), design.clone(), Degrees(center))
                    .at_surface_fraction((i as f64 + 1.0) / (k as f64 + 1.0))
            })
            .collect();
        Self { panels }
    }

    /// Panels of one design hung at explicit room positions (meters):
    /// the 2-D analogue of [`PanelArray::distributed`]. Each panel's
    /// sector center is its bearing from the room origin folded into the
    /// polarization half-circle `[-90°, 90°)`, so wall panels on
    /// opposite sides of a room naturally cover different orientation
    /// sectors; every served link re-mounts its surface at the panel's
    /// position, giving genuinely per-panel incidence angles.
    pub fn mounted(design: Design, positions: &[Point2]) -> Self {
        assert!(
            !positions.is_empty(),
            "a panel array needs at least one panel"
        );
        let panels = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let bearing = p.y.atan2(p.x).to_degrees();
                // Fold into the polarization half-circle [-90, 90).
                let center = (bearing + 90.0).rem_euclid(180.0) - 90.0;
                Panel::new(format!("panel {i}"), design.clone(), Degrees(center)).mounted_at(p)
            })
            .collect();
        Self { panels }
    }

    /// The panels, in array order.
    pub fn panels(&self) -> &[Panel] {
        &self.panels
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// Always false — construction rejects empty arrays.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// One shared [`PlanCache`] per *distinct design* across the array
    /// (keyed by design name, the catalog identity): panels cut from the
    /// same design share every compiled cascade plan.
    pub(crate) fn plan_caches(&self) -> Vec<(&'static str, PlanCache)> {
        let mut caches: Vec<(&'static str, PlanCache)> = Vec::new();
        for panel in &self.panels {
            if !caches.iter().any(|(name, _)| *name == panel.design.name) {
                caches.push((panel.design.name, PlanCache::new(&panel.design.stack)));
            }
        }
        caches
    }

    pub(crate) fn cache_for<'c>(
        caches: &'c [(&'static str, PlanCache)],
        design: &Design,
    ) -> &'c PlanCache {
        &caches
            .iter()
            .find(|(name, _)| *name == design.name)
            .expect("every panel design has a cache")
            .1
    }

    /// Assigns every device to a panel under `assignment`; element `d`
    /// is the panel index serving fleet device `d`.
    pub fn assign(&self, fleet: &Fleet, assignment: &Assignment) -> Vec<usize> {
        self.assign_with_caches(fleet, assignment, &self.plan_caches())
    }

    /// [`PanelArray::assign`] drawing any reference-response plans from
    /// caller-owned caches, so the panel scheduler compiles each
    /// design × carrier plan once per run instead of once for assignment
    /// and again for evaluation.
    pub(crate) fn assign_with_caches(
        &self,
        fleet: &Fleet,
        assignment: &Assignment,
        caches: &[(&'static str, PlanCache)],
    ) -> Vec<usize> {
        match assignment {
            Assignment::ByOrientation => fleet
                .devices()
                .iter()
                .map(|device| {
                    let mount = device.scenario.rx.orientation;
                    let mut best = 0;
                    for (k, panel) in self.panels.iter().enumerate() {
                        if axis_distance_deg(mount, panel.sector_center)
                            < axis_distance_deg(mount, self.panels[best].sector_center)
                        {
                            best = k;
                        }
                    }
                    best
                })
                .collect(),
            Assignment::RoundRobin => (0..fleet.len()).map(|d| d % self.panels.len()).collect(),
            Assignment::Explicit(map) => {
                assert_eq!(
                    map.len(),
                    fleet.len(),
                    "explicit assignment must cover every device"
                );
                assert!(
                    map.iter().all(|&k| k < self.panels.len()),
                    "explicit assignment references a panel outside the array"
                );
                map.clone()
            }
            Assignment::BestReference => self.assign_best_reference(fleet, caches),
        }
    }

    /// Measurement-driven balanced assignment: each device's link is
    /// prepared once ([`PreparedLink`], scatter cached), re-targeted at
    /// every panel's mounting position
    /// ([`PreparedLink::with_surface_placement`]), and scored by
    /// received power under the panel's reference-bias response.
    /// Devices then greedily take their best-scoring panel with
    /// capacity left (⌈n/K⌉ per panel), processed in a *canonical*
    /// order — strongest best-panel power first, label ascending on
    /// ties — rather than fleet order, so the assignment is invariant
    /// under device permutation (property-tested). Reference-power ties
    /// within a device's preference list — identical panels of a
    /// uniform array measure bit-identically — break toward the panel
    /// whose sector is nearest the device's mount, then the lower
    /// index, so the policy degrades to a load-balanced
    /// [`Assignment::ByOrientation`] rather than to arrival-order
    /// blocking.
    fn assign_best_reference(
        &self,
        fleet: &Fleet,
        caches: &[(&'static str, PlanCache)],
    ) -> Vec<usize> {
        let n = fleet.len();
        let k = self.panels.len();
        let capacity = n.div_ceil(k);
        // The reference response depends only on (design, carrier) —
        // memoize it across devices instead of re-running the cascade
        // per device × panel.
        let mut responses: Vec<(usize, u64, SurfaceResponse)> = Vec::new();
        // Score every device against every panel up front (no capacity
        // pruning here — pruning while scanning would make the scores
        // depend on processing order).
        let mut prefs: Vec<Vec<(usize, f64, f64)>> = Vec::with_capacity(n);
        for device in fleet.devices() {
            let f = device.scenario.frequency;
            let prepared = PreparedLink::new(device.scenario.link());
            let mount = device.scenario.rx.orientation;
            // (panel index, reference power, mount-to-sector distance).
            let mut scored: Vec<(usize, f64, f64)> = Vec::with_capacity(k);
            for (idx, panel) in self.panels.iter().enumerate() {
                let response = match responses
                    .iter()
                    .find(|(p, bits, _)| *p == idx && *bits == f.0.to_bits())
                {
                    Some((_, _, r)) => *r,
                    None => {
                        let plan = Self::cache_for(caches, &panel.design).plan(f);
                        let r =
                            SurfaceResponse::new(plan.frequency(), plan.response(REFERENCE_BIAS));
                        responses.push((idx, f.0.to_bits(), r));
                        r
                    }
                };
                let moved = prepared
                    .with_surface_placement(panel.deployment_for(device.scenario.deployment));
                let power = moved.received_dbm_with(Some(&response)).0;
                let sector = axis_distance_deg(mount, panel.sector_center);
                scored.push((idx, power, sector));
            }
            // Preference order: power descending, then nearest sector,
            // then lower panel index (already the scan order).
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.2.total_cmp(&b.2)));
            prefs.push(scored);
        }
        // Canonical processing order: devices with the strongest best
        // panel claim capacity first; labels break exact-power ties.
        // Both keys travel with the device under permutation, so the
        // resulting assignment does too.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            prefs[b][0]
                .1
                .total_cmp(&prefs[a][0].1)
                .then_with(|| fleet.devices()[a].label.cmp(&fleet.devices()[b].label))
        });
        let mut load = vec![0usize; k];
        let mut out = vec![0usize; n];
        for &d in &order {
            let &(idx, _, _) = prefs[d]
                .iter()
                .find(|&&(idx, _, _)| load[idx] < capacity)
                .expect("capacity ⌈n/K⌉·K ≥ n leaves a panel open");
            load[idx] += 1;
            out[d] = idx;
        }
        out
    }

    /// Splits the fleet into per-panel sub-fleets under a precomputed
    /// assignment; element `k` holds panel `k`'s sub-fleet (the panel's
    /// design and mounting applied to each member's scenario) and the
    /// members' fleet-order indices.
    pub fn subfleets(&self, fleet: &Fleet, assignment: &[usize]) -> Vec<(Fleet, Vec<usize>)> {
        assert_eq!(assignment.len(), fleet.len(), "one panel per device");
        let mut out: Vec<(Fleet, Vec<usize>)> = self
            .panels
            .iter()
            .map(|p| (Fleet::new(p.design.clone()), Vec::new()))
            .collect();
        for (d, (&panel_idx, device)) in assignment.iter().zip(fleet.devices()).enumerate() {
            let panel = &self.panels[panel_idx];
            let mut member = device.clone();
            member.scenario = panel.scenario_for(&device.scenario);
            out[panel_idx].0.push(member);
            out[panel_idx].1.push(d);
        }
        out
    }

    /// Per-panel probe matrices on the shared-plan batch path:
    /// `result[k][b][i]` is the power of panel `k`'s `i`-th assigned
    /// device under `biases[b]`, with compiled plans shared across
    /// panels of the same design. The fast side of the `expts --panels`
    /// smoke and the 1e-12 equivalence proptest.
    pub fn batched_panel_matrices(
        &self,
        fleet: &Fleet,
        assignment: &[usize],
        biases: &[BiasState],
    ) -> Vec<Vec<Vec<f64>>> {
        let caches = self.plan_caches();
        self.subfleets(fleet, assignment)
            .into_iter()
            .enumerate()
            .map(|(k, (subfleet, _))| {
                if subfleet.is_empty() {
                    return vec![Vec::new(); biases.len()];
                }
                let cache = Self::cache_for(&caches, &self.panels[k].design);
                FleetEvaluator::with_plan_cache(&subfleet, cache).powers_matrix(biases)
            })
            .collect()
    }

    /// The naive per-panel reference loop — every device of every panel
    /// deploys its own surface and rebuilds its link per probe, exactly
    /// like [`Fleet::naive_powers_matrix`]. Kept as the equivalence
    /// contract and the perf baseline of the `--panels` smoke.
    pub fn naive_panel_matrices(
        &self,
        fleet: &Fleet,
        assignment: &[usize],
        biases: &[BiasState],
    ) -> Vec<Vec<Vec<f64>>> {
        self.subfleets(fleet, assignment)
            .into_iter()
            .map(|(subfleet, _)| {
                if subfleet.is_empty() {
                    return vec![Vec::new(); biases.len()];
                }
                subfleet.naive_powers_matrix(biases)
            })
            .collect()
    }
}

/// Angular distance between two polarization axes, degrees (period 180).
fn axis_distance_deg(a: Degrees, b: Degrees) -> f64 {
    let d = (a.0 - b.0).rem_euclid(180.0);
    d.min(180.0 - d)
}

/// How devices map onto panels.
#[derive(Clone, Debug, PartialEq)]
pub enum Assignment {
    /// Each device goes to the panel whose sector center is nearest its
    /// mount orientation (axis distance, ties toward the lower panel
    /// index) — the geometric default.
    ByOrientation,
    /// `device d → panel d mod K` (load balancing with no geometry).
    RoundRobin,
    /// Caller-specified `device → panel` map.
    Explicit(Vec<usize>),
    /// Balanced greedy by measured reference-bias power per panel,
    /// capacity ⌈n/K⌉; power ties (identical panels) break toward the
    /// nearest sector, so uniform arrays behave like a load-balanced
    /// [`Assignment::ByOrientation`] (see [`PanelArray::assign`]).
    BestReference,
}

/// Configuration of the joint multi-surface search
/// ([`PanelScheduler::with_joint`]): coupling physics plus the block
/// coordinate descent schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JointConfig {
    /// Inter-panel coupling strength. A disabled coupling makes the
    /// joint run return the independent outcome bit-for-bit.
    pub coupling: CouplingConfig,
    /// Per-panel refinement sweep run each descent round (warm-start
    /// grid around the panel's current bias).
    pub warm: WarmConfig,
    /// Cap on full descent rounds (one round = one sweep per panel).
    pub max_rounds: usize,
    /// Convergence tolerance, dB: a round improving the fleet min by
    /// no more than this ends the descent.
    pub tolerance_db: f64,
    /// Sweep panels in reverse array order within each round — the
    /// order-independence proptest's lever; results at convergence
    /// agree within `tolerance_db` either way.
    pub reverse_order: bool,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            coupling: CouplingConfig::indoor_default(),
            warm: WarmConfig::paper_default(),
            max_rounds: 4,
            tolerance_db: 0.05,
            reverse_order: false,
        }
    }
}

/// What the joint search did, reported on [`PanelOutcome::joint`] and
/// surfaced through the serving stats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JointStats {
    /// Descent rounds executed (0 when the joint run short-circuited:
    /// empty fleet, single panel, or disabled coupling).
    pub rounds: usize,
    /// Whether the descent hit the tolerance rather than the round cap.
    pub converged: bool,
    /// Bias states probed against the superposed field (on top of the
    /// independent warm-up's probes).
    pub coupled_probes: usize,
    /// Fraction of total received field energy carried by cross terms
    /// at the final bias vector — how much the panels actually talk.
    pub cross_energy_fraction: f64,
    /// Fleet min-power gain of the joint biases over the independent
    /// biases, dB, both measured under the coupled physics.
    pub lift_db: f64,
}

/// How quickly devices return to a panel healed from a whole-panel
/// outage ([`crate::faults::FaultPlan::panel_revived`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RevivalPolicy {
    /// Re-admit on the heal tick: every device whose reference-best
    /// panel is the healed one migrates back immediately. Outages
    /// orphan devices with no hysteresis; this is the symmetric
    /// treatment on the way back.
    #[default]
    Immediate,
    /// Healed panels reacquire devices only through ordinary handoff
    /// hysteresis — which never fires for devices that stopped moving,
    /// so a revived panel can sit idle indefinitely.
    Hysteresis,
}

/// What one panel contributed to a panel-scheduling run.
#[derive(Clone, Debug)]
pub struct PanelAllocation {
    /// Panel label, copied from the array.
    pub panel: String,
    /// Fleet-order indices of the devices this panel serves.
    pub devices: Vec<usize>,
    /// The panel's own scheduling outcome (its bias, per-device service,
    /// probe history); [`FleetOutcome::empty`] for an idle panel.
    pub outcome: FleetOutcome,
}

/// Outcome of one panel-scheduling run.
#[derive(Clone, Debug)]
pub struct PanelOutcome {
    /// Device → panel map used.
    pub assignment: Vec<usize>,
    /// Per-panel allocations, in array order.
    pub per_panel: Vec<PanelAllocation>,
    /// Per-device service in fleet order (each device served by its
    /// panel's bias).
    pub per_device: Vec<DeviceService>,
    /// Total bias states probed across all panels.
    pub probes: usize,
    /// Wall-clock of the slowest panel — panels carry independent bias
    /// rails and tune concurrently.
    pub elapsed: Seconds,
    /// The fleet-wide min served power, dBm (`-∞` for an empty fleet).
    pub score: f64,
    /// Joint-search bookkeeping when the run used
    /// [`PanelScheduler::with_joint`]; `None` on the independent path.
    pub joint: Option<JointStats>,
}

impl PanelOutcome {
    /// The worst served power across the fleet, dBm (`-∞` when empty).
    pub fn min_power_dbm(&self) -> f64 {
        if self.per_device.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.per_device
            .iter()
            .map(|d| d.power_dbm)
            .fold(f64::INFINITY, f64::min)
    }

    /// Aggregate duty-cycled throughput, bit/s/Hz.
    pub fn total_throughput_bits_hz(&self) -> f64 {
        self.per_device.iter().map(|d| d.throughput_bits_hz).sum()
    }

    /// True when `other` is the *same allocation*: identical device →
    /// panel assignment, per-panel biases, per-device served powers and
    /// fleet score, compared exactly (bit-for-bit on the floats). Probe
    /// counts and histories are deliberately excluded — a warm-started
    /// or reused re-optimization that lands on the same allocation at a
    /// fraction of the probe bill *is* equivalent, and that distinction
    /// is the mobility simulator's whole point.
    pub fn same_allocation(&self, other: &PanelOutcome) -> bool {
        self.assignment == other.assignment
            && self.score.to_bits() == other.score.to_bits()
            && self.panel_biases() == other.panel_biases()
            && self.per_device.len() == other.per_device.len()
            && self
                .per_device
                .iter()
                .zip(&other.per_device)
                .all(|(a, b)| a.power_dbm.to_bits() == b.power_dbm.to_bits() && a.bias == b.bias)
    }

    /// The bias each panel converged on (`None` for idle panels or
    /// per-device time division).
    pub fn panel_biases(&self) -> Vec<Option<BiasState>> {
        self.per_panel
            .iter()
            .map(|p| p.outcome.shared_bias)
            .collect()
    }
}

/// Generalizes [`Scheduler`] from one shared bias to a per-panel bias
/// vector: assignment, then one Algorithm 1 search per panel over its
/// sub-fleet, on the shared-plan batch path.
#[derive(Clone, Debug)]
pub struct PanelScheduler {
    /// The per-panel scheduling core (sweep strategy, policy, TDM slot).
    /// A [`Policy::Favor`] `favored` index is interpreted in *fleet*
    /// order: the panel serving that device runs the isolation
    /// objective against its sector neighbours (falling back to max-min
    /// when the device has its panel to itself — a dedicated aperture
    /// *is* isolation), and every other panel runs max-min.
    pub base: Scheduler,
    /// Device → panel mapping policy.
    pub assignment: Assignment,
    /// Joint multi-surface refinement run after the independent
    /// per-panel search (`None` = independent only). See
    /// [`PanelScheduler::with_joint`].
    pub joint: Option<JointConfig>,
    /// Telemetry sink (null by default — zero overhead). With a ring
    /// attached, per-panel sweeps emit
    /// [`TelemetryEvent::SweepSpan`](crate::telemetry::TelemetryEvent)
    /// and joint descent rounds emit
    /// [`TelemetryEvent::JointRound`](crate::telemetry::TelemetryEvent)
    /// carrying the round's canonical lift and coupled-probe cost.
    pub recorder: RecorderHandle,
}

impl PanelScheduler {
    /// Max-min fairness per panel, devices assigned by mount
    /// orientation — the panel generalization of [`Scheduler::max_min`].
    pub fn max_min() -> Self {
        Self {
            base: Scheduler::max_min(),
            assignment: Assignment::ByOrientation,
            joint: None,
            recorder: RecorderHandle::null(),
        }
    }

    /// Per-device time division within each panel.
    pub fn time_division() -> Self {
        Self {
            base: Scheduler::time_division(),
            ..Self::max_min()
        }
    }

    /// Sets the assignment policy.
    pub fn with_assignment(mut self, assignment: Assignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Enables the joint multi-surface search: after the independent
    /// per-panel warm-up, block coordinate descent re-sweeps each
    /// panel's bias against the superposed field (other panels held
    /// fixed) until the fleet min stops improving by more than
    /// `joint.tolerance_db` or `joint.max_rounds` rounds have run.
    /// Supported for [`Policy::MaxMin`]; a disabled coupling returns
    /// the independent outcome bit-for-bit (property-tested).
    pub fn with_joint(mut self, joint: JointConfig) -> Self {
        self.joint = Some(joint);
        self
    }

    /// Attaches a telemetry recorder.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs assignment plus per-panel Algorithm 1 against the array.
    /// An empty fleet yields an empty outcome through the same guard as
    /// [`Scheduler::run`] (every panel schedules an empty sub-fleet).
    pub fn run(&self, fleet: &Fleet, array: &PanelArray) -> PanelOutcome {
        // One cache set serves both assignment (reference responses) and
        // per-panel evaluation — each design × carrier compiles once per
        // run.
        self.run_with_caches(fleet, array, &array.plan_caches())
    }

    /// [`PanelScheduler::run`] drawing compiled plans from caller-owned
    /// caches — the sharded serving path: a worker thread serving many
    /// `(fleet, array)` jobs passes shard-local [`PlanCache`] handles
    /// (see [`SharedPlanCache::handle`](metasurface::SharedPlanCache))
    /// so every job reuses process-wide compilations instead of
    /// recompiling per job. The caches **must** cover every design in
    /// `array` (keyed by design name).
    pub fn run_with_caches(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        caches: &[(&'static str, PlanCache)],
    ) -> PanelOutcome {
        let assignment = array.assign_with_caches(fleet, &self.assignment, caches);
        let independent = self.run_assigned(
            fleet,
            array,
            assignment,
            caches,
            "cold",
            |_, scheduler, sub, eval| scheduler.run_with_evaluator(sub, eval),
        );
        match &self.joint {
            Some(cfg) => self.joint_refine(fleet, array, caches, independent, cfg),
            None => independent,
        }
    }

    /// Warm-start re-optimization against a previous outcome: every
    /// panel keeps `prev`'s device assignment and refines from its own
    /// previous bias through [`Scheduler::run_warm`] (per-panel cold
    /// widening included). Re-assignment under mobility is deliberately
    /// *not* this method's job — the simulator's hysteresis policy
    /// ([`crate::sim::HandoffPolicy`]) owns that decision, because a
    /// bare re-assignment per tick would flap devices between panels on
    /// every fade. This is the stateless warm front; the event-stepped
    /// simulator ([`crate::sim::MobilitySim`]) adds persistent
    /// evaluators on top so unchanged links are not even re-prepared.
    ///
    /// Joint refinement is deliberately *not* applied here: the warm
    /// path is the per-tick mobility fast path, and the simulator
    /// rejects joint-mode schedulers up front.
    pub fn run_warm(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        prev: &PanelOutcome,
        warm: &WarmConfig,
    ) -> PanelOutcome {
        assert_eq!(
            prev.assignment.len(),
            fleet.len(),
            "previous outcome covers a different fleet"
        );
        assert_eq!(
            prev.per_panel.len(),
            array.len(),
            "previous outcome ran on a different array"
        );
        let caches = array.plan_caches();
        self.run_assigned(
            fleet,
            array,
            prev.assignment.clone(),
            &caches,
            "warm",
            |k, scheduler, sub, eval| {
                scheduler.run_warm(sub, eval, &prev.per_panel[k].outcome, warm)
            },
        )
    }

    /// The shared per-panel scheduling loop: split `fleet` under a fixed
    /// `assignment`, run `schedule` per populated panel (empty panels
    /// take the empty-fleet guard), and assemble the array outcome.
    fn run_assigned(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        assignment: Vec<usize>,
        caches: &[(&'static str, PlanCache)],
        kind: &'static str,
        schedule: impl Fn(usize, &Scheduler, &Fleet, &FleetEvaluator) -> FleetOutcome,
    ) -> PanelOutcome {
        let traced = self.recorder.enabled();
        let subfleets = array.subfleets(fleet, &assignment);
        let mut per_panel = Vec::with_capacity(array.len());
        let mut services: Vec<Option<DeviceService>> = vec![None; fleet.len()];
        let mut probes = 0usize;
        let mut elapsed = 0.0f64;
        for (k, (subfleet, members)) in subfleets.into_iter().enumerate() {
            let scheduler = self.panel_scheduler(&members);
            // Empty sub-fleets take `run`'s empty-fleet guard; populated
            // ones reuse the array-wide plan cache for their design.
            let outcome = if subfleet.is_empty() {
                scheduler.run(&subfleet)
            } else {
                let cache = PanelArray::cache_for(caches, &array.panels()[k].design);
                let evaluator = FleetEvaluator::with_plan_cache(&subfleet, cache);
                schedule(k, &scheduler, &subfleet, &evaluator)
            };
            probes += outcome.probes;
            elapsed = elapsed.max(outcome.elapsed.0);
            if traced && !outcome.per_device.is_empty() {
                self.recorder
                    .record_value("panels.probes_per_panel", outcome.probes as u64);
                self.recorder.emit(TelemetryEvent::SweepSpan {
                    panel: k,
                    kind,
                    probes: outcome.probes,
                });
            }
            for (service, &d) in outcome.per_device.iter().zip(&members) {
                services[d] = Some(service.clone());
            }
            per_panel.push(PanelAllocation {
                panel: array.panels()[k].label.clone(),
                devices: members,
                outcome,
            });
        }

        let per_device: Vec<DeviceService> = services
            .into_iter()
            .map(|s| s.expect("every device is assigned to exactly one panel"))
            .collect();
        let mut outcome = PanelOutcome {
            assignment,
            per_panel,
            per_device,
            probes,
            elapsed: Seconds(elapsed),
            score: f64::NEG_INFINITY,
            joint: None,
        };
        outcome.score = outcome.min_power_dbm();
        outcome
    }

    /// The joint refinement stage: block coordinate descent from the
    /// independent per-panel optimum against the superposed field.
    ///
    /// Each round sweeps every panel once ([`warm_refine_multi`]
    /// centered on the panel's current bias) with the other panels'
    /// contributions held fixed; the round's canonical fleet-min
    /// improvement feeds [`descend_rounds`]'s convergence check. The
    /// final score is re-measured through the canonical superposition
    /// ([`CoupledEvaluator::powers_dbm`]) because the sweep's
    /// cached-fixed-part sum associates float additions differently.
    fn joint_refine(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        caches: &[(&'static str, PlanCache)],
        independent: PanelOutcome,
        cfg: &JointConfig,
    ) -> PanelOutcome {
        let kp = array.len();
        if fleet.is_empty() || kp < 2 || cfg.coupling.is_disabled() {
            // Nothing to couple: the independent outcome *is* the joint
            // outcome (bitwise — the zero-coupling guarantee).
            let mut outcome = independent;
            outcome.joint = Some(JointStats {
                rounds: 0,
                converged: true,
                coupled_probes: 0,
                cross_energy_fraction: 0.0,
                lift_db: 0.0,
            });
            return outcome;
        }
        assert!(
            matches!(self.base.policy, Policy::MaxMin),
            "the joint search optimizes the fleet min (Policy::MaxMin); got {:?}",
            self.base.policy
        );
        let mut coupled = CoupledEvaluator::with_caches(
            fleet,
            array,
            &independent.assignment,
            caches,
            cfg.coupling,
        );
        let mut biases: Vec<BiasState> = independent
            .panel_biases()
            .into_iter()
            .map(|b| b.unwrap_or(REFERENCE_BIAS))
            .collect();
        let min_of = |powers: &[f64]| powers.iter().copied().fold(f64::INFINITY, f64::min);
        let baseline = min_of(&coupled.powers_dbm(&biases));
        let mut score = baseline;
        let mut coupled_probes = 0usize;
        let mut panel_probes = vec![0usize; kp];
        let mut panel_elapsed = vec![0.0f64; kp];
        let order: Vec<usize> = if cfg.reverse_order {
            (0..kp).rev().collect()
        } else {
            (0..kp).collect()
        };
        let traced = self.recorder.enabled();
        let mut round_no = 0usize;
        let (rounds, converged) = descend_rounds(cfg.max_rounds, cfg.tolerance_db, || {
            let before = score;
            for &p in &order {
                let fixed = coupled.fixed_amplitudes(p, &biases);
                let center = Probe {
                    vx: biases[p].vx,
                    vy: biases[p].vy,
                };
                let sweep = warm_refine_multi(
                    &self.base.sweep,
                    &cfg.warm,
                    center,
                    |probe| {
                        coupled.sweep_powers(
                            p,
                            BiasState {
                                vx: probe.vx,
                                vy: probe.vy,
                            },
                            &fixed,
                        )
                    },
                    |m| m.iter().copied().fold(f64::INFINITY, f64::min),
                );
                coupled_probes += sweep.probes;
                panel_probes[p] += sweep.probes;
                panel_elapsed[p] += sweep.duration.0;
                biases[p] = BiasState {
                    vx: sweep.best.vx,
                    vy: sweep.best.vy,
                };
            }
            // Canonical re-measure: the sweep's fixed-part association
            // can drift from the full superposition by float dust, so
            // convergence is judged on the canonical score only.
            let after = min_of(&coupled.powers_dbm(&biases));
            let improvement = after - before;
            score = after;
            round_no += 1;
            if traced {
                self.recorder.add("panels.joint_rounds", 1);
                self.recorder.emit(TelemetryEvent::JointRound {
                    round: round_no,
                    lift_db: improvement,
                    coupled_probes,
                });
            }
            improvement
        });

        let powers = coupled.powers_dbm(&biases);
        let cross_energy = coupled.cross_energy_fraction(&biases);
        let subfleets = array.subfleets(fleet, &independent.assignment);
        let mut services: Vec<Option<DeviceService>> = vec![None; fleet.len()];
        let mut per_panel = Vec::with_capacity(kp);
        for (k, (subfleet, members)) in subfleets.into_iter().enumerate() {
            let bias = biases[k].clamped(SUPPLY_CEILING);
            let mut panel_services = Vec::with_capacity(members.len());
            for (device, &d) in subfleet.devices().iter().zip(&members) {
                let power = powers[d];
                let service = DeviceService {
                    label: device.label.clone(),
                    bias,
                    power_dbm: power,
                    duty: 1.0,
                    throughput_bits_hz: capacity_bits(Dbm(power), &device.profile.noise),
                    decodable: device.profile.is_decodable(power),
                };
                services[d] = Some(service.clone());
                panel_services.push(service);
            }
            let panel_score = members
                .iter()
                .map(|&d| powers[d])
                .fold(f64::INFINITY, f64::min);
            per_panel.push(PanelAllocation {
                panel: array.panels()[k].label.clone(),
                devices: members,
                outcome: FleetOutcome {
                    policy: Policy::MaxMin,
                    per_device: panel_services,
                    shared_bias: Some(bias),
                    score: if panel_score == f64::INFINITY {
                        f64::NEG_INFINITY
                    } else {
                        panel_score
                    },
                    probes: panel_probes[k],
                    elapsed: Seconds(panel_elapsed[k]),
                    history: Vec::new(),
                },
            });
        }
        let per_device: Vec<DeviceService> = services
            .into_iter()
            .map(|s| s.expect("every device is assigned to exactly one panel"))
            .collect();
        // Descent rounds are sequential (panel k's sweep needs the
        // others' latest biases), so the coupled refinement bills its
        // total probe airtime on top of the independent warm-up.
        let mut outcome = PanelOutcome {
            assignment: independent.assignment.clone(),
            per_panel,
            per_device,
            probes: independent.probes + coupled_probes,
            elapsed: Seconds(independent.elapsed.0 + panel_elapsed.iter().sum::<f64>()),
            score: f64::NEG_INFINITY,
            joint: None,
        };
        outcome.score = outcome.min_power_dbm();
        outcome.joint = Some(JointStats {
            rounds,
            converged,
            coupled_probes,
            cross_energy_fraction: cross_energy,
            lift_db: score - baseline,
        });
        outcome
    }

    /// The scheduler one panel runs, translating a fleet-order
    /// [`Policy::Favor`] index into the panel's sub-fleet (max-min
    /// everywhere the favored device is absent or alone).
    pub(crate) fn panel_scheduler(&self, members: &[usize]) -> Scheduler {
        let mut scheduler = self.base.clone();
        if let Policy::Favor { favored } = self.base.policy {
            scheduler.policy = match members.iter().position(|&d| d == favored) {
                Some(sub) if members.len() >= 2 => Policy::Favor { favored: sub },
                _ => Policy::MaxMin,
            };
        }
        scheduler
    }
}

/// The superposed-field probe engine behind the joint search: one
/// [`MultiSurfaceField`] per device (its home panel's full link plus
/// every foreign panel's re-mounted leakage link) and one compiled plan
/// handle per panel × distinct carrier, batch-reused across probes.
///
/// The home link of each field is constructed exactly like
/// [`FleetEvaluator::with_plan_cache`] constructs its links, so at zero
/// coupling the superposed powers are *bit-identical* to the
/// independent evaluator's (property-tested) — the joint path degrades
/// to the fast approximation with no physics drift.
pub struct CoupledEvaluator {
    fields: Vec<MultiSurfaceField>,
    home_of: Vec<usize>,
    carrier_of: Vec<usize>,
    /// `plans[k][c]`: panel `k`'s compiled plan at distinct carrier `c`.
    plans: Vec<Vec<Rc<StackEvaluator>>>,
    coupling: CouplingConfig,
    /// `responses[k][c]`, refilled per bias vector.
    responses: Vec<Vec<SurfaceResponse>>,
    scratch: Vec<Path>,
}

impl CoupledEvaluator {
    /// Builds the coupled engine for `fleet` served by `array` under a
    /// fixed device → panel `assignment`, compiling its own plan caches.
    pub fn new(
        fleet: &Fleet,
        array: &PanelArray,
        assignment: &[usize],
        coupling: CouplingConfig,
    ) -> Self {
        Self::with_caches(fleet, array, assignment, &array.plan_caches(), coupling)
    }

    /// [`CoupledEvaluator::new`] drawing plans from caller-owned caches
    /// (the scheduler's per-run cache set).
    pub(crate) fn with_caches(
        fleet: &Fleet,
        array: &PanelArray,
        assignment: &[usize],
        caches: &[(&'static str, PlanCache)],
        coupling: CouplingConfig,
    ) -> Self {
        assert_eq!(assignment.len(), fleet.len(), "one panel per device");
        let panels = array.panels();
        // Distinct carriers across the fleet, first-appearance order.
        let mut carriers: Vec<u64> = Vec::new();
        let carrier_of: Vec<usize> = fleet
            .devices()
            .iter()
            .map(|device| {
                let bits = device.scenario.frequency.0.to_bits();
                match carriers.iter().position(|&b| b == bits) {
                    Some(i) => i,
                    None => {
                        carriers.push(bits);
                        carriers.len() - 1
                    }
                }
            })
            .collect();
        let plans: Vec<Vec<Rc<StackEvaluator>>> = panels
            .iter()
            .map(|panel| {
                let cache = PanelArray::cache_for(caches, &panel.design);
                carriers
                    .iter()
                    .map(|&bits| cache.plan(Hertz(f64::from_bits(bits))))
                    .collect()
            })
            .collect();
        let fields: Vec<MultiSurfaceField> = fleet
            .devices()
            .iter()
            .zip(assignment)
            .map(|(device, &home)| {
                // The home link matches the independent evaluator's
                // construction bit-for-bit; foreign panels re-mount the
                // same prepared link at their own positions, reusing
                // the cached static paths.
                let home_link =
                    PreparedLink::new(panels[home].scenario_for(&device.scenario).link());
                let links: Vec<PreparedLink> = panels
                    .iter()
                    .enumerate()
                    .map(|(k, panel)| {
                        if k == home {
                            home_link.clone()
                        } else {
                            home_link.with_surface_placement(
                                panel.deployment_for(device.scenario.deployment),
                            )
                        }
                    })
                    .collect();
                MultiSurfaceField::new(home, links)
            })
            .collect();
        let responses = plans
            .iter()
            .map(|row| Vec::with_capacity(row.len()))
            .collect();
        Self {
            fields,
            home_of: assignment.to_vec(),
            carrier_of,
            plans,
            coupling,
            responses,
            scratch: Vec::new(),
        }
    }

    /// Number of devices under evaluation.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Evaluates every panel's response at its bias, per carrier.
    fn fill_responses(&mut self, biases: &[BiasState]) {
        assert_eq!(biases.len(), self.plans.len(), "one bias per panel");
        let Self {
            plans, responses, ..
        } = self;
        for (k, row) in plans.iter().enumerate() {
            responses[k].clear();
            let bias = biases[k].clamped(SUPPLY_CEILING);
            for plan in row {
                responses[k].push(plan.surface_response(bias));
            }
        }
    }

    /// Device `d`'s superposed amplitude from the filled responses —
    /// the canonical association: home first, cross terms in panel
    /// order.
    fn amplitude_of(&mut self, d: usize) -> Complex {
        let field = &self.fields[d];
        let c = self.carrier_of[d];
        let home = self.home_of[d];
        let mut amp = field.home_amplitude(Some(&self.responses[home][c]), &mut self.scratch);
        if !self.coupling.is_disabled() {
            for k in 0..field.panel_count() {
                if k == home {
                    continue;
                }
                amp += field.cross_amplitude(
                    k,
                    Some(&self.responses[k][c]),
                    &self.coupling,
                    &mut self.scratch,
                );
            }
        }
        amp
    }

    /// Per-device superposed received powers, dBm, at a per-panel bias
    /// vector. At zero coupling this equals the independent
    /// [`FleetEvaluator::powers_dbm`] bit-for-bit.
    pub fn powers_dbm(&mut self, biases: &[BiasState]) -> Vec<f64> {
        self.fill_responses(biases);
        (0..self.fields.len())
            .map(|d| Watts(self.amplitude_of(d).norm_sqr()).to_dbm().0)
            .collect()
    }

    /// The fleet-wide min superposed power (`-∞` when empty).
    pub fn min_power_dbm(&mut self, biases: &[BiasState]) -> f64 {
        if self.fields.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.powers_dbm(biases)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Fraction of total received field energy carried by cross terms
    /// at this bias vector — 0 when panels don't talk, approaching 1 if
    /// leakage dominated (it never should).
    pub fn cross_energy_fraction(&mut self, biases: &[BiasState]) -> f64 {
        self.fill_responses(biases);
        let mut cross = 0.0f64;
        let mut total = 0.0f64;
        for d in 0..self.fields.len() {
            let amp = self.amplitude_of(d);
            let c = self.carrier_of[d];
            let home_idx = self.home_of[d];
            let home = self.fields[d]
                .home_amplitude(Some(&self.responses[home_idx][c]), &mut self.scratch);
            cross += (amp - home).norm_sqr();
            total += amp.norm_sqr();
        }
        if total == 0.0 {
            0.0
        } else {
            cross / total
        }
    }

    /// Per-device contribution of every panel *except* `swept` at the
    /// bias vector `biases`: the constant part of one coordinate sweep,
    /// computed once per panel-sweep so each probe costs one panel
    /// evaluation plus one complex add per device. Re-fills all stored
    /// responses from `biases` first — a preceding sweep leaves the
    /// swept panel's stored response at its *last probe*, not its
    /// accepted best.
    fn fixed_amplitudes(&mut self, swept: usize, biases: &[BiasState]) -> Vec<Complex> {
        self.fill_responses(biases);
        (0..self.fields.len())
            .map(|d| {
                let field = &self.fields[d];
                let c = self.carrier_of[d];
                let home = self.home_of[d];
                let mut amp = if home == swept {
                    Complex::ZERO
                } else {
                    field.home_amplitude(Some(&self.responses[home][c]), &mut self.scratch)
                };
                for k in 0..field.panel_count() {
                    if k == home || k == swept {
                        continue;
                    }
                    amp += field.cross_amplitude(
                        k,
                        Some(&self.responses[k][c]),
                        &self.coupling,
                        &mut self.scratch,
                    );
                }
                amp
            })
            .collect()
    }

    /// Per-device powers when panel `swept` probes `bias` and every
    /// other panel holds its `fixed` contribution — the measure
    /// callback of one coordinate sweep. Leaves the swept panel's
    /// stored response at the probed bias;
    /// [`CoupledEvaluator::fixed_amplitudes`] and the canonical
    /// [`CoupledEvaluator::powers_dbm`] both re-fill before reading.
    fn sweep_powers(&mut self, swept: usize, bias: BiasState, fixed: &[Complex]) -> Vec<f64> {
        let bias = bias.clamped(SUPPLY_CEILING);
        let Self {
            plans, responses, ..
        } = self;
        responses[swept].clear();
        for plan in &plans[swept] {
            responses[swept].push(plan.surface_response(bias));
        }
        (0..self.fields.len())
            .map(|d| {
                let field = &self.fields[d];
                let c = self.carrier_of[d];
                let home = self.home_of[d];
                let amp = if home == swept {
                    field.home_amplitude(Some(&self.responses[swept][c]), &mut self.scratch)
                        + fixed[d]
                } else {
                    fixed[d]
                        + field.cross_amplitude(
                            swept,
                            Some(&self.responses[swept][c]),
                            &self.coupling,
                            &mut self.scratch,
                        )
                };
                Watts(amp.norm_sqr()).to_dbm().0
            })
            .collect()
    }
}

/// Serves many independent fleets concurrently through a
/// [`FleetServer`]: each fleet is one job on the sharded work-stealing
/// queue, each worker runs the full shared-bias scheduler, and the
/// results come back in submission order — bit-identical to calling
/// [`Scheduler::run`] serially (workers share nothing).
pub fn serve_fleets(
    server: &FleetServer,
    scheduler: &Scheduler,
    fleets: &[Fleet],
) -> Vec<FleetOutcome> {
    server.serve(fleets.iter().collect(), |_, fleet: &Fleet| {
        scheduler.run(fleet)
    })
}

/// [`serve_fleets`] for panel deployments: every job is a fleet with its
/// own panel array, scheduled by one shared [`PanelScheduler`].
///
/// Compiled cascade plans are shared across jobs through one
/// [`SharedPlanCache`](metasurface::SharedPlanCache) per distinct design:
/// each worker wraps the shared store in its own shard-local
/// [`PlanCache`] handles, so K panels × N fleets compile each
/// `(design, carrier)` plan once process-wide and never contend on a
/// cache lock during probing.
pub fn serve_panel_fleets(
    server: &FleetServer,
    scheduler: &PanelScheduler,
    jobs: &[(Fleet, PanelArray)],
) -> Vec<PanelOutcome> {
    // One shared store per distinct design across every job's array.
    let mut shared: Vec<(&'static str, std::sync::Arc<metasurface::SharedPlanCache>)> = Vec::new();
    for (_, array) in jobs {
        for panel in array.panels() {
            if !shared.iter().any(|(name, _)| *name == panel.design.name) {
                shared.push((
                    panel.design.name,
                    std::sync::Arc::new(metasurface::SharedPlanCache::new(&panel.design.stack)),
                ));
            }
        }
    }
    server.serve(
        jobs.iter().collect(),
        move |_, (fleet, array): &(Fleet, PanelArray)| {
            let mut caches: Vec<(&'static str, PlanCache)> = Vec::new();
            for panel in array.panels() {
                if !caches.iter().any(|(name, _)| *name == panel.design.name) {
                    let (name, store) = shared
                        .iter()
                        .find(|(name, _)| *name == panel.design.name)
                        .expect("every job design has a shared store");
                    caches.push((name, store.handle()));
                }
            }
            scheduler.run_with_caches(fleet, array, &caches)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetDevice;

    fn quad_fleet() -> Fleet {
        let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
        fleet.push(FleetDevice::wifi("w0", Degrees(-70.0), 250.0, 10));
        fleet.push(FleetDevice::ble("b0", Degrees(-50.0), 320.0, 11));
        fleet.push(FleetDevice::wifi("w1", Degrees(40.0), 220.0, 12));
        fleet.push(FleetDevice::ble("b1", Degrees(75.0), 280.0, 13));
        fleet
    }

    #[test]
    fn orientation_assignment_splits_sectors() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        // Sector centers −45° and +45°: the two low-angle mounts go to
        // panel 0, the two high-angle mounts to panel 1.
        let assignment = array.assign(&fleet, &Assignment::ByOrientation);
        assert_eq!(assignment, vec![0, 0, 1, 1]);
        let round_robin = array.assign(&fleet, &Assignment::RoundRobin);
        assert_eq!(round_robin, vec![0, 1, 0, 1]);
    }

    #[test]
    fn axis_distance_wraps_the_half_circle() {
        assert_eq!(axis_distance_deg(Degrees(-90.0), Degrees(90.0)), 0.0);
        assert_eq!(axis_distance_deg(Degrees(0.0), Degrees(90.0)), 90.0);
        assert!((axis_distance_deg(Degrees(170.0), Degrees(-5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn best_reference_assignment_is_balanced_and_in_range() {
        let fleet = Fleet::mixed_wifi_ble(9, 21);
        let array = PanelArray::uniform(fleet.design.clone(), 3);
        let assignment = array.assign(&fleet, &Assignment::BestReference);
        assert_eq!(assignment.len(), 9);
        for k in 0..3 {
            let load = assignment.iter().filter(|&&a| a == k).count();
            assert!(load <= 3, "panel {k} over capacity: {load}");
        }
    }

    #[test]
    fn best_reference_ties_fall_back_to_sectors_not_fleet_order() {
        // On a uniform array every panel measures bit-identically, so
        // the reference powers tie for every device; the tie-break must
        // recover the orientation sectors (regression: a strict > kept
        // the lowest index and block-filled panel 0 in fleet order).
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let best_ref = array.assign(&fleet, &Assignment::BestReference);
        let by_orientation = array.assign(&fleet, &Assignment::ByOrientation);
        assert_eq!(best_ref, by_orientation);
        assert_eq!(best_ref, vec![0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cover every device")]
    fn explicit_assignment_must_cover_the_fleet() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let _ = array.assign(&fleet, &Assignment::Explicit(vec![0, 1]));
    }

    #[test]
    fn single_panel_reproduces_the_shared_bias_scheduler() {
        // K = 1 is the degenerate array: same assignment (everyone on
        // panel 0), same search, exactly the same allocation.
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 1);
        let panel = PanelScheduler::max_min().run(&fleet, &array);
        let shared = Scheduler::max_min().run(&fleet);
        assert_eq!(panel.probes, shared.probes);
        assert_eq!(panel.per_panel[0].outcome.shared_bias, shared.shared_bias);
        for (a, b) in panel.per_device.iter().zip(&shared.per_device) {
            assert_eq!(a.power_dbm, b.power_dbm);
            assert_eq!(a.bias, b.bias);
        }
        assert_eq!(panel.min_power_dbm(), shared.min_power_dbm());
    }

    #[test]
    fn panels_lift_the_shared_bias_compromise() {
        // The acceptance workload: the 32-device mixed Wi-Fi/BLE fleet
        // split across 4 panels must *strictly* beat the single-panel
        // shared-bias worst link (the shared compromise pinches mutually
        // mismatched devices that separate panels serve at their own
        // optima). A panel min can never be *worse* in aggregate than
        // leaving conflicting devices pinched; the strict gain here is
        // the measured headline (≈ +2.8 dB on this workload).
        let fleet = Fleet::mixed_wifi_ble(32, 2021);
        let array = PanelArray::uniform(fleet.design.clone(), 4);
        let panel = PanelScheduler::max_min().run(&fleet, &array);
        let shared = Scheduler::max_min().run(&fleet);
        assert!(
            panel.min_power_dbm() > shared.min_power_dbm(),
            "panels {:.2} dBm vs shared {:.2} dBm",
            panel.min_power_dbm(),
            shared.min_power_dbm()
        );
        // Score is the fleet-wide min.
        assert_eq!(panel.score, panel.min_power_dbm());
        // Panels tuned concurrently: elapsed is the slowest panel, not
        // the sum.
        let slowest = panel
            .per_panel
            .iter()
            .map(|p| p.outcome.elapsed.0)
            .fold(0.0, f64::max);
        assert_eq!(panel.elapsed.0, slowest);
    }

    #[test]
    fn batched_panel_matrices_match_the_naive_loop() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let assignment = array.assign(&fleet, &Assignment::ByOrientation);
        let biases: Vec<BiasState> = [(0.0, 0.0), (6.0, 18.0), (30.0, 3.0)]
            .iter()
            .map(|&(x, y)| BiasState::new(x, y))
            .collect();
        let fast = array.batched_panel_matrices(&fleet, &assignment, &biases);
        let naive = array.naive_panel_matrices(&fleet, &assignment, &biases);
        for (k, (rows_fast, rows_naive)) in fast.iter().zip(&naive).enumerate() {
            for (row_fast, row_naive) in rows_fast.iter().zip(rows_naive) {
                for (a, b) in row_fast.iter().zip(row_naive) {
                    assert!((a - b).abs() < 1e-12, "panel {k}: batched {a} vs naive {b}");
                }
            }
        }
    }

    #[test]
    fn distributed_array_panels_measure_differently() {
        // Distributed panels hang at different points along the link, so
        // the same device sees genuinely different physics per panel —
        // the property the handoff margins live on (a uniform array ties
        // bit-for-bit instead).
        let fleet = quad_fleet();
        let array = PanelArray::distributed(fleet.design.clone(), 3);
        assert_eq!(array.len(), 3);
        let bias = [BiasState::new(6.0, 6.0)];
        let all_on_one = |k: usize| {
            let assignment = vec![k; fleet.len()];
            array.batched_panel_matrices(&fleet, &assignment, &bias)[k][0].clone()
        };
        let p0 = all_on_one(0);
        let p2 = all_on_one(2);
        assert!(p0.iter().zip(&p2).any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn warm_panel_run_keeps_assignment_and_never_regresses() {
        let fleet = Fleet::mixed_wifi_ble(8, 77);
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let scheduler = PanelScheduler::max_min();
        let cold = scheduler.run(&fleet, &array);
        let warm = scheduler.run_warm(&fleet, &array, &cold, &WarmConfig::paper_default());
        assert_eq!(warm.assignment, cold.assignment);
        assert!(
            warm.min_power_dbm() >= cold.min_power_dbm(),
            "warm {:.2} vs cold {:.2} dBm",
            warm.min_power_dbm(),
            cold.min_power_dbm()
        );
        assert!(warm.probes < cold.probes, "warm must spend fewer probes");
    }

    #[test]
    fn panel_mounting_fraction_changes_the_physics() {
        // The same device served by panels at different mounting points
        // must see different bounce-path interference.
        let fleet = quad_fleet();
        let near = PanelArray::new(vec![
            Panel::new("near", fleet.design.clone(), Degrees(0.0)).at_surface_fraction(0.2)
        ]);
        let far = PanelArray::new(vec![
            Panel::new("far", fleet.design.clone(), Degrees(0.0)).at_surface_fraction(0.8)
        ]);
        let assignment = vec![0; fleet.len()];
        let bias = [BiasState::new(6.0, 6.0)];
        let p_near = near.batched_panel_matrices(&fleet, &assignment, &bias);
        let p_far = far.batched_panel_matrices(&fleet, &assignment, &bias);
        assert!(p_near[0][0]
            .iter()
            .zip(&p_far[0][0])
            .any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn favor_policy_translates_to_the_favored_panel() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 2);
        let mut scheduler = PanelScheduler::max_min();
        scheduler.base = Scheduler::favor(2); // "w1", served by panel 1
        let outcome = scheduler.run(&fleet, &array);
        // Panel 1 ran isolation for w1 (sub-index 0 of [2, 3]); panel 0
        // fell back to max-min.
        assert_eq!(
            outcome.per_panel[1].outcome.policy,
            Policy::Favor { favored: 0 }
        );
        assert_eq!(outcome.per_panel[0].outcome.policy, Policy::MaxMin);
        let margin = outcome.per_device[2].power_dbm - outcome.per_device[3].power_dbm;
        assert!(margin > 0.0, "favored margin = {margin:.1} dB");
    }

    #[test]
    fn empty_fleet_takes_the_shared_guard() {
        let empty = Fleet::new(metasurface::designs::fr4_optimized());
        let array = PanelArray::uniform(empty.design.clone(), 3);
        let outcome = PanelScheduler::max_min().run(&empty, &array);
        assert!(outcome.per_device.is_empty());
        assert!(outcome.assignment.is_empty());
        assert_eq!(outcome.probes, 0);
        assert_eq!(outcome.min_power_dbm(), f64::NEG_INFINITY);
        assert_eq!(outcome.per_panel.len(), 3);
        assert!(outcome
            .per_panel
            .iter()
            .all(|p| p.outcome.per_device.is_empty()));
    }

    #[test]
    fn zero_coupling_joint_is_bitwise_the_independent_run() {
        let fleet = Fleet::mixed_wifi_ble(8, 41);
        let array = PanelArray::distributed(fleet.design.clone(), 3);
        let independent = PanelScheduler::max_min().run(&fleet, &array);
        let joint = PanelScheduler::max_min()
            .with_joint(JointConfig {
                coupling: CouplingConfig::disabled(),
                ..JointConfig::default()
            })
            .run(&fleet, &array);
        assert!(joint.same_allocation(&independent));
        assert_eq!(joint.probes, independent.probes);
        let stats = joint.joint.expect("joint run reports stats");
        assert_eq!(stats.rounds, 0);
        assert!(stats.converged);
        assert_eq!(stats.coupled_probes, 0);
        assert_eq!(stats.cross_energy_fraction, 0.0);
        assert_eq!(stats.lift_db, 0.0);
    }

    #[test]
    fn coupled_evaluator_at_zero_coupling_matches_the_independent_physics() {
        // The physics-level guarantee behind the delegation: the
        // superposed powers with coupling off are bit-identical to the
        // independent per-panel evaluator's, for every panel's
        // sub-fleet at an arbitrary bias vector.
        let fleet = Fleet::mixed_wifi_ble(6, 2021);
        let array = PanelArray::distributed(fleet.design.clone(), 2);
        let assignment = array.assign(&fleet, &Assignment::ByOrientation);
        let biases = [BiasState::new(7.0, 22.0), BiasState::new(18.0, 3.0)];
        let mut coupled =
            CoupledEvaluator::new(&fleet, &array, &assignment, CouplingConfig::disabled());
        let coupled_powers = coupled.powers_dbm(&biases);
        let caches = array.plan_caches();
        for (k, (subfleet, members)) in array.subfleets(&fleet, &assignment).into_iter().enumerate()
        {
            if subfleet.is_empty() {
                continue;
            }
            let cache = PanelArray::cache_for(&caches, &array.panels()[k].design);
            let evaluator = FleetEvaluator::with_plan_cache(&subfleet, cache);
            let independent = evaluator.powers_dbm(biases[k]);
            for (i, &d) in members.iter().enumerate() {
                assert_eq!(
                    coupled_powers[d].to_bits(),
                    independent[i].to_bits(),
                    "device {d} on panel {k}: coupled {} vs independent {}",
                    coupled_powers[d],
                    independent[i]
                );
            }
        }
    }

    #[test]
    fn joint_search_never_loses_to_independent_biases_under_coupling() {
        // The honest comparison: both bias vectors measured under the
        // same coupled physics. The descent starts at the independent
        // optimum and the warm sweep keeps its center on ties, so the
        // joint biases can only gain (up to canonical-reassociation
        // float dust).
        let fleet = Fleet::mixed_wifi_ble(8, 2021);
        let array = PanelArray::distributed(fleet.design.clone(), 4);
        let joint = PanelScheduler::max_min()
            .with_joint(JointConfig::default())
            .run(&fleet, &array);
        let stats = joint.joint.expect("joint run reports stats");
        assert!(
            stats.lift_db >= -1e-9,
            "joint must not lose to the independent biases: lift = {} dB",
            stats.lift_db
        );
        assert!(stats.rounds >= 1);
        assert!(stats.coupled_probes > 0);
        assert!(
            stats.cross_energy_fraction > 0.0,
            "distributed panels must actually couple"
        );
        assert!(stats.cross_energy_fraction < 0.5);
        // The outcome's bookkeeping reflects the extra coupled work.
        let independent = PanelScheduler::max_min().run(&fleet, &array);
        assert!(joint.probes > independent.probes);
        assert!(joint.elapsed.0 > independent.elapsed.0);
        assert_eq!(joint.assignment, independent.assignment);
    }

    #[test]
    fn single_panel_joint_short_circuits() {
        let fleet = quad_fleet();
        let array = PanelArray::uniform(fleet.design.clone(), 1);
        let independent = PanelScheduler::max_min().run(&fleet, &array);
        let joint = PanelScheduler::max_min()
            .with_joint(JointConfig::default())
            .run(&fleet, &array);
        assert!(joint.same_allocation(&independent));
        assert_eq!(joint.joint.expect("stats").rounds, 0);
    }

    #[test]
    #[should_panic(expected = "Policy::MaxMin")]
    fn joint_mode_rejects_non_maxmin_policies() {
        let fleet = quad_fleet();
        let array = PanelArray::distributed(fleet.design.clone(), 2);
        let mut scheduler = PanelScheduler::max_min().with_joint(JointConfig::default());
        scheduler.base = Scheduler::favor(1);
        let _ = scheduler.run(&fleet, &array);
    }

    #[test]
    fn server_outcomes_match_serial_execution() {
        // The ≥8-concurrent-fleets acceptance gate: outcomes through the
        // bounded-queue worker pool must be identical to serial runs.
        let fleets: Vec<Fleet> = (0..8).map(|s| Fleet::mixed_wifi_ble(3, 100 + s)).collect();
        let scheduler = Scheduler::max_min();
        let serial: Vec<FleetOutcome> = fleets.iter().map(|f| scheduler.run(f)).collect();
        let server = FleetServer::new(4);
        let served = serve_fleets(&server, &scheduler, &fleets);
        assert_eq!(served.len(), 8);
        for (a, b) in served.iter().zip(&serial) {
            assert_eq!(a.shared_bias, b.shared_bias);
            assert_eq!(a.score, b.score);
            assert_eq!(a.probes, b.probes);
            for (x, y) in a.per_device.iter().zip(&b.per_device) {
                assert_eq!(x.power_dbm, y.power_dbm);
                assert_eq!(x.throughput_bits_hz, y.throughput_bits_hz);
            }
        }
    }

    #[test]
    fn served_panel_fleets_surface_joint_stats() {
        // Coupling telemetry must survive the server path: every job
        // served under a joint scheduler reports its descent rounds and
        // cross-term energy, bit-identical to the direct run.
        let jobs: Vec<(Fleet, PanelArray)> = (0..3)
            .map(|s| {
                let fleet = Fleet::mixed_wifi_ble(4, 300 + s);
                let array = PanelArray::distributed(fleet.design.clone(), 2);
                (fleet, array)
            })
            .collect();
        let scheduler = PanelScheduler::max_min().with_joint(JointConfig::default());
        let direct: Vec<PanelOutcome> = jobs.iter().map(|(f, a)| scheduler.run(f, a)).collect();
        let served = serve_panel_fleets(&FleetServer::new(2), &scheduler, &jobs);
        for (a, b) in served.iter().zip(&direct) {
            let (sa, sb) = (a.joint.expect("joint stats"), b.joint.expect("joint stats"));
            assert!(sa.rounds >= 1);
            assert!(sa.coupled_probes > 0);
            assert!(sa.cross_energy_fraction > 0.0 && sa.cross_energy_fraction < 1.0);
            assert_eq!(sa.rounds, sb.rounds);
            assert_eq!(sa.coupled_probes, sb.coupled_probes);
            assert_eq!(
                sa.cross_energy_fraction.to_bits(),
                sb.cross_energy_fraction.to_bits()
            );
            assert_eq!(sa.lift_db.to_bits(), sb.lift_db.to_bits());
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn served_panel_fleets_match_direct_runs() {
        let jobs: Vec<(Fleet, PanelArray)> = (0..4)
            .map(|s| {
                let fleet = Fleet::mixed_wifi_ble(4, 200 + s);
                let array = PanelArray::uniform(fleet.design.clone(), 2);
                (fleet, array)
            })
            .collect();
        let scheduler = PanelScheduler::max_min();
        let direct: Vec<PanelOutcome> = jobs.iter().map(|(f, a)| scheduler.run(f, a)).collect();
        let served = serve_panel_fleets(&FleetServer::new(3), &scheduler, &jobs);
        for (a, b) in served.iter().zip(&direct) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.score, b.score);
            assert_eq!(a.panel_biases(), b.panel_biases());
        }
    }
}
