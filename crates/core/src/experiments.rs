//! Typed experiment runners — one per table/figure of the paper.
//!
//! These are the single source of truth shared by the Criterion benches,
//! the `expts` binary and the integration tests: each function
//! regenerates the data behind one published figure and returns it as a
//! plain struct the caller can print, plot or assert on. DESIGN.md's
//! experiment index maps figure ids to these runners.

use control::estimator::{estimate_rotation, RotationEstimate};
use control::sweep::SweepConfig;
use devices::ble::BleCentral;
use devices::human::HumanTarget;
use devices::wifi::WifiStation;
use metasurface::bias::{compare_to_paper, RotationMap};
use metasurface::designs::{fr4_naive, fr4_optimized, rogers_reference, Design};
use metasurface::evaluator::StackEvaluator;
use metasurface::response::Metasurface;
use metasurface::stack::BiasState;
use metasurface::tables::TABLE1_VOLTAGES;
use microwave::analyzer::{frequency_grid, Trace};
use propagation::antenna::Antenna;
use propagation::capacity::capacity_bits;
use propagation::environment::Environment;
use propagation::noise::NoiseModel;
use rfmath::rng::SeedSplitter;
use rfmath::stats::Histogram;
use rfmath::units::{Dbm, Hertz, Meters, Seconds, Volts, Watts};

use crate::scenario::Scenario;
use crate::sensing::{run_sensing, SensingConfig, SensingResult};
use crate::system::{LlamaSystem, SystemRig};

/// Histogram pair for the RSSI-distribution figures (2a, 2b, 20).
#[derive(Clone, Debug)]
pub struct DistributionPair {
    /// Label of the first condition (e.g. "match" / "with surface").
    pub label_a: &'static str,
    /// RSSI histogram under the first condition.
    pub hist_a: Histogram,
    /// Label of the second condition.
    pub label_b: &'static str,
    /// RSSI histogram under the second condition.
    pub hist_b: Histogram,
    /// Distance between the two distribution modes, dB.
    pub mode_gap_db: f64,
}

/// Number of paired channel realizations behind each Figure 2 / 20
/// histogram: the paper's captures span minutes in a live room, so the
/// multipath re-randomizes many times within one distribution.
const DISTRIBUTION_REALIZATIONS: usize = 16;

/// Default histogram bin width of the Figure 2 distributions, dB —
/// matches the 1 dB RSSI reporting quantum of the emulated radios.
pub const FIG2_BIN_DB: f64 = 1.0;

/// Default histogram bin width of the Figure 20 distribution, dB. Finer
/// than the Figure 2 default so the reported with/without-surface mode
/// gap is resolved below whole-dB steps wherever the readings allow
/// (the ROADMAP Figure 20 open item; note the ESP8266 reader itself
/// quantizes to integer dBm, which bounds what finer bins can recover —
/// see the calibration findings in ROADMAP.md).
pub const FIG20_BIN_DB: f64 = 0.5;

/// An RSSI histogram over `[lo, hi)` with `bin_db`-wide bins.
fn rssi_histogram(lo: f64, hi: f64, bin_db: f64) -> Histogram {
    assert!(
        bin_db > 0.0 && bin_db.is_finite(),
        "bin width must be a positive number of dB"
    );
    let bins = (((hi - lo) / bin_db).round() as usize).max(1);
    Histogram::new(lo, hi, bins)
}

/// Shared sampling loop of the distribution figures (2a, 2b, 20).
///
/// Both conditions see the *same* room at each instant (the paper swaps
/// the mount or surface, not the lab), so `powers` receives one room
/// seed per realization and returns the paired true powers; `reader`
/// turns a true power into quantized RSSI samples. The requested
/// `samples` are distributed exactly across the realizations.
fn paired_distribution(
    split: &SeedSplitter,
    room_label: &str,
    samples: usize,
    hist_a: &mut Histogram,
    hist_b: &mut Histogram,
    mut powers: impl FnMut(u64) -> (Dbm, Dbm),
    mut reader: impl FnMut(Dbm, usize) -> Vec<f64>,
) {
    if samples == 0 {
        return;
    }
    let realizations = DISTRIBUTION_REALIZATIONS.min(samples);
    for i in 0..realizations {
        let per = samples / realizations + usize::from(i < samples % realizations);
        let (p_a, p_b) = powers(split.derive(room_label, i as u64));
        hist_a.add_all(&reader(p_a, per));
        hist_b.add_all(&reader(p_b, per));
    }
}

/// Figure 2(a): Wi-Fi RSSI distributions, matched vs mismatched mounts.
pub fn fig2a(seed: u64, samples: usize) -> DistributionPair {
    fig2a_binned(seed, samples, FIG2_BIN_DB)
}

/// [`fig2a`] with an explicit histogram bin width (dB).
pub fn fig2a_binned(seed: u64, samples: usize, bin_db: f64) -> DistributionPair {
    let split = SeedSplitter::new(seed);
    let mut station = WifiStation::esp8266(&split);
    let mut hist_a = rssi_histogram(-80.0, -20.0, bin_db);
    let mut hist_b = rssi_histogram(-80.0, -20.0, bin_db);
    paired_distribution(
        &split,
        "fig2a-room",
        samples,
        &mut hist_a,
        &mut hist_b,
        |room| {
            let matched = Scenario::wifi_iot_default()
                .with_mismatch_deg(0.0)
                .with_seed(room);
            let mismatched = Scenario::wifi_iot_default()
                .with_mismatch_deg(90.0)
                .with_seed(room);
            (
                matched.link().received_dbm(None),
                mismatched.link().received_dbm(None),
            )
        },
        |p, n| station.read_rssi_batch(p, n),
    );
    DistributionPair {
        label_a: "match",
        label_b: "mismatch",
        mode_gap_db: hist_a.mode() - hist_b.mode(),
        hist_a,
        hist_b,
    }
}

/// Figure 2(b): BLE RSSI distributions, matched vs mismatched mounts.
pub fn fig2b(seed: u64, samples: usize) -> DistributionPair {
    fig2b_binned(seed, samples, FIG2_BIN_DB)
}

/// [`fig2b`] with an explicit histogram bin width (dB).
pub fn fig2b_binned(seed: u64, samples: usize, bin_db: f64) -> DistributionPair {
    let split = SeedSplitter::new(seed);
    let mut central = BleCentral::raspberry_pi3(&split);
    let mut hist_a = rssi_histogram(-100.0, -40.0, bin_db);
    let mut hist_b = rssi_histogram(-100.0, -40.0, bin_db);
    paired_distribution(
        &split,
        "fig2b-room",
        samples,
        &mut hist_a,
        &mut hist_b,
        |room| {
            let matched = Scenario::ble_default()
                .with_mismatch_deg(0.0)
                .with_seed(room);
            let mismatched = Scenario::ble_default()
                .with_mismatch_deg(90.0)
                .with_seed(room);
            (
                matched.link().received_dbm(None),
                mismatched.link().received_dbm(None),
            )
        },
        |p, n| central.read_rssi_batch(p, n),
    );
    DistributionPair {
        label_a: "match",
        label_b: "mismatch",
        mode_gap_db: hist_a.mode() - hist_b.mode(),
        hist_a,
        hist_b,
    }
}

/// S21-efficiency traces of a design (Figures 8, 9, 10): per-axis
/// excitation over 2–2.8 GHz.
#[derive(Clone, Debug)]
pub struct EfficiencyCurves {
    /// Design display name.
    pub name: &'static str,
    /// X-polarized excitation efficiency trace.
    pub x_trace: Trace,
    /// Y-polarized excitation efficiency trace.
    pub y_trace: Trace,
    /// Worst in-band (2.4–2.5 GHz) efficiency across both axes, dB.
    pub worst_in_band_db: f64,
}

/// Runs the design-efficiency sweep behind Figures 8–10.
///
/// One cascade per frequency feeds both polarization traces (the old
/// path evaluated the full stack twice per point).
pub fn design_efficiency(design: &Design, points: usize) -> EfficiencyCurves {
    let freqs = frequency_grid(Hertz::from_ghz(2.0), Hertz::from_ghz(2.8), points);
    let bias = BiasState::new(6.0, 6.0);
    let mut x_trace = Trace::default();
    let mut y_trace = Trace::default();
    for &f in &freqs {
        let r = design.stack.response(f, bias);
        x_trace.freqs.push(f);
        y_trace.freqs.push(f);
        x_trace.values_db.push(
            r.map(|r| r.efficiency_x_db().0)
                .unwrap_or(f64::NEG_INFINITY),
        );
        y_trace.values_db.push(
            r.map(|r| r.efficiency_y_db().0)
                .unwrap_or(f64::NEG_INFINITY),
        );
    }
    let band = (Hertz::from_ghz(2.4), Hertz::from_ghz(2.5));
    let worst = x_trace
        .min_db_in_band(band.0, band.1)
        .unwrap_or(f64::NEG_INFINITY)
        .min(
            y_trace
                .min_db_in_band(band.0, band.1)
                .unwrap_or(f64::NEG_INFINITY),
        );
    EfficiencyCurves {
        name: design.name,
        x_trace,
        y_trace,
        worst_in_band_db: worst,
    }
}

/// Figure 8: the Rogers 5880 reference design curves.
pub fn fig8(points: usize) -> EfficiencyCurves {
    design_efficiency(&rogers_reference(), points)
}

/// Figure 9: the naive FR4 substitution curves.
pub fn fig9(points: usize) -> EfficiencyCurves {
    design_efficiency(&fr4_naive(), points)
}

/// Figure 10: the optimized FR4 (LLAMA) curves.
pub fn fig10(points: usize) -> EfficiencyCurves {
    design_efficiency(&fr4_optimized(), points)
}

/// Figure 11: x-excitation efficiency vs frequency for a family of Vy
/// settings at fixed Vx.
#[derive(Clone, Debug)]
pub struct BiasEfficiencyFamily {
    /// The Vy values of each curve.
    pub vy_values: Vec<f64>,
    /// One efficiency trace per Vy.
    pub traces: Vec<Trace>,
    /// Worst in-band value across the family, dB (paper: > −8 dB).
    pub worst_in_band_db: f64,
}

/// Runs the Figure 11 family sweep.
///
/// The family shares `Vx = 6 V`, so at each frequency the batched
/// evaluator computes the static stages and the X branch once and only
/// re-solves the Y branch per `Vy` — a `1×7` grid column instead of
/// seven independent cascade rebuilds.
pub fn fig11(points: usize) -> BiasEfficiencyFamily {
    let design = fr4_optimized();
    let freqs = frequency_grid(Hertz::from_ghz(2.0), Hertz::from_ghz(2.8), points);
    let vy_values = vec![2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0];
    let mut traces = vec![Trace::default(); vy_values.len()];
    for &f in &freqs {
        let evaluator = StackEvaluator::new(&design.stack, f);
        let column = evaluator.eval_grid(&[6.0], &vy_values);
        for (trace, r) in traces.iter_mut().zip(&column) {
            trace.freqs.push(f);
            trace.values_db.push(
                r.map(|r| r.efficiency_x_db().0)
                    .unwrap_or(f64::NEG_INFINITY),
            );
        }
    }
    let mut worst = f64::INFINITY;
    for t in &traces {
        if let Some(w) = t.min_db_in_band(Hertz::from_ghz(2.4), Hertz::from_ghz(2.5)) {
            worst = worst.min(w);
        }
    }
    BiasEfficiencyFamily {
        vy_values,
        traces,
        worst_in_band_db: worst,
    }
}

/// Table 1: the simulated rotation grid and its comparison to the
/// paper's published values.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Our circuit-model rotation map over the paper's voltage grid.
    pub simulated: RotationMap,
    /// The paper's grid.
    pub paper: RotationMap,
    /// Fractional overlap of magnitude ranges.
    pub range_overlap: f64,
    /// Spearman rank correlation of the flattened magnitude grids.
    pub spearman_rho: f64,
}

/// Runs the Table 1 comparison.
pub fn table1() -> Table1 {
    let simulated =
        RotationMap::from_design(&fr4_optimized(), Hertz::from_ghz(2.44), &TABLE1_VOLTAGES);
    let (range_overlap, spearman_rho) = compare_to_paper(&simulated);
    Table1 {
        simulated,
        paper: RotationMap::from_paper_table(),
        range_overlap,
        spearman_rho,
    }
}

/// The Table 1 (Vx, Vy) probe grid used by the §3.4 estimation studies.
fn table1_bias_grid() -> Vec<(Volts, Volts)> {
    let mut grid = Vec::with_capacity(TABLE1_VOLTAGES.len() * TABLE1_VOLTAGES.len());
    for &vx in &TABLE1_VOLTAGES {
        for &vy in &TABLE1_VOLTAGES {
            grid.push((Volts(vx), Volts(vy)));
        }
    }
    grid
}

/// Figure 12: the §3.4 estimation procedure on a live system.
pub fn fig12(seed: u64) -> RotationEstimate {
    let scenario = Scenario::transmissive_default()
        .with_mismatch_deg(0.0)
        .with_seed(seed);
    let mut system = LlamaSystem::new(scenario);
    let mut rig = SystemRig {
        system: &mut system,
    };
    estimate_rotation(&mut rig, (Volts(6.0), Volts(6.0)), &table1_bias_grid(), 1.0)
}

/// One distance point of the Figure 15 study.
#[derive(Clone, Debug)]
pub struct HeatmapAtDistance {
    /// Tx–Rx (or Tx–surface) distance, cm.
    pub distance_cm: f64,
    /// Voltage axis of the heatmap.
    pub volts: Vec<f64>,
    /// Row-major received power grid, dBm (rows = Vy).
    pub power_dbm: Vec<f64>,
    /// Best bias on the grid.
    pub best_bias: BiasState,
    /// Peak-to-trough power spread over the grid, dB.
    pub spread_db: f64,
}

/// Figures 15(a–g) / 21(a–h): power heatmaps across distance.
pub fn heatmaps(base: &Scenario, distances_cm: &[f64], steps: usize) -> Vec<HeatmapAtDistance> {
    distances_cm
        .iter()
        .map(|&cm| {
            let mut sys = LlamaSystem::new(base.clone().with_distance_cm(cm));
            let (volts, grid) = sys.power_heatmap(steps);
            let hi = rfmath::stats::max(&grid);
            let lo = rfmath::stats::min(&grid);
            let best_idx = grid
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let n = volts.len();
            HeatmapAtDistance {
                distance_cm: cm,
                best_bias: BiasState::new(volts[best_idx % n], volts[best_idx / n]),
                spread_db: hi - lo,
                volts,
                power_dbm: grid,
            }
        })
        .collect()
}

/// The paper's Figure 15 distances: 24–60 cm in λ/2 ≈ 6 cm steps.
pub const FIG15_DISTANCES_CM: [f64; 7] = [24.0, 30.0, 36.0, 42.0, 48.0, 54.0, 60.0];

/// The paper's Figure 21 distances: 24–66 cm.
pub const FIG21_DISTANCES_CM: [f64; 8] = [24.0, 30.0, 36.0, 42.0, 48.0, 54.0, 60.0, 66.0];

/// Figure 15: transmissive heatmaps plus the 15(h) min/max rotation
/// extraction per distance.
#[derive(Clone, Debug)]
pub struct Fig15 {
    /// Heatmaps per distance (panels a–g).
    pub heatmaps: Vec<HeatmapAtDistance>,
    /// Per-distance (min, max) rotation estimates, degrees (panel h).
    pub rotation_min_max_deg: Vec<(f64, f64)>,
}

/// Runs the Figure 15 study.
pub fn fig15(seed: u64, steps: usize) -> Fig15 {
    let base = Scenario::transmissive_default().with_seed(seed);
    let maps = heatmaps(&base, &FIG15_DISTANCES_CM, steps);
    let rotation = FIG15_DISTANCES_CM
        .iter()
        .map(|&cm| {
            let scenario = Scenario::transmissive_default()
                .with_mismatch_deg(0.0)
                .with_distance_cm(cm)
                .with_seed(seed);
            let mut system = LlamaSystem::new(scenario);
            let mut rig = SystemRig {
                system: &mut system,
            };
            let est =
                estimate_rotation(&mut rig, (Volts(6.0), Volts(6.0)), &table1_bias_grid(), 1.0);
            (est.min_rotation.0, est.max_rotation.0)
        })
        .collect();
    Fig15 {
        heatmaps: maps,
        rotation_min_max_deg: rotation,
    }
}

/// A with/without-surface power comparison across a swept parameter
/// (Figures 16, 17, 22-top).
#[derive(Clone, Debug)]
pub struct PowerComparison {
    /// The swept parameter values (cm or GHz, per experiment).
    pub x_values: Vec<f64>,
    /// Received power with the surface optimally biased, dBm.
    pub with_surface_dbm: Vec<f64>,
    /// Received power without the surface, dBm.
    pub without_surface_dbm: Vec<f64>,
    /// Largest improvement across the sweep, dB.
    pub max_improvement_db: f64,
}

fn optimize_at(scenario: Scenario) -> (f64, f64) {
    let mut sys = LlamaSystem::new(scenario);
    let out = sys.optimize();
    (out.best_power_dbm.0, out.baseline_dbm.0)
}

/// Figure 16: transmissive power vs distance, with/without surface.
pub fn fig16(seed: u64) -> PowerComparison {
    let mut with = Vec::new();
    let mut without = Vec::new();
    for &cm in &FIG15_DISTANCES_CM {
        let (w, wo) = optimize_at(
            Scenario::transmissive_default()
                .with_distance_cm(cm)
                .with_seed(seed),
        );
        with.push(w);
        without.push(wo);
    }
    let max_improvement_db = with
        .iter()
        .zip(&without)
        .map(|(w, wo)| w - wo)
        .fold(f64::NEG_INFINITY, f64::max);
    PowerComparison {
        x_values: FIG15_DISTANCES_CM.to_vec(),
        with_surface_dbm: with,
        without_surface_dbm: without,
        max_improvement_db,
    }
}

/// Figure 17: power vs operating frequency (2.40–2.50 GHz).
pub fn fig17(seed: u64) -> PowerComparison {
    let freqs: Vec<f64> = (0..=10).map(|i| 2.40 + 0.01 * i as f64).collect();
    let mut with = Vec::new();
    let mut without = Vec::new();
    for &ghz in &freqs {
        let (w, wo) = optimize_at(
            Scenario::transmissive_default()
                .with_frequency(Hertz::from_ghz(ghz))
                .with_seed(seed),
        );
        with.push(w);
        without.push(wo);
    }
    let max_improvement_db = with
        .iter()
        .zip(&without)
        .map(|(w, wo)| w - wo)
        .fold(f64::NEG_INFINITY, f64::max);
    PowerComparison {
        x_values: freqs,
        with_surface_dbm: with,
        without_surface_dbm: without,
        max_improvement_db,
    }
}

/// Capacity-vs-transmit-power study (Figures 18, 19).
#[derive(Clone, Debug)]
pub struct CapacityStudy {
    /// Transmit powers swept, mW.
    pub tx_mw: Vec<f64>,
    /// Capacity with the surface, bit/s/Hz.
    pub with_surface: Vec<f64>,
    /// Capacity without the surface, bit/s/Hz.
    pub without_surface: Vec<f64>,
    /// Lowest Tx power (mW) at which the surface still helps; `None`
    /// when it always helps.
    pub crossover_mw: Option<f64>,
}

/// Runs a capacity study for an antenna type and environment.
///
/// The link sits at room scale (3 m) and capacity is computed against
/// the controller chain's *effective* noise floor, so the low-power end
/// of the sweep genuinely starves: sweep measurements wander and the
/// converged state loses its edge (the Figure 19 low-power regime).
pub fn capacity_study(antenna: Antenna, environment: Environment, seed: u64) -> CapacityStudy {
    let tx_mw = vec![0.002, 0.01, 0.05, 0.2, 1.0, 5.0, 20.0, 100.0, 500.0, 1000.0];
    let mut noise = NoiseModel::usrp_1mhz();
    let mut with = Vec::new();
    let mut without = Vec::new();
    for &mw in &tx_mw {
        // Hall-scale 10 m link: at the bottom of the power sweep the
        // received signal sinks toward the RSSI chain's effective floor,
        // the sweep's feedback wanders by several dB, and convergence
        // degrades — the paper's low-power omni-multipath regime.
        let scenario = Scenario::transmissive_default()
            .with_distance_cm(1000.0)
            .with_antennas(antenna.clone())
            .with_environment(environment.clone())
            .with_tx_power(Watts::from_mw(mw))
            .with_seed(seed);
        let mut sys = LlamaSystem::new(scenario);
        // Capacity referenced to the same effective floor the RSSI
        // chain sees.
        noise.noise_figure_db = -85.0 - rfmath::units::thermal_noise_dbm(noise.bandwidth).0;
        let out = sys.optimize();
        with.push(capacity_bits(out.best_power_dbm, &noise));
        without.push(capacity_bits(out.baseline_dbm, &noise));
    }
    // Crossover: the lowest power where the surface wins.
    let crossover_mw = tx_mw
        .iter()
        .zip(with.iter().zip(&without))
        .find(|(_, (w, wo))| w > wo)
        .map(|(mw, _)| *mw);
    CapacityStudy {
        tx_mw,
        with_surface: with,
        without_surface: without,
        crossover_mw,
    }
}

/// Figure 18(a): omni antennas in the anechoic environment.
pub fn fig18_omni(seed: u64) -> CapacityStudy {
    capacity_study(Antenna::omni_6dbi(), Environment::anechoic(), seed)
}

/// Figure 18(b): directional antennas in the anechoic environment.
pub fn fig18_directional(seed: u64) -> CapacityStudy {
    capacity_study(Antenna::directional_panel(), Environment::anechoic(), seed)
}

/// Figure 19(a): omni antennas in the laboratory (multipath).
pub fn fig19_omni(seed: u64) -> CapacityStudy {
    capacity_study(Antenna::omni_6dbi(), Environment::laboratory(seed), seed)
}

/// Figure 19(b): directional antennas in the laboratory.
pub fn fig19_directional(seed: u64) -> CapacityStudy {
    capacity_study(
        Antenna::directional_panel(),
        Environment::laboratory(seed),
        seed,
    )
}

/// Figure 20: ESP8266 RSSI distributions with/without the surface in the
/// mismatched configuration.
pub fn fig20(seed: u64, samples: usize) -> DistributionPair {
    fig20_calibrated(seed, samples, propagation::link::LinkTuning::default())
}

/// [`fig20`] under explicit link-model calibration knobs — the sweep
/// surface behind `expts --calibrate-fig20`, which searches the
/// (insertion-loss, scatter-XPD, shadow) space for the paper's ~10 dB
/// with/without-surface mode gap. Histograms use the Figure 20 default
/// bin width ([`FIG20_BIN_DB`], 0.5 dB).
pub fn fig20_calibrated(
    seed: u64,
    samples: usize,
    tuning: propagation::link::LinkTuning,
) -> DistributionPair {
    fig20_binned(seed, samples, tuning, FIG20_BIN_DB)
}

/// [`fig20_calibrated`] with an explicit histogram bin width (dB).
pub fn fig20_binned(
    seed: u64,
    samples: usize,
    tuning: propagation::link::LinkTuning,
    bin_db: f64,
) -> DistributionPair {
    let split = SeedSplitter::new(seed);
    let mut station = WifiStation::esp8266(&split);
    let mut hist_a = rssi_histogram(-80.0, -20.0, bin_db);
    let mut hist_b = rssi_histogram(-80.0, -20.0, bin_db);
    // The controller re-optimizes the bias for each channel realization
    // (Algorithm 1 reconverges in ~1 s, well within the channel's
    // coherence time).
    paired_distribution(
        &split,
        "fig20-room",
        samples,
        &mut hist_a,
        &mut hist_b,
        |room| {
            let scenario = Scenario::wifi_iot_default()
                .with_mismatch_deg(90.0)
                .with_seed(room)
                .with_tuning(tuning);
            let mut sys = LlamaSystem::new(scenario.clone());
            (
                sys.optimize().best_power_dbm,
                scenario.link().received_dbm(None),
            )
        },
        |p, n| station.read_rssi_batch(p, n),
    );
    DistributionPair {
        label_a: "with surface",
        label_b: "without surface",
        mode_gap_db: hist_a.mode() - hist_b.mode(),
        hist_a,
        hist_b,
    }
}

/// Figure 21: reflective heatmaps across Tx–surface distance.
pub fn fig21(seed: u64, steps: usize) -> Vec<HeatmapAtDistance> {
    let base = Scenario::reflective_default().with_seed(seed);
    heatmaps(&base, &FIG21_DISTANCES_CM, steps)
}

/// Figure 22: reflective power and capacity vs Tx–surface distance.
#[derive(Clone, Debug)]
pub struct Fig22 {
    /// Power comparison (top panel).
    pub power: PowerComparison,
    /// Capacity with surface, bit/s/Hz (bottom panel).
    pub capacity_with: Vec<f64>,
    /// Capacity without surface, bit/s/Hz.
    pub capacity_without: Vec<f64>,
}

/// Runs the Figure 22 study.
pub fn fig22(seed: u64) -> Fig22 {
    let noise = NoiseModel::usrp_1mhz();
    let mut with = Vec::new();
    let mut without = Vec::new();
    for &cm in &FIG21_DISTANCES_CM {
        let (w, wo) = optimize_at(
            Scenario::reflective_default()
                .with_distance_cm(cm)
                .with_seed(seed),
        );
        with.push(w);
        without.push(wo);
    }
    let max_improvement_db = with
        .iter()
        .zip(&without)
        .map(|(w, wo)| w - wo)
        .fold(f64::NEG_INFINITY, f64::max);
    Fig22 {
        capacity_with: with
            .iter()
            .map(|&p| capacity_bits(rfmath::units::Dbm(p), &noise))
            .collect(),
        capacity_without: without
            .iter()
            .map(|&p| capacity_bits(rfmath::units::Dbm(p), &noise))
            .collect(),
        power: PowerComparison {
            x_values: FIG21_DISTANCES_CM.to_vec(),
            with_surface_dbm: with,
            without_surface_dbm: without,
            max_improvement_db,
        },
    }
}

/// Figure 23: respiration traces with and without the surface.
#[derive(Clone, Debug)]
pub struct Fig23 {
    /// Sensing run with the surface deployed.
    pub with_surface: SensingResult,
    /// Sensing run without it.
    pub without_surface: SensingResult,
    /// The subject's true rate, bpm.
    pub true_bpm: f64,
}

/// Runs the Figure 23 sensing comparison.
pub fn fig23(seed: u64) -> Fig23 {
    let scenario = Scenario::reflective_default()
        .with_distance_cm(200.0)
        .with_tx_power(Watts::from_mw(5.0))
        .with_seed(seed);
    let human = HumanTarget::resting_adult(Meters(4.2));
    let config = SensingConfig::default();
    let surface = Metasurface::llama();
    Fig23 {
        with_surface: run_sensing(&scenario, &human, Some(&surface), &config),
        without_surface: run_sensing(&scenario, &human, None, &config),
        true_bpm: human.breaths_per_minute,
    }
}

/// Algorithm 1 timing study: full scan vs coarse-to-fine.
#[derive(Clone, Debug)]
pub struct Alg1Timing {
    /// Full-scan duration, seconds.
    pub full_scan_s: f64,
    /// Coarse-to-fine duration, seconds.
    pub coarse_fine_s: f64,
    /// Power found by the full scan, dBm.
    pub full_scan_dbm: f64,
    /// Power found by the coarse-to-fine search, dBm.
    pub coarse_fine_dbm: f64,
}

/// Runs the Algorithm 1 timing/quality comparison.
pub fn alg1(seed: u64) -> Alg1Timing {
    let scenario = Scenario::transmissive_default().with_seed(seed);
    let mut full_sys = LlamaSystem::new(scenario.clone());
    full_sys.sweep = SweepConfig::full_scan();
    let full = full_sys.optimize();
    let mut fast_sys = LlamaSystem::new(scenario);
    let fast = fast_sys.optimize();
    Alg1Timing {
        full_scan_s: full.elapsed.0,
        coarse_fine_s: fast.elapsed.0,
        full_scan_dbm: full.best_power_dbm.0,
        coarse_fine_dbm: fast.best_power_dbm.0,
    }
}

/// Seconds marker used by the sensing experiments' trace output.
pub fn trace_seconds(result: &SensingResult) -> Vec<f64> {
    result.trace.iter().map(|(t, _)| t.0).collect()
}

/// dBm series of a sensing trace.
pub fn trace_dbm(result: &SensingResult) -> Vec<f64> {
    result.trace.iter().map(|(_, p)| p.0).collect()
}

/// Convenience: seconds type for external callers.
pub type SimSeconds = Seconds;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_shows_the_mismatch_gap() {
        let d = fig2a(3, 800);
        assert!(
            d.mode_gap_db >= 8.0,
            "Wi-Fi match/mismatch mode gap = {:.1} dB",
            d.mode_gap_db
        );
    }

    #[test]
    fn distribution_sample_counts_are_exact() {
        // The requested sample count distributes exactly across the
        // paired channel realizations — no truncation, and zero stays
        // zero (regression test for the realization-splitting math).
        for samples in [0usize, 1, 15, 16, 500, 800] {
            let d = fig2a(5, samples);
            assert_eq!(d.hist_a.total(), samples as u64, "hist_a for n = {samples}");
            assert_eq!(d.hist_b.total(), samples as u64, "hist_b for n = {samples}");
        }
    }

    #[test]
    fn distribution_bin_width_is_configurable() {
        // Fig 2 keeps the 1 dB RSSI-quantum bins; Fig 20 defaults to
        // 0.5 dB so the mode gap resolves below whole-dB steps.
        let coarse = fig2a(5, 64);
        assert_eq!(coarse.hist_a.bins(), 60);
        let fine = fig2a_binned(5, 64, 0.5);
        assert_eq!(fine.hist_a.bins(), 120);
        assert_eq!(fine.hist_a.total(), 64);
        let d = fig20(5, 8);
        assert_eq!(d.hist_a.bins(), 120);
        assert_eq!(d.hist_b.bins(), 120);
    }

    #[test]
    fn fig2b_shows_the_mismatch_gap() {
        let d = fig2b(3, 800);
        assert!(
            d.mode_gap_db >= 6.0,
            "BLE match/mismatch mode gap = {:.1} dB",
            d.mode_gap_db
        );
    }

    #[test]
    fn design_curves_reproduce_the_materials_story() {
        let rogers = fig8(33);
        let naive = fig9(33);
        let optimized = fig10(33);
        assert!(
            rogers.worst_in_band_db > naive.worst_in_band_db + 3.0,
            "Rogers {:.1} vs naive {:.1}",
            rogers.worst_in_band_db,
            naive.worst_in_band_db
        );
        assert!(
            optimized.worst_in_band_db > naive.worst_in_band_db + 3.0,
            "optimized {:.1} vs naive {:.1}",
            optimized.worst_in_band_db,
            naive.worst_in_band_db
        );
    }

    #[test]
    fn fig11_stays_usable_in_band() {
        let fam = fig11(33);
        assert_eq!(fam.traces.len(), 7);
        assert!(
            fam.worst_in_band_db > -10.0,
            "worst in-band = {:.1} dB (paper: > −8)",
            fam.worst_in_band_db
        );
    }

    #[test]
    fn table1_overlaps_paper_range() {
        let t = table1();
        assert!(t.range_overlap > 0.5, "overlap = {:.2}", t.range_overlap);
        let (_, hi) = t.simulated.magnitude_range();
        assert!(hi.0 > 30.0, "max simulated rotation = {:.1}°", hi.0);
    }

    #[test]
    fn fig16_reproduces_the_headline_gain() {
        let f = fig16(5);
        assert!(
            f.max_improvement_db > 8.0,
            "max improvement = {:.1} dB",
            f.max_improvement_db
        );
        // Every distance should benefit in the anechoic mismatch setup.
        for (i, (&w, &wo)) in f
            .with_surface_dbm
            .iter()
            .zip(&f.without_surface_dbm)
            .enumerate()
        {
            assert!(
                w > wo,
                "distance {} cm: with {w:.1} ≤ without {wo:.1}",
                f.x_values[i]
            );
        }
    }

    #[test]
    fn alg1_is_dramatically_faster_with_similar_quality() {
        let t = alg1(7);
        assert!(
            t.full_scan_s / t.coarse_fine_s > 10.0,
            "speedup = {:.1}×",
            t.full_scan_s / t.coarse_fine_s
        );
        assert!(
            (t.full_scan_dbm - t.coarse_fine_dbm).abs() < 4.0,
            "quality gap = {:.1} dB",
            (t.full_scan_dbm - t.coarse_fine_dbm).abs()
        );
    }
}
