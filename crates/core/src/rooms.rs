//! The scenario zoo: named, seeded, CI-runnable room configurations.
//!
//! Every workload before this module was a synthetic line fleet; the
//! zoo gives the simulator *rooms* — APs, devices, wall panels and
//! people at planar positions (see the README's coordinate convention:
//! x east, y north, meters, origin at a room corner). Each scenario is
//! deterministic under its seed, small enough for a CI smoke tick
//! budget, and exercised end to end by `expts --scenario <name>`, so
//! future optimizations are validated against room geometry instead of
//! one collinear trace.
//!
//! Three rooms ship today:
//!
//! * [`office-floor`](office_floor) — an 8 m × 6 m open office: a
//!   wall AP, a desk grid of Wi-Fi IoT stations with BLE wearables
//!   among them, two wall panels, a worker walking a corridor loop and
//!   a colleague crossing the desk rows.
//! * [`warehouse-aisle`](warehouse_aisle) — a 12 m rack aisle: sensors
//!   down both racks, two overhead panels, a picker walking the aisle
//!   and a forklift driving through (a wide, lossy crossing body).
//! * [`conference-room`](conference_room) — a 5 m × 4 m meeting room:
//!   BLE wearables around the table, swiveling participants, and
//!   latecomers walking around the table mid-meeting.

use devices::human::HumanTarget;
use metasurface::designs;
use propagation::rays::{Deployment, SurfaceMount};
use rfmath::rng::SeedSplitter;
use rfmath::units::{Degrees, Meters, Seconds};
use rfmath::vec2::Point2;

use crate::fleet::{Fleet, FleetDevice};
use crate::panels::{JointConfig, PanelArray, PanelOutcome, PanelScheduler};
use crate::sim::{Blockage, DynamicFleet, MobilityModel, MobilitySim, SimConfig, SimReport};

/// The names `build` accepts, in catalog order.
pub const SCENARIOS: [&str; 3] = ["office-floor", "warehouse-aisle", "conference-room"];

/// A named, seeded room configuration, ready to simulate.
pub struct RoomScenario {
    /// Catalog name (the `expts --scenario` key).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// Root seed every stochastic element derives from.
    pub seed: u64,
    /// The moving fleet (devices, walks, blockages).
    pub fleet: DynamicFleet,
    /// The wall/ceiling panels serving the room.
    pub array: PanelArray,
    /// Simulator configuration (tick length, warm start, hysteresis).
    pub config: SimConfig,
    /// CI tick budget: long enough that every walker, rotator and
    /// crossing body visibly moves, short enough for a smoke job.
    pub ticks: usize,
}

impl RoomScenario {
    /// Runs the scenario for its tick budget and returns the report.
    pub fn run(&mut self) -> SimReport {
        self.run_with_faults(crate::faults::FaultPlan::none())
    }

    /// Runs the scenario under a fault plan — the chaos harness's entry
    /// point. An empty plan reproduces [`RoomScenario::run`] bitwise.
    pub fn run_with_faults(&mut self, faults: crate::faults::FaultPlan) -> SimReport {
        self.run_traced(faults, crate::telemetry::RecorderHandle::null())
    }

    /// Runs the scenario under a fault plan with a telemetry recorder
    /// attached to the engine — the tracing harness's entry point. A
    /// [`crate::telemetry::RecorderHandle::null`] recorder reproduces
    /// [`RoomScenario::run_with_faults`] bitwise.
    pub fn run_traced(
        &mut self,
        faults: crate::faults::FaultPlan,
        recorder: crate::telemetry::RecorderHandle,
    ) -> SimReport {
        MobilitySim::new(PanelScheduler::max_min(), self.config)
            .with_faults(faults)
            .with_recorder(recorder)
            .run(&mut self.fleet, &self.array, self.ticks)
    }

    /// A static joint-vs-independent comparison on the room's t = 0
    /// fleet snapshot: `(independent, joint)` MaxMin outcomes over the
    /// room's panel array, where the joint run refines the independent
    /// biases against the superposed multi-surface field under `cfg`.
    /// The benchmark harness reports the min-power delta between them.
    pub fn joint_comparison(&self, cfg: JointConfig) -> (PanelOutcome, PanelOutcome) {
        let fleet = self.fleet.fleet();
        let independent = PanelScheduler::max_min().run(fleet, &self.array);
        let joint = PanelScheduler::max_min()
            .with_joint(cfg)
            .run(fleet, &self.array);
        (independent, joint)
    }
}

/// Builds a scenario by catalog name (`None` for an unknown name).
pub fn build(name: &str, seed: u64) -> Option<RoomScenario> {
    match name {
        "office-floor" => Some(office_floor(seed)),
        "warehouse-aisle" => Some(warehouse_aisle(seed)),
        "conference-room" => Some(conference_room(seed)),
        _ => None,
    }
}

/// A transmissive room deployment: AP at `ap`, device at `rx`, and the
/// device's own surface mount midway between them (a panel array
/// re-mounts the surface at each panel's wall position anyway; the
/// midpoint is the sensible default when no panel overrides it).
fn room_link(ap: Point2, rx: Point2) -> Deployment {
    Deployment::room(
        ap,
        rx,
        SurfaceMount::Transmissive {
            position: ap.lerp(rx, 0.5),
        },
    )
}

/// The 8 m × 6 m open office: desk grid, wall panels, foot traffic.
fn office_floor(seed: u64) -> RoomScenario {
    let split = SeedSplitter::new(seed).child("office-floor");
    let ap = Point2::new(0.5, 3.0);
    let mut fleet = Fleet::new(designs::fr4_optimized());
    // Two desk rows of Wi-Fi IoT stations…
    let desks = [
        Point2::new(2.5, 1.2),
        Point2::new(4.0, 1.2),
        Point2::new(5.5, 1.2),
        Point2::new(2.5, 4.8),
        Point2::new(4.0, 4.8),
        Point2::new(5.5, 4.8),
    ];
    for (i, &desk) in desks.iter().enumerate() {
        let orientation = Degrees(-75.0 + 25.0 * i as f64);
        fleet.push(
            FleetDevice::wifi(
                format!("desk-{i}"),
                orientation,
                100.0,
                split.derive("wifi", i as u64),
            )
            .placed(room_link(ap, desk)),
        );
    }
    // …and two BLE wearables on people at the desks.
    for (i, &pos) in [Point2::new(3.2, 2.0), Point2::new(4.8, 4.0)]
        .iter()
        .enumerate()
    {
        fleet.push(
            FleetDevice::ble(
                format!("wearable-{i}"),
                Degrees(20.0 + 50.0 * i as f64),
                100.0,
                split.derive("ble", i as u64),
            )
            .placed(room_link(ap, pos)),
        );
    }
    let mut dynamic = DynamicFleet::new(fleet);
    // The second wearable's owner walks a corridor loop between the
    // desk rows and returns.
    dynamic.set_mobility(
        7,
        MobilityModel::waypoints(vec![
            (Seconds(0.0), Point2::new(4.8, 4.0)),
            (Seconds(4.0), Point2::new(6.5, 3.0)),
            (Seconds(8.0), Point2::new(4.8, 2.0)),
            (Seconds(12.0), Point2::new(4.8, 4.0)),
        ]),
    );
    // One desk station sits on a swivel arm that gets turned.
    dynamic.set_mobility(1, MobilityModel::rotate(Degrees(-50.0), 5.0));
    // A colleague crosses the desk rows, cutting several AP links.
    let human = HumanTarget::resting_adult(Meters(2.0));
    dynamic.add_blockage(Blockage::human_crossing(
        vec![
            (Seconds(2.0), Point2::new(3.0, 0.2)),
            (Seconds(10.0), Point2::new(3.0, 5.8)),
        ],
        &human,
    ));
    RoomScenario {
        name: "office-floor",
        description: "8 m x 6 m open office: desk grid, two wall panels, foot traffic",
        seed,
        fleet: dynamic,
        array: PanelArray::mounted(
            designs::fr4_optimized(),
            &[Point2::new(2.0, 2.6), Point2::new(2.0, 3.4)],
        ),
        config: SimConfig::default(),
        ticks: 12,
    }
}

/// The 12 m warehouse rack aisle: rack sensors, overhead panels, a
/// picker on foot and a forklift driving through.
fn warehouse_aisle(seed: u64) -> RoomScenario {
    let split = SeedSplitter::new(seed).child("warehouse-aisle");
    let ap = Point2::new(0.3, 1.5);
    let mut fleet = Fleet::new(designs::fr4_optimized());
    // Inventory sensors down both racks (y = 0.4 and y = 2.6).
    for i in 0..8 {
        let x = 2.0 + 1.3 * i as f64;
        let y = if i % 2 == 0 { 0.4 } else { 2.6 };
        fleet.push(
            FleetDevice::wifi(
                format!("rack-{i}"),
                Degrees(-80.0 + 22.0 * i as f64),
                100.0,
                split.derive("rack", i as u64),
            )
            .placed(room_link(ap, Point2::new(x, y))),
        );
    }
    let mut dynamic = DynamicFleet::new(fleet);
    // A picker carries the last sensor down the aisle and back.
    dynamic.set_mobility(
        7,
        MobilityModel::waypoints(vec![
            (Seconds(0.0), Point2::new(11.1, 2.6)),
            (Seconds(6.0), Point2::new(5.0, 2.6)),
            (Seconds(12.0), Point2::new(11.1, 2.6)),
        ]),
    );
    // A forklift drives the aisle center end to end: a wide, lossy
    // body that occludes each rack link as it passes.
    dynamic.add_blockage(Blockage::Crossing {
        path: vec![
            (Seconds(1.0), Point2::new(12.0, 1.5)),
            (Seconds(11.0), Point2::new(0.5, 1.5)),
        ],
        radius: Meters(0.6),
        loss_db: 18.0,
    });
    RoomScenario {
        name: "warehouse-aisle",
        description: "12 m rack aisle: shelf sensors, overhead panels, forklift traffic",
        seed,
        fleet: dynamic,
        array: PanelArray::mounted(
            designs::fr4_optimized(),
            &[Point2::new(4.0, 1.1), Point2::new(8.0, 1.9)],
        ),
        config: SimConfig::default(),
        ticks: 12,
    }
}

/// The 5 m × 4 m conference room: wearables around the table, people
/// swiveling in chairs, latecomers walking around the table.
fn conference_room(seed: u64) -> RoomScenario {
    let split = SeedSplitter::new(seed).child("conference-room");
    let ap = Point2::new(2.5, 3.8);
    let table = Point2::new(2.5, 2.0);
    let mut fleet = Fleet::new(designs::fr4_optimized());
    // Eight seats around the table, a wearable at each.
    for i in 0..8 {
        let angle = std::f64::consts::TAU * i as f64 / 8.0;
        let seat = table + Point2::new(1.2 * angle.cos(), 0.9 * angle.sin());
        fleet.push(
            FleetDevice::ble(
                format!("seat-{i}"),
                Degrees(-90.0 + 180.0 * (i as f64 + 0.5) / 8.0),
                100.0,
                split.derive("seat", i as u64),
            )
            .placed(room_link(ap, seat)),
        );
    }
    let mut dynamic = DynamicFleet::new(fleet);
    // Two participants swivel their chairs (mount rotation).
    dynamic.set_mobility(2, MobilityModel::rotate(Degrees(-45.0), 8.0));
    dynamic.set_mobility(6, MobilityModel::rotate(Degrees(30.0), -6.0));
    // Two latecomers walk around the table to free seats, crossing the
    // AP links of the people already seated.
    let human = HumanTarget::resting_adult(Meters(2.0));
    dynamic.add_blockage(Blockage::human_crossing(
        vec![
            (Seconds(1.0), Point2::new(0.3, 3.7)),
            (Seconds(5.0), Point2::new(0.5, 0.5)),
            (Seconds(9.0), Point2::new(2.5, 0.4)),
        ],
        &human,
    ));
    dynamic.add_blockage(Blockage::human_crossing(
        vec![
            (Seconds(4.0), Point2::new(4.7, 3.7)),
            (Seconds(10.0), Point2::new(4.5, 0.8)),
        ],
        &human,
    ));
    RoomScenario {
        name: "conference-room",
        description: "5 m x 4 m meeting room: wearables at the table, human traffic",
        seed,
        fleet: dynamic,
        array: PanelArray::mounted(
            designs::fr4_optimized(),
            &[Point2::new(1.2, 3.2), Point2::new(3.8, 3.2)],
        ),
        config: SimConfig::default(),
        ticks: 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_builds() {
        for name in SCENARIOS {
            let s = build(name, 2021).expect("catalog name must build");
            assert_eq!(s.name, name);
            assert!(!s.fleet.is_empty());
            assert!(s.ticks > 0);
        }
        assert!(build("no-such-room", 1).is_none());
    }

    #[test]
    fn scenarios_serve_with_nonzero_duty_and_are_seed_deterministic() {
        for name in SCENARIOS {
            let report = build(name, 7).unwrap().run();
            assert!(
                report.mean_duty() > 0.0,
                "{name}: the room must spend airtime serving"
            );
            assert!(
                report.mean_served_min_power_dbm().is_finite(),
                "{name}: served power must be finite"
            );
            let again = build(name, 7).unwrap().run();
            assert_eq!(
                report.mean_served_min_power_dbm().to_bits(),
                again.mean_served_min_power_dbm().to_bits(),
                "{name}: equal seeds must reproduce the run exactly"
            );
        }
    }

    #[test]
    fn office_foot_traffic_moves_links() {
        let mut s = build("office-floor", 3).unwrap();
        let report = s.run();
        assert!(
            report.total_links_reprepared() > 0,
            "walkers must force link re-preparation"
        );
    }
}
