//! Multi-link polarization management — the paper's §7 outlook.
//!
//! "When there are multiple IoT devices in different polarization
//! orientations, tuning the signal polarization can lead to a new form
//! of polarization reuse or access control." This module explores that
//! idea on the simulator: several receivers behind one surface, each at
//! its own orientation, and a shared bias state that must trade their
//! link qualities off against each other.
//!
//! Two policies are implemented:
//!
//! * [`optimize_max_min`] — fairness: maximize the *worst* link's power
//!   (the natural broadcast/coexistence objective);
//! * [`optimize_favor`] — access control: maximize one receiver while
//!   suppressing the others (polarization as a crude spatial key).
//!
//! Since the fleet engine landed, both are thin fronts over
//! [`crate::fleet`]'s shared-plan batch path: the bias grid is cascaded
//! once per probe ([`StackEvaluator::eval_batch`]) and each probe's path
//! set is built once and projected onto every receiver
//! ([`Link::received_dbm_for`]), instead of re-evaluating the full stack
//! per receiver per bias. `batched == naive` is pinned to 1e-12 by the
//! regression tests below and `tests/proptest_fleet.rs`.
//!
//! When one shared bias cannot serve the population at all — mutually
//! orthogonal sectors, large fleets — the next lever is *spatial*
//! multiplexing across several independently biased surfaces:
//! [`crate::panels`] generalizes these policies to a per-panel bias
//! vector.

use metasurface::evaluator::StackEvaluator;
use metasurface::response::{Metasurface, SurfaceResponse};
use metasurface::stack::{BiasState, SUPPLY_CEILING};
use propagation::antenna::OrientedAntenna;
use propagation::link::PreparedLink;
use rfmath::units::Dbm;

use crate::scenario::Scenario;

#[allow(unused_imports)] // rustdoc link target
use propagation::link::Link;

/// One receiver sharing the surface.
#[derive(Clone, Debug)]
pub struct SharedReceiver {
    /// Antenna and mount orientation of this endpoint.
    pub rx: OrientedAntenna,
    /// Display label.
    pub label: &'static str,
}

/// Link powers for every shared receiver at one bias state.
#[derive(Clone, Debug)]
pub struct GroupPowers {
    /// The bias state evaluated.
    pub bias: BiasState,
    /// Per-receiver received power, dBm, in input order.
    pub powers_dbm: Vec<f64>,
}

impl GroupPowers {
    /// The weakest link's power.
    pub fn min_dbm(&self) -> f64 {
        self.powers_dbm
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Power gap between a favored receiver and the best of the rest
    /// (the "access-control margin"), dB.
    pub fn isolation_db(&self, favored: usize) -> f64 {
        let others = self
            .powers_dbm
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != favored)
            .map(|(_, &p)| p)
            .fold(f64::NEG_INFINITY, f64::max);
        self.powers_dbm[favored] - others
    }
}

/// Evaluates every receiver's power under a common bias state: the path
/// set is built once and projected per receiver (one cascade, one path
/// build, N polarization projections).
pub fn group_powers(
    base: &Scenario,
    receivers: &[SharedReceiver],
    surface: &mut Metasurface,
    bias: BiasState,
) -> GroupPowers {
    surface.set_bias(bias);
    let mounts: Vec<OrientedAntenna> = receivers.iter().map(|r| r.rx.clone()).collect();
    let link = base.link();
    let response = surface.response(base.frequency);
    GroupPowers {
        bias,
        powers_dbm: link
            .received_dbm_for(Some(&response), &mounts)
            .into_iter()
            .map(|p| p.0)
            .collect(),
    }
}

/// Grid-search over the bias plane maximizing the worst link.
pub fn optimize_max_min(
    base: &Scenario,
    receivers: &[SharedReceiver],
    steps: usize,
) -> GroupPowers {
    search(base, receivers, steps, |g| g.min_dbm())
}

/// Grid-search maximizing `favored`'s isolation over the other links.
pub fn optimize_favor(
    base: &Scenario,
    receivers: &[SharedReceiver],
    favored: usize,
    steps: usize,
) -> GroupPowers {
    assert!(favored < receivers.len(), "favored index out of range");
    search(base, receivers, steps, |g| g.isolation_db(favored))
}

/// The shared grid search: every bias in the `steps × steps` grid is
/// cascaded once through a compiled plan and projected onto every
/// receiver against one shared path set per probe.
fn search(
    base: &Scenario,
    receivers: &[SharedReceiver],
    steps: usize,
    score: impl Fn(&GroupPowers) -> f64,
) -> GroupPowers {
    assert!(!receivers.is_empty(), "need at least one receiver");
    let steps = steps.max(2);
    let v_max = SUPPLY_CEILING;
    let biases: Vec<BiasState> = (0..steps * steps)
        .map(|k| {
            BiasState::new(
                v_max.0 * (k / steps) as f64 / (steps - 1) as f64,
                v_max.0 * (k % steps) as f64 / (steps - 1) as f64,
            )
            .clamped(v_max)
        })
        .collect();

    let mounts: Vec<OrientedAntenna> = receivers.iter().map(|r| r.rx.clone()).collect();
    // The scatter realization is bias-independent: prepare it once
    // instead of redrawing it for every grid probe.
    let link = PreparedLink::new(base.link());
    let evaluator = StackEvaluator::new(&base.design.stack, base.frequency);
    let responses = evaluator.eval_batch(&biases);

    let mut best: Option<(f64, GroupPowers)> = None;
    for (bias, response) in biases.into_iter().zip(responses) {
        let response = SurfaceResponse::new(base.frequency, response);
        let g = GroupPowers {
            bias,
            powers_dbm: link
                .received_dbm_for(Some(&response), &mounts)
                .into_iter()
                .map(|p| p.0)
                .collect(),
        };
        let s = score(&g);
        if best.as_ref().map(|(b, _)| s > *b).unwrap_or(true) {
            best = Some((s, g));
        }
    }
    best.expect("non-empty grid").1
}

/// Convenience: the received power of a single orientation without any
/// surface (per-receiver baseline).
pub fn baseline_dbm(base: &Scenario, rx: &OrientedAntenna) -> Dbm {
    let mut scenario = base.clone();
    scenario.rx = rx.clone();
    scenario.link().received_dbm(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use propagation::antenna::Antenna;
    use rfmath::units::Degrees;

    fn two_receivers() -> Vec<SharedReceiver> {
        vec![
            SharedReceiver {
                rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(0.0)),
                label: "horizontal device",
            },
            SharedReceiver {
                rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(50.0)),
                label: "tilted device",
            },
        ]
    }

    /// The pre-fleet implementation, verbatim: full stack re-evaluation
    /// per receiver per bias through a cloned scenario. Kept as the
    /// regression oracle for the batched path.
    fn naive_search(
        base: &Scenario,
        receivers: &[SharedReceiver],
        steps: usize,
        score: impl Fn(&GroupPowers) -> f64,
    ) -> GroupPowers {
        let steps = steps.max(2);
        let mut surface = Metasurface::new(base.design.clone());
        let mut best: Option<(f64, GroupPowers)> = None;
        for i in 0..steps {
            for j in 0..steps {
                let bias = BiasState::new(
                    30.0 * i as f64 / (steps - 1) as f64,
                    30.0 * j as f64 / (steps - 1) as f64,
                );
                surface.set_bias(bias);
                let powers = receivers
                    .iter()
                    .map(|r| {
                        let mut scenario = base.clone();
                        scenario.rx = r.rx.clone();
                        scenario.link().received_dbm(Some(&surface)).0
                    })
                    .collect();
                let g = GroupPowers {
                    bias,
                    powers_dbm: powers,
                };
                let s = score(&g);
                if best.as_ref().map(|(b, _)| s > *b).unwrap_or(true) {
                    best = Some((s, g));
                }
            }
        }
        best.expect("non-empty grid").1
    }

    #[test]
    fn batched_search_matches_naive_to_1e12() {
        // The satellite bugfix contract: routing the multilink policies
        // through the shared-plan batch API must not move any result by
        // more than 1e-12 — same winning bias, same per-receiver powers.
        let base = Scenario::transmissive_default().with_seed(71);
        let receivers = two_receivers();
        for steps in [3, 7] {
            let fast = optimize_max_min(&base, &receivers, steps);
            let slow = naive_search(&base, &receivers, steps, |g| g.min_dbm());
            assert_eq!(fast.bias, slow.bias, "steps {steps}: winner moved");
            for (a, b) in fast.powers_dbm.iter().zip(&slow.powers_dbm) {
                assert!((a - b).abs() < 1e-12, "steps {steps}: {a} vs {b}");
            }
            let fast = optimize_favor(&base, &receivers, 1, steps);
            let slow = naive_search(&base, &receivers, steps, |g| g.isolation_db(1));
            assert_eq!(fast.bias, slow.bias);
            for (a, b) in fast.powers_dbm.iter().zip(&slow.powers_dbm) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        // Multipath rooms too (scatter paths shared across receivers).
        let room = Scenario::wifi_iot_default().with_seed(5);
        let fast = optimize_max_min(&room, &receivers, 4);
        let slow = naive_search(&room, &receivers, 4, |g| g.min_dbm());
        for (a, b) in fast.powers_dbm.iter().zip(&slow.powers_dbm) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn max_min_beats_both_baselines_or_matches() {
        let base = Scenario::transmissive_default().with_seed(71);
        let receivers = two_receivers();
        let outcome = optimize_max_min(&base, &receivers, 9);
        // The shared state must leave the worst link no worse than the
        // worst no-surface baseline (the surface can always approximate
        // a compromise rotation).
        let worst_baseline = receivers
            .iter()
            .map(|r| baseline_dbm(&base, &r.rx).0)
            .fold(f64::INFINITY, f64::min);
        assert!(
            outcome.min_dbm() > worst_baseline,
            "max-min {:.1} dBm vs worst baseline {:.1} dBm",
            outcome.min_dbm(),
            worst_baseline
        );
    }

    #[test]
    fn favoring_creates_isolation() {
        // The surface's reachable output orientations span roughly
        // 26°–130° for this vertical transmitter (rotation range
        // ~−64°..+40°). Placing "ours" near one edge of that span and
        // the neighbour 90° away lets the search drop a polarization
        // null on the neighbour while staying co-polarized with ours.
        let base = Scenario::transmissive_default().with_seed(72);
        let receivers = vec![
            SharedReceiver {
                rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(125.0)),
                label: "ours",
            },
            SharedReceiver {
                rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(35.0)),
                label: "neighbour",
            },
        ];
        let outcome = optimize_favor(&base, &receivers, 0, 11);
        assert!(
            outcome.isolation_db(0) > 10.0,
            "isolation = {:.1} dB",
            outcome.isolation_db(0)
        );
    }

    #[test]
    fn group_powers_shape() {
        let base = Scenario::transmissive_default().with_seed(73);
        let receivers = two_receivers();
        let mut surface = Metasurface::new(base.design.clone());
        let g = group_powers(&base, &receivers, &mut surface, BiasState::new(6.0, 6.0));
        assert_eq!(g.powers_dbm.len(), 2);
        assert!(g.powers_dbm.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn group_powers_matches_per_receiver_evaluation() {
        let base = Scenario::transmissive_default().with_seed(73);
        let receivers = two_receivers();
        let mut surface = Metasurface::new(base.design.clone());
        let g = group_powers(&base, &receivers, &mut surface, BiasState::new(9.0, 21.0));
        for (r, got) in receivers.iter().zip(&g.powers_dbm) {
            let mut scenario = base.clone();
            scenario.rx = r.rx.clone();
            let want = scenario.link().received_dbm(Some(&surface)).0;
            assert!((got - want).abs() < 1e-12, "{}: {got} vs {want}", r.label);
        }
    }

    #[test]
    #[should_panic(expected = "favored index")]
    fn favor_validates_index() {
        let base = Scenario::transmissive_default();
        let _ = optimize_favor(&base, &two_receivers(), 5, 3);
    }
}
