//! Respiration sensing (paper §5.2.2, Figure 23).
//!
//! The case study: a subject sits between the transceiver pair and the
//! metasurface; at 5 mW transmit power the breathing modulation of the
//! received signal is buried until the surface's reflective gain lifts
//! it out of the noise. The pipeline here collects an RSS time series,
//! detrends it, scans the respiration band (0.1–0.5 Hz) with a Goertzel
//! bank, and reports the detected rate and its band SNR.

use devices::human::HumanTarget;
use metasurface::response::{Metasurface, SurfaceResponse};
use propagation::friis::field_transfer;
use propagation::link::Link;
use propagation::rays::Path;
use propagation::signal::{real_series_tone_power, remove_dc, rssi_reading};
use rfmath::jones::JonesMatrix;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Dbm, Meters, Seconds};

use crate::scenario::Scenario;

/// Amplitude penalty on the direct Tx→chest→Rx bounce: in the paper's
/// layout the subject sits between the pair and the surface, *off* the
/// receive antenna's main beam, so their direct echo arrives through
/// side lobes. The surface-assisted bounce stays in-beam.
pub const HUMAN_DIRECT_SIDELOBE: f64 = 0.05;

/// Configuration of a sensing run.
#[derive(Clone, Debug)]
pub struct SensingConfig {
    /// RSS sampling rate (10 Hz is ample for breathing).
    pub sample_rate_hz: f64,
    /// Capture duration.
    pub duration: Seconds,
    /// Effective receiver noise floor for single-shot RSS readings, dBm
    /// (thermal + implementation + ambient interference). Readings near
    /// this floor fluctuate by several dB — the mechanism that hides
    /// breathing at 5 mW without the surface.
    pub effective_noise_floor_dbm: f64,
}

impl Default for SensingConfig {
    fn default() -> Self {
        Self {
            sample_rate_hz: 10.0,
            duration: Seconds(60.0),
            effective_noise_floor_dbm: -72.0,
        }
    }
}

/// Output of a sensing run.
#[derive(Clone, Debug)]
pub struct SensingResult {
    /// The RSS trace `(t, dBm)` — Figure 23's y-axis.
    pub trace: Vec<(Seconds, Dbm)>,
    /// Detected breathing rate, breaths per minute.
    pub detected_bpm: Option<f64>,
    /// Respiration-band SNR (band peak over off-band median), dB.
    pub band_snr_db: f64,
    /// Mean RSS level, dBm.
    pub mean_dbm: f64,
}

/// Builds the human-scatter paths for a scenario: the direct
/// Tx→chest→Rx bounce and, when a surface is present, the
/// surface-assisted Tx→surface→chest→Rx bounce that carries the
/// surface's reflective gain.
pub fn human_paths(
    scenario: &Scenario,
    human: &HumanTarget,
    surface: Option<&SurfaceResponse>,
) -> Vec<Path> {
    let f = scenario.frequency;
    let refl_amp = human.reflection_amplitude();
    let mut paths = vec![Path {
        transfer: field_transfer(f, human.path_length) * (refl_amp * HUMAN_DIRECT_SIDELOBE),
        jones: JonesMatrix::identity(),
        length: human.path_length,
        modulation: Some(human.modulation()),
        label: "human-direct",
    }];
    if let Some(surface) = surface {
        // The surface-assisted bounce stays inside both antennas' main
        // beams: Tx → surface → chest → Rx, carrying the panel's
        // reflection Jones response.
        let assisted_len = Meters(human.path_length.0 * 1.3);
        let refl = surface.reflection();
        paths.push(Path {
            transfer: field_transfer(f, assisted_len) * refl_amp,
            jones: JonesMatrix::mirror_x() * refl,
            length: assisted_len,
            modulation: Some(human.modulation()),
            label: "human-via-surface",
        });
    }
    paths
}

/// Runs the sensing experiment for a scenario + subject, with or without
/// the surface (the Figure 23 comparison).
pub fn run_sensing(
    scenario: &Scenario,
    human: &HumanTarget,
    surface: Option<&Metasurface>,
    config: &SensingConfig,
) -> SensingResult {
    // One cascade evaluation serves the human-path construction and
    // every sample of the RSS trace (the bias is fixed for the run).
    let response = surface.map(|s| s.response(scenario.frequency));
    let mut link: Link = scenario.link();
    link.extra_paths = human_paths(scenario, human, response.as_ref());

    let mut rng = SeedSplitter::new(scenario.seed).stream("rss-noise");
    let noise_w = Dbm(config.effective_noise_floor_dbm).to_watts();
    let n = (config.sample_rate_hz * config.duration.0).ceil() as usize;
    let trace: Vec<(Seconds, Dbm)> = (0..n)
        .map(|i| {
            let t = Seconds(i as f64 / config.sample_rate_hz);
            let amp = link.received_amplitude_with(response.as_ref(), t);
            (t, rssi_reading(amp, noise_w, &mut rng))
        })
        .collect();

    let series: Vec<f64> = trace.iter().map(|(_, p)| p.0).collect();
    let (detected_bpm, band_snr_db) = detect_breathing(&series, config.sample_rate_hz);
    SensingResult {
        mean_dbm: rfmath::stats::mean(&series),
        trace,
        detected_bpm,
        band_snr_db,
    }
}

/// Scans the respiration band and returns `(rate_bpm, band_snr_db)`.
///
/// Detection declares success when the strongest in-band line exceeds
/// the off-band median by 12 dB — noise lines alone reach ~9 dB over a
/// 60 s capture, so the margin rejects them.
pub fn detect_breathing(series_db: &[f64], rate_hz: f64) -> (Option<f64>, f64) {
    if series_db.len() < 32 {
        return (None, 0.0);
    }
    let detrended = remove_dc(series_db);
    // Goertzel bank: 0.08–0.55 Hz in 0.005 Hz steps (4.8–33 bpm).
    let mut best = (0.0f64, f64::NEG_INFINITY);
    let mut band_powers = Vec::new();
    let mut f = 0.08;
    while f <= 0.55 {
        let p = real_series_tone_power(&detrended, f / rate_hz);
        band_powers.push(p);
        if p > best.1 {
            best = (f, p);
        }
        f += 0.005;
    }
    // Off-band reference: 0.8–1.5 Hz (above breathing, below cardiac
    // harmonics in RSS units).
    let mut off = Vec::new();
    let mut fo = 0.8;
    while fo <= 1.5 {
        off.push(real_series_tone_power(&detrended, fo / rate_hz));
        fo += 0.01;
    }
    let off_ref = rfmath::stats::median(&off).max(1e-30);
    let snr_db = 10.0 * (best.1 / off_ref).log10();
    let detected = (snr_db > 12.0).then_some(best.0 * 60.0);
    (detected, snr_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rfmath::units::Watts;

    fn sensing_scenario() -> Scenario {
        // The paper's §5.2.2 numbers: 5 mW, reflective layout, subject
        // ~2 m away via the surface.
        Scenario::reflective_default()
            .with_distance_cm(200.0)
            .with_tx_power(Watts::from_mw(5.0))
            .with_seed(17)
    }

    fn subject() -> HumanTarget {
        HumanTarget::resting_adult(Meters(4.2))
    }

    #[test]
    fn synthetic_breathing_is_detected() {
        // Direct pipeline check: a clean 15 bpm oscillation in dB-space.
        let rate = 10.0;
        let series: Vec<f64> = (0..600)
            .map(|k| -50.0 + 1.5 * (std::f64::consts::TAU * 0.25 * k as f64 / rate).sin())
            .collect();
        let (bpm, snr) = detect_breathing(&series, rate);
        assert!(snr > 12.0, "band SNR = {snr:.1} dB");
        let bpm = bpm.expect("detection");
        assert!((bpm - 15.0).abs() < 1.0, "detected {bpm:.1} bpm");
    }

    #[test]
    fn flat_series_is_not_detected() {
        let series = vec![-50.0; 600];
        let (bpm, _) = detect_breathing(&series, 10.0);
        assert!(bpm.is_none());
    }

    #[test]
    fn surface_enables_detection_at_low_power() {
        // The Figure 23 outcome: at 5 mW the subject is invisible without
        // the surface and detectable with it.
        let scenario = sensing_scenario();
        let human = subject();
        let config = SensingConfig::default();

        let without = run_sensing(&scenario, &human, None, &config);
        let surface = Metasurface::llama();
        let with = run_sensing(&scenario, &human, Some(&surface), &config);

        assert!(
            with.band_snr_db > without.band_snr_db + 3.0,
            "surface should lift the respiration band: {:.1} vs {:.1} dB",
            with.band_snr_db,
            without.band_snr_db
        );
        if let Some(bpm) = with.detected_bpm {
            assert!((bpm - 15.0).abs() < 2.0, "detected {bpm:.1} bpm");
        } else {
            panic!("surface-assisted run should detect breathing");
        }
    }

    #[test]
    fn trace_has_requested_shape() {
        let scenario = sensing_scenario();
        let result = run_sensing(
            &scenario,
            &subject(),
            None,
            &SensingConfig {
                sample_rate_hz: 5.0,
                duration: Seconds(20.0),
                effective_noise_floor_dbm: -80.0,
            },
        );
        assert_eq!(result.trace.len(), 100);
        assert!(result.mean_dbm.is_finite());
    }

    #[test]
    fn human_paths_gain_surface_assistance() {
        let scenario = sensing_scenario();
        let human = subject();
        let bare = human_paths(&scenario, &human, None);
        let surface = Metasurface::llama();
        let assisted = human_paths(
            &scenario,
            &human,
            Some(&surface.response(scenario.frequency)),
        );
        assert_eq!(bare.len(), 1);
        assert_eq!(assisted.len(), 2);
        assert!(assisted.iter().all(|p| p.modulation.is_some()));
    }
}
