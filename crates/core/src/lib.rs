//! # llama_core — the assembled LLAMA system
//!
//! Ties the substrates together into the end-to-end system of the
//! paper's Figure 5 and hosts the typed experiment runners behind every
//! table and figure of the evaluation:
//!
//! * [`scenario`] — fully specified experimental setups with builders
//!   for the paper's transmissive, reflective, Wi-Fi-IoT and BLE
//!   configurations;
//! * [`system`] — [`system::LlamaSystem`]: surface + PSU + controller +
//!   receiver on a simulation clock, with a fast optimization path and a
//!   fully event-stepped real-time loop (packetized reports, fault
//!   injection, 50 Hz switching budget);
//! * [`sensing`] — the §5.2.2 respiration pipeline;
//! * [`experiments`] — one runner per figure/table (see DESIGN.md's
//!   experiment index);
//! * [`fleet`] — the fleet-serving engine: heterogeneous device
//!   populations behind one surface, scheduled under max-min, favor
//!   (access control) and time-division policies on the shared-plan
//!   batch evaluation path;
//! * [`panels`] — multi-panel serving: K independently-biased surfaces
//!   ([`panels::PanelArray`]) under one controller, per-device panel
//!   assignment by geometry/polarization, a per-panel Algorithm 1
//!   scheduler ([`panels::PanelScheduler`]), and the typed front of the
//!   async many-fleet [`control::server::FleetServer`];
//! * [`faults`] — seeded fault injection: deterministic, time-windowed
//!   plans of dead unit-cell columns, PSU glitches, lost probe reports
//!   and whole-panel outages that the serving stack degrades through;
//! * [`sim`] — the event-stepped mobility simulator: moving fleets
//!   ([`sim::DynamicFleet`] with waypoint walks, turntable rotation and
//!   transient human blockage), panel handoff with dwell + dB
//!   hysteresis ([`sim::HandoffPolicy`]), warm-start re-optimization
//!   seeded from the previous tick, and PSU-aware tick budgets that
//!   bill probing airtime and rail settling against serving duty;
//! * [`multilink`] — the §7 outlook: several receivers sharing one
//!   surface, with max-min fairness and favor/suppress (polarization
//!   access control) policies (now thin wrappers over [`fleet`]);
//! * [`render`] — ASCII tables, histograms, heatmaps and sparklines for
//!   terminal output;
//! * [`telemetry`] — the unified telemetry plane (canonical face of
//!   [`rfmath::telemetry`]): recorder trait, null/ring recorders,
//!   log-binned histograms, RAII spans and the deterministic structured
//!   event log the whole serving stack reports into.
//!
//! ```
//! use llama_core::scenario::Scenario;
//! use llama_core::system::LlamaSystem;
//!
//! let mut system = LlamaSystem::new(
//!     Scenario::transmissive_default().with_distance_cm(36.0).with_seed(7),
//! );
//! let outcome = system.optimize();
//! assert!(outcome.improvement.0 > 5.0, "the surface earns ≥5 dB here");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod faults;
pub mod fleet;
pub mod multilink;
pub mod panels;
pub mod render;
pub mod rooms;
pub mod scenario;
pub mod sensing;
pub mod sim;
pub mod system;
pub mod telemetry;

pub use faults::FaultPlan;
pub use fleet::{Fleet, FleetDevice, FleetEvaluator, FleetOutcome, Policy, Scheduler};
pub use panels::{
    serve_fleets, serve_panel_fleets, Assignment, CoupledEvaluator, JointConfig, JointStats, Panel,
    PanelArray, PanelOutcome, PanelScheduler, RevivalPolicy,
};
pub use rooms::RoomScenario;
pub use scenario::{EndpointKind, Scenario};
pub use sensing::{run_sensing, SensingConfig, SensingResult};
pub use sim::{
    Blockage, DynamicFleet, HandoffPolicy, MobilityModel, MobilitySim, SimConfig, SimReport,
    TickOutcome,
};
pub use system::{LlamaSystem, OptimizeOutcome};
